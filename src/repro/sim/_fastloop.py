"""Compiled exact-twin scheduler loop for bus/queue-coupled devices.

The shared-bus and global-FIFO recurrences are *irreducibly sequential*:
the bus serializes every burst through ``finish[i-1]`` while bank
conflicts couple requests a few indices apart, and which term binds
alternates every ~2 requests on DRAM traffic.  No prefix-fold
decomposition (``np.cumsum`` / ``np.maximum.accumulate``) covers that
without re-associating float additions — which would move results by an
ulp and break the bit-identity contract the goldens pin.  (The
contention-free per-bank recurrence *does* decompose, which is why the
PR 5 kernel vectorizes it; this module is the fast path for everything
a shared resource couples.)

So the fast path here is an **exact twin**, not a decomposition: the
same IEEE-754 double operations in the same order as the scalar Python
loop, compiled from a few lines of C at first use (``cc`` + ``ctypes``).
CPython float arithmetic *is* C double arithmetic on the host — ``+``,
comparisons, and ``%`` on positive floats (plain ``fmod``) map one to
one — so the compiled loop is bit-identical by construction, with no
re-association anywhere.  Compilation is guarded: contraction is
disabled (``-ffp-contract=off``) so no FMA fuses an add into a rounding
change, and fast-math stays off.

The library is cached on disk keyed by the SHA-256 of the source, so a
process pays the compile once ever (pool workers dlopen the cached
artifact).  A corrupt or truncated cached artifact (a build killed
mid-copy, a full disk) triggers one rebuild instead of reporting the
twin gone.  Where no C toolchain exists the module reports itself
unavailable and the controller's dispatch falls back to the scalar
recurrence — same results, scalar speed — counted under
``fallback_toolchain``.  ``REPRO_FASTLOOP=0`` forces that fallback
deterministically (tests, benchmarks).

``REPRO_FASTLOOP_SANITIZE=asan,ubsan`` (or ``tsan`` for the threaded
per-bank path) recompiles the twin with the matching ``-fsanitize=``
flags into a *separate* cache entry — the sanitizer list salts both the
source hash and the filename, so an instrumented artifact can never be
dlopened where the production twin is expected.  ASan twins need the
runtime preloaded into CPython (``LD_PRELOAD=libasan.so`` plus
``ASAN_OPTIONS=detect_leaks=0``); without the preload the ASan runtime
exits the calling process from *inside* dlopen, so sanitized artifacts
are test-loaded in a throwaway subprocess first and the probe degrades
to the scalar fallback when they refuse to load.
``examples/sanitize_smoke.py`` sets the preload up and CI's
``kernel-sanitize`` job drives the equivalence suite under it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

#: Environment switch: ``0`` disables the compiled loop (the controller
#: then counts a toolchain fallback and runs the scalar recurrence).
FASTLOOP_ENV_VAR = "REPRO_FASTLOOP"

#: Override for the shared-library cache directory (useful when the
#: package tree is read-only).
CACHE_ENV_VAR = "REPRO_FASTLOOP_CACHE"

#: Comma-separated sanitizer list (``asan``, ``ubsan``, ``tsan``) for
#: instrumented twin builds.  Unknown tokens raise: a typo must fail
#: loudly, not silently hand back an uninstrumented twin.
SANITIZE_ENV_VAR = "REPRO_FASTLOOP_SANITIZE"

#: Sanitizer token -> extra compiler flags.  UBSan artifacts dlopen into
#: plain CPython; ASan/TSan ones need their runtime preloaded first.
_SANITIZER_FLAGS = {
    "asan": ("-fsanitize=address", "-fno-omit-frame-pointer"),
    "tsan": ("-fsanitize=thread",),
    "ubsan": ("-fsanitize=undefined", "-fno-sanitize-recover=undefined"),
}

# One routine covers every device class.  ``per_bank`` selects the
# contention-free per-bank-queue recurrence (COMET-class photonic
# parts): a line-for-line transcription of
# MemoryController._recurrence_per_bank in deadline space, with the
# per-bank finish history kept in a flat circular buffer (only the
# entry ``served - bank_queue_depth`` is ever read, so one slot per
# queue position suffices).  It returns 1 when an admission stamp
# would bind service — the same admissibility rule as every other
# tier — and the caller reverts the cell to the global-queue model.
# Otherwise the global-FIFO branch covers the shared-bus loops (DRAM
# with refresh, electrical PCM), the unshared loop (COSMOS, per-bank
# admission fallbacks) and the generic flag combination, transcribed
# from MemoryController._recurrence_refresh_bus with the same branch
# structure the other loops specialize away.  Identical operation
# order is what makes every branch bit-identical, so edits here must
# track controller.py.
_C_SOURCE = r"""
#include <math.h>

int repro_schedule_loop(
    long long n, const long long *bank, const double *array_ns,
    const double *arrivals, const double *turn,
    long long queue_depth, long long banks,
    double burst, int shared_bus, int overlap,
    int has_refresh, double interval, double duration,
    int per_bank, long long bank_queue_depth,
    double *admitted, double *start_out, double *finish,
    double *bank_free, double *bank_busy, double *busy_total,
    double *bank_cum, double *bank_peak, long long *bank_served,
    double *history)
{
    if (per_bank) {
        for (long long i = 0; i < n; i++) {
            long long b = bank[i];
            double arrival = arrivals[i];
            double occupancy = overlap ? array_ns[i]
                                       : array_ns[i] + burst;
            double cum_prev = bank_cum[b];
            double deadline = arrival - cum_prev;
            double peak = bank_peak[b];
            if (deadline > peak) {
                peak = deadline;
                bank_peak[b] = deadline;
            }
            double start = peak + cum_prev;
            double cum_next = cum_prev + occupancy;
            double release = peak + cum_next;
            double fin = overlap ? release + burst : release;
            long long served = bank_served[b];
            long long slot = b * bank_queue_depth
                             + served % bank_queue_depth;
            double adm = arrival;
            if (served >= bank_queue_depth) {
                double stamp = history[slot];
                if (stamp > adm) adm = stamp;
                if (adm > start) return 1;  /* queue binds: revert */
            }
            history[slot] = fin;
            bank_served[b] = served + 1;
            bank_cum[b] = cum_next;
            bank_busy[b] += release - start;
            admitted[i] = adm;
            start_out[i] = start;
            finish[i] = fin;
        }
        double total = 0.0;
        for (long long b = 0; b < banks; b++) total += bank_busy[b];
        *busy_total = total;
        return 0;
    }
    double bus_free = 0.0;
    for (long long i = 0; i < n; i++) {
        double adm = arrivals[i];
        if (i >= queue_depth) {
            double blocked = finish[i - queue_depth];
            if (blocked > adm) adm = blocked;
        }
        long long b = bank[i];
        double start = bank_free[b];
        if (adm > start) start = adm;
        if (has_refresh) {
            double pos = fmod(start, interval);
            if (pos < duration) start = (start - pos) + duration;
        }
        double array_time = array_ns[i];
        double burst_start = start + array_time;
        if (shared_bus) {
            double bus_ready = bus_free + turn[i];
            if (bus_ready > burst_start) burst_start = bus_ready;
            if (has_refresh) {
                double pos = fmod(burst_start, interval);
                if (pos < duration)
                    burst_start = (burst_start - pos) + duration;
            }
        }
        double fin = burst_start + burst;
        if (shared_bus) bus_free = fin;
        double release = fin;
        if (overlap) {
            double array_done = start + array_time;
            release = array_done > burst_start ? array_done : burst_start;
        }
        bank_busy[b] += release - start;
        bank_free[b] = release;
        admitted[i] = adm;
        start_out[i] = start;
        finish[i] = fin;
    }
    double total = 0.0;
    for (long long b = 0; b < banks; b++) total += bank_busy[b];
    *busy_total = total;
    return 0;
}
"""

#: Returned by :func:`schedule_loop` (``per_bank=True``) when an
#: admission stamp would bind service: the cell must revert to the
#: global-queue model, exactly as the numpy kernel's ``None`` and the
#: scalar twin signal.  Distinct from ``None``, which still means "no
#: compiled twin in this process" (missing toolchain / disabled).
ADMISSION_BINDS = object()

#: ``None`` = not probed yet; ``False`` = unavailable this process.
#: Writes hold ``_PROBE_LOCK`` (double-checked: reads stay lock-free).
# staticcheck: guarded-by[_PROBE_LOCK]
_LIB: Optional[object] = None
_PROBED = False  # staticcheck: guarded-by[_PROBE_LOCK]


def _cache_dir() -> Path:
    # Toolchain/cache configuration reads select *where* the twin
    # builds and whether it engages — never what it computes — so they
    # are allow-listed from the determinism lint.
    # staticcheck: allow[determinism]
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_fastloop_cache"


def sanitize_tokens() -> tuple:
    """Requested sanitizers, deduplicated and sorted; ``()`` means the
    production build.  Raises ``ValueError`` on an unknown token."""
    # staticcheck: allow[determinism]  (build-config read, as above)
    raw = os.environ.get(SANITIZE_ENV_VAR, "")
    tokens = sorted({tok.strip().lower()
                     for tok in raw.split(",") if tok.strip()})
    unknown = [tok for tok in tokens if tok not in _SANITIZER_FLAGS]
    if unknown:
        raise ValueError(
            f"{SANITIZE_ENV_VAR} names unknown sanitizer(s) {unknown}; "
            f"known: {sorted(_SANITIZER_FLAGS)}")
    return tuple(tokens)


def _compile(source: str, target: Path, extra_flags=()) -> bool:
    """Compile the twin into ``target`` (atomic rename); False on any
    toolchain failure."""
    # staticcheck: allow[determinism]  (build-config read, as above)
    compiler = os.environ.get("CC", "cc")
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=str(target.parent)) as build:
            src = Path(build) / "fastloop.c"
            obj = Path(build) / "fastloop.so"
            src.write_text(source)
            result = subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared",
                 # No contraction, no fast-math: every double op must
                 # round exactly where the Python loop rounds.
                 "-ffp-contract=off", "-fno-fast-math",
                 *extra_flags,
                 "-o", str(obj), str(src), "-lm"],
                capture_output=True, timeout=120)
            if result.returncode != 0 or not obj.exists():
                return False
            os.replace(obj, target)    # atomic: racing processes agree
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def _dlopen(target: Path):
    """CDLL + prototype the twin; ``None`` when the artifact is absent
    or unloadable (truncated file, wrong arch, missing symbol)."""
    if not target.exists():
        return None
    try:
        lib = ctypes.CDLL(str(target))
        fn = lib.repro_schedule_loop
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_longlong, ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_longlong, ctypes.c_longlong,
        ctypes.c_double, ctypes.c_int, ctypes.c_int,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        ctypes.c_int, ctypes.c_longlong,
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_longlong), ctypes.POINTER(ctypes.c_double),
    ]
    return fn


def _subprocess_loadable(target: Path) -> bool:
    """True when ``target`` dlopens in a throwaway interpreter.

    Sanitizer runtimes can refuse to initialize when the host process
    was not started under them — ASan without ``LD_PRELOAD=libasan.so``
    hard-exits the *calling* process from inside ``dlopen`` — so
    sanitized artifacts are test-loaded in a subprocess (which inherits
    this process's preload environment) before this process risks the
    dlopen itself.  Production artifacts never pay this cost."""
    code = "import ctypes, sys; ctypes.CDLL(sys.argv[1])"
    try:
        proc = subprocess.run(
            [sys.executable, "-c", code, str(target)],
            capture_output=True, timeout=120)
    except (OSError, subprocess.SubprocessError):
        return False
    return proc.returncode == 0


def _load():
    """dlopen the cached twin, compiling it first if needed."""
    tokens = sanitize_tokens()
    key = _C_SOURCE
    suffix = ""
    if tokens:
        # Salt the hash *and* the filename: an instrumented artifact
        # must never collide with the production .so in the cache.
        key += "\0sanitize=" + ",".join(tokens)
        suffix = "-" + "-".join(tokens)
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    target = _cache_dir() / f"fastloop-{digest}{suffix}.so"
    fresh = not target.exists()
    if fresh or (tokens and not _subprocess_loadable(target)):
        # Cache miss — or a corrupt/partial artifact (a build killed
        # mid-copy, a full disk): rebuild once instead of degrading to
        # fallback_toolchain with a perfectly good compiler around.
        try:
            target.unlink()
        except OSError:
            pass
        extra = tuple(f for tok in tokens for f in _SANITIZER_FLAGS[tok])
        if not _compile(_C_SOURCE, target, extra):
            return None
    if tokens and not _subprocess_loadable(target):
        # A freshly built artifact that still refuses to load means the
        # sanitizer runtime cannot live in this process (e.g. ASan with
        # no preload): degrade to the scalar fallback instead of letting
        # the in-process dlopen take the interpreter down.
        return None
    fn = _dlopen(target)
    if fn is None and not tokens:
        # Production path keeps the original corrupt-artifact recovery:
        # dlopen is the probe, one rebuild on failure.
        try:
            target.unlink()
        except OSError:
            pass
        if not _compile(_C_SOURCE, target):
            return None
        fn = _dlopen(target)
    return fn


#: Serializes the first-use probe: under the thread pool many workers
#: can race into :func:`available` before anyone has compiled/dlopened
#: the twin; the double-checked lock makes exactly one thread probe.
_PROBE_LOCK = threading.Lock()

# Forked children must not inherit a lock a pool thread held mid-probe.
os.register_at_fork(
    after_in_child=lambda: globals().update(
        _PROBE_LOCK=threading.Lock()))


def available() -> bool:
    """True when the compiled twin can serve schedules in this process."""
    global _LIB, _PROBED
    # Kill-switch read: forces the bit-identical scalar fallback,
    # results cannot move.
    # staticcheck: allow[determinism]
    if os.environ.get(FASTLOOP_ENV_VAR, "1") == "0":
        return False
    if not _PROBED:
        with _PROBE_LOCK:
            if not _PROBED:
                _LIB = _load()
                _PROBED = True
    return _LIB is not None


def reset_probe() -> None:
    """Forget the availability probe (tests that flip the environment).

    Holds the probe lock: resetting mid-probe on another thread must
    not let a half-initialized ``_LIB`` slip out as "probed".
    """
    global _LIB, _PROBED
    with _PROBE_LOCK:
        _LIB = None
        _PROBED = False


def _as_double_ptr(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def schedule_loop(
    bank_idx: np.ndarray, array_ns: np.ndarray, arrivals: np.ndarray,
    turn: np.ndarray, queue_depth: int, banks: int, burst: float,
    shared_bus: bool, overlap: bool, has_refresh: bool,
    interval: float, duration: float,
    per_bank: bool = False, bank_queue_depth: int = 1,
):
    """Run the compiled twin; ``None`` when unavailable.

    Returns ``(admitted, start, finish, busy)`` bit-identical to the
    matching ``MemoryController._recurrence_*`` scalar loop.  With
    ``per_bank=True`` the per-bank-queue recurrence runs instead
    (``bank_queue_depth`` is the per-bank admission slice); a binding
    admission stamp returns the :data:`ADMISSION_BINDS` sentinel so the
    caller can revert the cell to the global-queue model, while ``None``
    still means the twin itself is unavailable.
    """
    if not available():
        return None
    n = len(arrivals)
    bank_c = np.ascontiguousarray(bank_idx, dtype=np.int64)
    array_c = np.ascontiguousarray(array_ns, dtype=np.float64)
    arrivals_c = np.ascontiguousarray(arrivals, dtype=np.float64)
    turn_c = np.ascontiguousarray(turn, dtype=np.float64)
    admitted = np.empty(n)
    start = np.empty(n)
    finish = np.empty(n)
    bank_free = np.zeros(banks)
    bank_busy = np.zeros(banks)
    busy_total = ctypes.c_double(0.0)
    qd_b = max(1, int(bank_queue_depth)) if per_bank else 1
    bank_cum = np.zeros(banks if per_bank else 1)
    bank_peak = np.full(banks if per_bank else 1, -np.inf)
    bank_served = np.zeros(banks if per_bank else 1, dtype=np.int64)
    history = np.empty((banks * qd_b) if per_bank else 1)
    rc = _LIB(
        ctypes.c_longlong(n),
        bank_c.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
        _as_double_ptr(array_c), _as_double_ptr(arrivals_c),
        _as_double_ptr(turn_c),
        ctypes.c_longlong(queue_depth), ctypes.c_longlong(banks),
        ctypes.c_double(burst),
        ctypes.c_int(1 if shared_bus else 0),
        ctypes.c_int(1 if overlap else 0),
        ctypes.c_int(1 if has_refresh else 0),
        ctypes.c_double(interval), ctypes.c_double(duration),
        ctypes.c_int(1 if per_bank else 0),
        ctypes.c_longlong(qd_b),
        _as_double_ptr(admitted), _as_double_ptr(start),
        _as_double_ptr(finish), _as_double_ptr(bank_free),
        _as_double_ptr(bank_busy), ctypes.byref(busy_total),
        _as_double_ptr(bank_cum), _as_double_ptr(bank_peak),
        bank_served.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
        _as_double_ptr(history),
    )
    if rc != 0:
        return ADMISSION_BINDS
    return admitted, start, finish, busy_total.value
