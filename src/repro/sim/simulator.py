"""Top-level simulator: run traces against architectures, collect stats.

This is the reproduction's equivalent of invoking the paper's modified
NVMain once per (architecture, trace) pair.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import SimulationError
from .controller import MemoryController
from .devices import MemoryDeviceModel
from .factory import ARCHITECTURE_NAMES, build_device
from .request import MemRequest
from .stats import SimStats, geometric_mean
from .tracegen import SPEC_WORKLOADS, generate_trace


class MainMemorySimulator:
    """Runs request streams against one device model."""

    def __init__(self, device: Union[str, MemoryDeviceModel],
                 queue_depth_per_channel: int = 8) -> None:
        self.device = build_device(device) if isinstance(device, str) else device
        # Each channel brings its own transaction queue at the controller.
        self.controller = MemoryController(
            self.device,
            queue_depth=queue_depth_per_channel * self.device.channels,
        )

    def run(self, requests: List[MemRequest],
            workload_name: str = "trace") -> SimStats:
        """Simulate one request list."""
        ordered = sorted(requests, key=lambda r: r.arrival_ns)
        return self.controller.run(ordered, workload_name=workload_name)

    def run_workload(self, workload_name: str, num_requests: int = 20_000,
                     seed: int = 1) -> SimStats:
        """Generate and simulate one named SPEC-like workload."""
        trace = generate_trace(workload_name, num_requests, seed)
        return self.run(trace, workload_name=workload_name)


def run_evaluation(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
) -> Dict[str, Dict[str, SimStats]]:
    """The full Fig. 9 grid: every architecture on every workload.

    Returns ``results[arch][workload] -> SimStats``.
    """
    workload_names = list(workloads) if workloads is not None \
        else sorted(SPEC_WORKLOADS)
    if not workload_names:
        raise SimulationError("need at least one workload")
    results: Dict[str, Dict[str, SimStats]] = {}
    for arch in architectures:
        simulator = MainMemorySimulator(arch)
        results[arch] = {}
        for workload in workload_names:
            results[arch][workload] = simulator.run_workload(
                workload, num_requests=num_requests, seed=seed
            )
    return results


def summarize(results: Dict[str, Dict[str, SimStats]]) -> Dict[str, Dict[str, float]]:
    """Per-architecture geomean summary of the Fig. 9 metrics."""
    summary: Dict[str, Dict[str, float]] = {}
    for arch, per_workload in results.items():
        stats = list(per_workload.values())
        summary[arch] = {
            "bandwidth_gbps": geometric_mean([s.bandwidth_gbps for s in stats]),
            "avg_latency_ns": geometric_mean([s.avg_latency_ns for s in stats]),
            "epb_pj": geometric_mean([s.energy_per_bit_pj for s in stats]),
            "bw_per_epb": geometric_mean([s.bw_per_epb for s in stats]),
        }
    return summary
