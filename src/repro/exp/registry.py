"""Experiment registry mapping paper artifact ids to runners.

Every experiment exposes the same invocation contract —
``Experiment.run(store=..., server=..., num_requests=...)`` — whether or
not its runner uses the simulation grid: the registry inspects each
runner's signature once and forwards only the keywords it accepts, so
grid-backed artifacts (fig9, fig10, headline) pick up result-store
read-through and evaluation-server routing while closed-form artifacts
(fig2–fig8, the tables) ignore them.  ``store_capable`` tells callers
(the ``run-all`` orchestrator, the round-trip pinning tests) which
experiments actually consume the substrate.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional

from ..errors import ConfigError
from . import fig2, fig3, fig4, fig6, fig7, fig8, fig9, fig10
from . import headline, reliability, table1, table2

#: The uniform keywords :meth:`Experiment.run` / :meth:`Experiment.main`
#: forward when the underlying runner accepts them.
CONTRACT_KEYWORDS = ("store", "server", "num_requests")


def _accepted_keywords(func: Callable[..., object]) -> FrozenSet[str]:
    """Contract keywords ``func`` can receive (by name or ``**kwargs``)."""
    try:
        parameters = inspect.signature(func).parameters
    except (TypeError, ValueError):    # C/builtin callables: assume none
        return frozenset()
    if any(p.kind is inspect.Parameter.VAR_KEYWORD
           for p in parameters.values()):
        return frozenset(CONTRACT_KEYWORDS)
    named = {
        name for name, p in parameters.items()
        if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                      inspect.Parameter.KEYWORD_ONLY)
    }
    return frozenset(named) & frozenset(CONTRACT_KEYWORDS)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact.

    ``runner`` returns the result object quietly; ``printer`` prints the
    paper's rows/series and returns the same result.  Both are invoked
    through the uniform contract methods below.
    """

    exp_id: str
    description: str
    runner: Callable[..., object]
    printer: Callable[..., object]

    @property
    def store_capable(self) -> bool:
        """True iff this experiment routes simulation cells through the
        store/server substrate (its runner accepts ``store``)."""
        return "store" in _accepted_keywords(self.runner)

    def _contract_kwargs(self, func: Callable[..., object],
                         store: Any, server: Optional[str],
                         num_requests: Optional[int]) -> Dict[str, Any]:
        accepted = _accepted_keywords(func)
        provided = {"store": store, "server": server,
                    "num_requests": num_requests}
        return {key: value for key, value in provided.items()
                if value is not None and key in accepted}

    def run(self, *, store: Any = None, server: Optional[str] = None,
            num_requests: Optional[int] = None, **kwargs: Any) -> object:
        """Run quietly with the uniform contract.

        ``store`` (path or :class:`~repro.sim.store.ResultStore`),
        ``server`` (daemon address) and ``num_requests`` reach the
        runner only if it accepts them; ``None`` means "use the
        experiment's default".  Extra ``kwargs`` pass through verbatim
        (experiment-specific axes like ``workloads``).
        """
        call = self._contract_kwargs(self.runner, store, server,
                                     num_requests)
        call.update(kwargs)
        return self.runner(**call)

    def main(self, *, store: Any = None, server: Optional[str] = None,
             num_requests: Optional[int] = None) -> object:
        """Print the artifact (the ``python -m repro.exp`` path), with
        the same uniform contract as :meth:`run`."""
        call = self._contract_kwargs(self.printer, store, server,
                                     num_requests)
        return self.printer(**call)


EXPERIMENTS: Dict[str, Experiment] = {
    "fig2": Experiment(
        "fig2", "Crossbar image corruption from write crosstalk",
        fig2.run, fig2.main),
    "fig3": Experiment(
        "fig3", "PCM dispersion (n, kappa) across the C-band",
        fig3.run, fig3.main),
    "fig4": Experiment(
        "fig4", "Cell contrast vs geometry; design-point selection",
        fig4.run, fig4.main),
    "fig6": Experiment(
        "fig6", "16-level latency/transmission tables + reset energies",
        fig6.run, fig6.main),
    "fig7": Experiment(
        "fig7", "COMET power stacks for b = 1, 2, 4",
        fig7.run, fig7.main),
    "fig8": Experiment(
        "fig8", "COSMOS vs COMET power stacks",
        fig8.run, fig8.main),
    "fig9": Experiment(
        "fig9", "Bandwidth / EPB / BW-per-EPB across architectures",
        fig9.run, fig9.main),
    "fig10": Experiment(
        "fig10", "DOTA accelerator EPB with each main memory",
        fig10.run, fig10.main),
    "table1": Experiment(
        "table1", "Optical loss and power parameters",
        table1.run, table1.main),
    "table2": Experiment(
        "table2", "Architectural details + derived timing validation",
        table2.run, table2.main),
    "headline": Experiment(
        "headline", "Abstract/conclusion headline ratios",
        headline.run, headline.main),
    "reliability": Experiment(
        "reliability", "Disturb/drift/endurance/WDM envelope (extension)",
        reliability.run, reliability.main),
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str, **kwargs: Any) -> object:
    """Run an experiment quietly; returns its result object."""
    return get_experiment(exp_id).run(**kwargs)
