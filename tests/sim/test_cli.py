"""Command-line runner (python -m repro.sim)."""

import io
import tempfile

import pytest

from repro.sim.__main__ import build_parser, main
from repro.sim.trace import TraceWriter
from repro.sim.tracegen import generate_trace


class TestParser:
    def test_requires_arch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "mcf"])

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--arch", "COMET"])

    def test_workload_and_trace_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--arch", "COMET", "--workload", "mcf", "--trace", "x"])


class TestRuns:
    def test_synthetic_workload_run(self, capsys):
        code = main(["--arch", "COMET", "--workload", "gcc",
                     "--requests", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out
        assert "COMET" in out

    def test_trace_file_run(self, capsys):
        trace = generate_trace("mcf", 500)
        with tempfile.NamedTemporaryFile("w+", suffix=".nvt",
                                         delete=False) as handle:
            path = handle.name
        TraceWriter(path).write(trace)
        code = main(["--arch", "2D_DDR3", "--trace", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "row hit rate" in out

    def test_gated_vs_dram_output_fields(self, capsys):
        main(["--arch", "EPCM-MM", "--workload", "omnetpp",
              "--requests", "500"])
        out = capsys.readouterr().out
        assert "EPB" in out and "p95" in out


class TestGridMode:
    def test_grid_all_architectures(self, capsys):
        code = main(["--arch", "ALL", "--grid", "--requests", "400",
                     "--workloads", "gcc,bursty", "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "7 architectures x 2 workloads" in out
        assert "COMET" in out and "2D_DDR3" in out

    def test_all_requires_grid(self):
        with pytest.raises(SystemExit):
            main(["--arch", "ALL", "--workload", "mcf"])

    def test_grid_options_rejected_without_grid(self):
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf", "--workers", "4"])
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf",
                  "--workloads", "all"])

    def test_grid_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--grid", "--workloads", "mcf,bogus"])

    def test_new_workloads_run(self, capsys):
        code = main(["--arch", "EPCM-MM", "--workload", "checkpoint",
                     "--requests", "600"])
        assert code == 0
        assert "checkpoint" in capsys.readouterr().out
