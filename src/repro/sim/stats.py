"""Simulation statistics: the Fig. 9 metrics.

``SimStats`` aggregates what the paper reports: sustained bandwidth,
average (and tail) application latency, and energy-per-bit.  EPB follows
the paper's accounting (Section IV.C): *all* energy spent while
orchestrating the trace's reads and writes — background + gated active
power + per-operation energy — divided by the bits transferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List

import numpy as np

from ..errors import SimulationError


@dataclass
class SimStats:
    """Aggregated results of one trace on one device."""

    device_name: str
    workload_name: str
    num_requests: int
    num_reads: int
    num_writes: int
    total_bytes: int
    sim_time_ns: float
    busy_time_ns: float
    active_time_ns: float
    latencies_ns: List[float] = field(repr=False, default_factory=list)
    op_energy_j: float = 0.0
    refresh_energy_j: float = 0.0
    refresh_count: int = 0
    background_power_w: float = 0.0
    active_power_w: float = 0.0
    row_hits: int = 0
    row_misses: int = 0

    def __post_init__(self) -> None:
        if self.sim_time_ns <= 0.0:
            raise SimulationError("simulation time must be positive")

    # -- throughput ---------------------------------------------------------

    @property
    def bandwidth_gbps(self) -> float:
        """Sustained bandwidth in GB/s (bytes / wall time)."""
        return self.total_bytes / self.sim_time_ns

    @property
    def bandwidth_bits_per_ns(self) -> float:
        return self.total_bytes * 8.0 / self.sim_time_ns

    # -- latency ---------------------------------------------------------------

    @property
    def avg_latency_ns(self) -> float:
        if not self.latencies_ns:
            raise SimulationError("no completed requests")
        return float(np.mean(self.latencies_ns))

    @property
    def p95_latency_ns(self) -> float:
        if not self.latencies_ns:
            raise SimulationError("no completed requests")
        return float(np.percentile(self.latencies_ns, 95.0))

    @property
    def max_latency_ns(self) -> float:
        if not self.latencies_ns:
            raise SimulationError("no completed requests")
        return float(np.max(self.latencies_ns))

    # -- energy -----------------------------------------------------------------

    @property
    def background_energy_j(self) -> float:
        return self.background_power_w * self.sim_time_ns * 1e-9

    @property
    def active_energy_j(self) -> float:
        return self.active_power_w * self.active_time_ns * 1e-9

    @property
    def total_energy_j(self) -> float:
        return (self.background_energy_j + self.active_energy_j
                + self.op_energy_j + self.refresh_energy_j)

    @property
    def energy_per_bit_pj(self) -> float:
        bits = self.total_bytes * 8
        if bits == 0:
            raise SimulationError("no bits transferred")
        return self.total_energy_j / bits * 1e12

    # -- composite ----------------------------------------------------------------

    @property
    def bw_per_epb(self) -> float:
        """The Fig. 9(c) composite metric: GB/s per pJ/bit."""
        return self.bandwidth_gbps / self.energy_per_bit_pj

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of wall time the device was serving."""
        return min(self.busy_time_ns / (self.sim_time_ns * 1.0), 1.0)

    def latency_row(self) -> Dict[str, float]:
        """Latency metrics as a dict, NaN when no request completed.

        Table/CSV paths use this instead of the raising properties so a
        cell with an empty ``latencies_ns`` (e.g. deserialized without the
        raw samples) degrades to NaN columns rather than crashing a
        partially printed table.
        """
        if not self.latencies_ns:
            nan = float("nan")
            return {"avg_latency_ns": nan, "p95_latency_ns": nan,
                    "max_latency_ns": nan}
        return {
            "avg_latency_ns": self.avg_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "max_latency_ns": self.max_latency_ns,
        }

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table printing / CSV (NaN latencies when empty)."""
        latency = self.latency_row()
        return {
            "device": self.device_name,
            "workload": self.workload_name,
            "bandwidth_gbps": self.bandwidth_gbps,
            "avg_latency_ns": latency["avg_latency_ns"],
            "p95_latency_ns": latency["p95_latency_ns"],
            "epb_pj": self.energy_per_bit_pj,
            "bw_per_epb": self.bw_per_epb,
            "row_hit_rate": self.row_hit_rate,
            "utilization": self.utilization,
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self, latencies: bool = True) -> Dict[str, Any]:
        """JSON-serializable dict of every field.

        ``latencies=False`` drops the raw per-request samples (the bulky
        part); the restored stats then report NaN latency columns via
        :meth:`latency_row` / :meth:`as_row`.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["latencies_ns"] = (
            [float(v) for v in self.latencies_ns] if latencies else [])
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored.

        Python floats round-trip exactly through ``json`` (repr-based),
        so ``from_dict(json.loads(json.dumps(s.to_dict()))) == s``
        bit-for-bit.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in known})


def geometric_mean(values: List[float]) -> float:
    """Geomean used for cross-workload averages."""
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0.0):
        raise SimulationError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))
