"""Analyzer self-tests: every checker demonstrated on a fixture
mini-tree (one planted violation + one pragma-suppressed twin each),
the JSON report schema pin, CLI exit-code pins, and the acceptance
gate — the real repo runs clean."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.tools.staticcheck import ALL_CHECKERS, run_checks

REPO_ROOT = Path(__file__).resolve().parents[2]


def _run(tmp_path, files, select=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_checks(tmp_path, ALL_CHECKERS, paths=[tmp_path],
                      select=[select] if select else None)


class TestDeterminism:
    def test_wall_clock_in_zone_flagged(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/controller.py": """\
            import time

            def simulate():
                return time.time()
            """}, select="determinism")
        [finding] = result.findings
        assert finding.checker == "determinism"
        assert finding.path.endswith("controller.py")
        assert finding.line == 4
        assert "time.time" in finding.message

    def test_alias_resolved_numpy_global_rng_flagged(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/store.py": """\
            import numpy as np

            def jitter():
                return np.random.rand(4)
            """}, select="determinism")
        [finding] = result.findings
        assert "numpy.random.rand" in finding.message

    def test_seeded_rng_and_out_of_zone_clock_are_fine(self, tmp_path):
        result = _run(tmp_path, {
            "repro/sim/tracegen.py": """\
                import numpy as np

                def trace(seed):
                    rng = np.random.RandomState(seed)
                    gen = np.random.default_rng(seed)
                    return rng, gen
                """,
            # workloads.py is outside the determinism zone.
            "repro/sim/workloads.py": """\
                import time

                def stamp():
                    return time.time()
                """,
        }, select="determinism")
        assert result.findings == []

    def test_pragma_suppresses(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/controller.py": """\
            import os

            def cache_dir():
                # staticcheck: allow[determinism]
                return os.environ.get("CACHE")

            def inline():
                return os.getenv("X")  # staticcheck: allow[*]
            """}, select="determinism")
        assert result.findings == []


class TestLockDiscipline:
    def test_unlocked_write_flagged_locked_write_fine(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/engine.py": """\
            import threading

            # staticcheck: guarded-by[_LOCK]
            _CACHE = {}
            _LOCK = threading.Lock()

            def bad(key, value):
                _CACHE[key] = value

            def also_bad():
                _CACHE.clear()

            def fine(key, value):
                with _LOCK:
                    _CACHE[key] = value

            def lock_free_read(key):
                return _CACHE.get(key)
            """}, select="lock-discipline")
        assert [f.line for f in result.findings] == [8, 11]
        assert "_CACHE" in result.findings[0].message
        assert "with _LOCK" in result.findings[0].message

    def test_reads_mode_flags_unlocked_reads(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/engine.py": """\
            import threading

            # staticcheck: guarded-by[_LOCK, reads]
            _COUNTERS = {"hits": 0}
            _LOCK = threading.Lock()

            def snapshot():
                return dict(_COUNTERS)

            def locked_snapshot():
                with _LOCK:
                    return dict(_COUNTERS)
            """}, select="lock-discipline")
        [finding] = result.findings
        assert finding.line == 8
        assert "read" in finding.message

    def test_register_at_fork_path_exempt(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/engine.py": """\
            import os
            import threading

            # staticcheck: guarded-by[_LOCK]
            _CACHE = {}
            _LOCK = threading.Lock()

            def _reinit():
                _CACHE.clear()

            os.register_at_fork(after_in_child=_reinit)
            """}, select="lock-discipline")
        assert result.findings == []

    def test_audit_erosion_flagged(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/controller.py": """\
            COUNTERS = {}
            """}, select="lock-discipline")
        [finding] = result.findings
        assert "no guarded-by attributes" in finding.message

    def test_pragma_suppresses(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/engine.py": """\
            import threading

            # staticcheck: guarded-by[_LOCK]
            _CACHE = {}
            _LOCK = threading.Lock()

            def shutdown():
                _CACHE.clear()  # staticcheck: allow[lock-discipline]
            """}, select="lock-discipline")
        assert result.findings == []


_FIXTURE_EVALTASK = """\
    from dataclasses import dataclass
    from typing import Optional

    @dataclass(frozen=True)
    class EvalTask:
        architecture: str
        workload: str
        num_requests: int
        seed: int
        queue_depth: Optional[int] = None
    """


class TestDigestCoverage:
    STORE_TEMPLATE = """\
        import dataclasses

        def _sha256(payload):
            return "digest"

        def device_fingerprint(architecture):
            return _sha256(dataclasses.asdict(object()))

        def workload_fingerprint(workload):
            return _sha256({fingerprint_body})

        def task_digest(task):{pragma}
            return _sha256({{
                "schema": 1,
                "results_version": 2,
                "architecture": task.architecture,
                "workload": task.workload,
                "num_requests": task.num_requests,{seed_line}
                "queue_depth": task.queue_depth,
                "device": device_fingerprint(task.architecture),
                "workload_model": workload_fingerprint(task.workload),
            }})
        """

    def _store(self, seed=True, asdict=True, pragma=False):
        return textwrap.dedent(self.STORE_TEMPLATE).format(
            fingerprint_body="dataclasses.asdict(object())" if asdict
            else "repr(workload)",
            seed_line='\n        "seed": task.seed,' if seed else "",
            pragma="" if not pragma else
            "\n    # staticcheck: allow[digest-coverage]")
        # NOTE: the pragma lands on the line above `return _sha256({`,
        # annotating the dict-literal line the findings point at.

    def test_missing_task_field_flagged(self, tmp_path):
        result = _run(tmp_path, {
            "repro/sim/engine.py": _FIXTURE_EVALTASK,
            "repro/sim/store.py": self._store(seed=False),
        }, select="digest-coverage")
        [finding] = result.findings
        assert "'seed'" in finding.message
        assert finding.path.endswith("store.py")

    def test_fingerprint_without_asdict_flagged(self, tmp_path):
        result = _run(tmp_path, {
            "repro/sim/engine.py": _FIXTURE_EVALTASK,
            "repro/sim/store.py": self._store(asdict=False),
        }, select="digest-coverage")
        [finding] = result.findings
        assert "workload_fingerprint" in finding.message
        assert "asdict" in finding.message

    def test_full_coverage_is_clean(self, tmp_path):
        result = _run(tmp_path, {
            "repro/sim/engine.py": _FIXTURE_EVALTASK,
            "repro/sim/store.py": self._store(),
        }, select="digest-coverage")
        assert result.findings == []

    def test_pragma_suppresses(self, tmp_path):
        result = _run(tmp_path, {
            "repro/sim/engine.py": _FIXTURE_EVALTASK,
            "repro/sim/store.py": self._store(seed=False, pragma=True),
        }, select="digest-coverage")
        assert result.findings == []


class TestWireParity:
    def test_field_drift_flagged(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/wire.py": """\
            import dataclasses
            from dataclasses import dataclass

            @dataclass
            class Job:
                alpha: int
                beta: int

            def job_to_dict(job: Job):
                return dataclasses.asdict(job)

            def job_from_dict(payload):
                return Job(alpha=payload.get("alpha", 0), beta=0)
            """}, select="wire-parity")
        [finding] = result.findings
        assert "'beta'" in finding.message
        assert "job_to_dict" in finding.message

    def test_dataclass_field_missing_from_both_sides_flagged(
            self, tmp_path):
        result = _run(tmp_path, {"repro/sim/wire.py": """\
            from dataclasses import dataclass

            @dataclass
            class Point:
                x: int
                y: int

                def to_dict(self):
                    return {"x": self.x}

                @classmethod
                def from_dict(cls, payload):
                    return cls(x=payload["x"], y=0)
            """}, select="wire-parity")
        [finding] = result.findings
        assert "'y'" in finding.message
        assert "wire schema" in finding.message

    def test_schema_driven_pair_is_clean(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/wire.py": """\
            from dataclasses import dataclass, fields

            @dataclass
            class Job:
                alpha: int
                beta: int

                def to_dict(self):
                    return {f.name: getattr(self, f.name)
                            for f in fields(self)}

                @classmethod
                def from_dict(cls, payload):
                    known = {f.name for f in fields(cls)}
                    return cls(**{k: v for k, v in payload.items()
                                  if k in known})
            """}, select="wire-parity")
        assert result.findings == []

    def test_pragma_suppresses(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/wire.py": """\
            import dataclasses
            from dataclasses import dataclass

            @dataclass
            class Job:
                alpha: int
                beta: int

            def job_to_dict(job: Job):
                return dataclasses.asdict(job)

            # staticcheck: allow[wire-parity]
            def job_from_dict(payload):
                return Job(alpha=payload.get("alpha", 0), beta=0)
            """}, select="wire-parity")
        assert result.findings == []


class TestFloatExactness:
    def test_float_libm_and_flags_flagged(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/_fastloop.py": '''\
            _C_SOURCE = """
            float helper(float x) { return sqrt(x); }
            """

            def _compile(source, target):
                return ["-O2", "-shared"]
            ''', }, select="float-exactness")
        messages = [f.message for f in result.findings]
        assert any("`float`" in m for m in messages)
        assert any("sqrt" in m for m in messages)
        assert any("-ffp-contract=off" in m for m in messages)
        assert any("-fno-fast-math" in m for m in messages)
        float_finding = next(f for f in result.findings
                             if "`float`" in f.message)
        assert float_finding.line == 2  # inside the C string literal

    def test_exact_twin_is_clean(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/_fastloop.py": '''\
            _C_SOURCE = """
            #include <math.h>
            /* float in a comment is fine */
            double helper(double x) { return fmod(x, 2.0); }
            """

            def _compile(source, target):
                return ["-O2", "-ffp-contract=off", "-fno-fast-math"]
            ''', }, select="float-exactness")
        assert result.findings == []

    def test_pragma_suppresses_flag_findings(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/_fastloop.py": '''\
            _C_SOURCE = """
            double helper(double x) { return x + 1.0; }
            """

            # staticcheck: allow[float-exactness]
            def _compile(source, target):
                return ["-O2"]
            ''', }, select="float-exactness")
        assert result.findings == []


class TestRunner:
    def test_parse_error_becomes_finding(self, tmp_path):
        result = _run(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
        [finding] = result.findings
        assert finding.checker == "parse"
        assert "syntax error" in finding.message

    def test_select_and_ignore(self, tmp_path):
        files = {"repro/sim/controller.py": "import time\n"
                 "def f():\n    return time.time()\n"}
        selected = _run(tmp_path, files, select="determinism")
        assert selected.checkers == ("determinism",)
        ignored = run_checks(tmp_path, ALL_CHECKERS, paths=[tmp_path],
                             ignore=["determinism", "lock-discipline"])
        assert "determinism" not in ignored.checkers
        assert ignored.findings == []


def _cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.tools.staticcheck", *args],
        capture_output=True, text=True, env=env, cwd=cwd, timeout=120)


class TestCli:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        module = tmp_path / "repro" / "sim" / "controller.py"
        module.parent.mkdir(parents=True)
        module.write_text("import time\n\ndef f():\n"
                          "    return time.time()\n")
        return tmp_path

    def test_findings_exit_1_clean_exit_0(self, dirty_tree):
        proc = _cli(["--root", str(dirty_tree), str(dirty_tree),
                     "--select", "determinism"], cwd=REPO_ROOT)
        assert proc.returncode == 1
        assert "[determinism]" in proc.stdout
        proc = _cli(["--root", str(dirty_tree), str(dirty_tree),
                     "--select", "wire-parity"], cwd=REPO_ROOT)
        assert proc.returncode == 0
        assert "0 findings" in proc.stdout

    def test_unknown_checker_exits_2(self, dirty_tree):
        proc = _cli(["--select", "nonsense"], cwd=REPO_ROOT)
        assert proc.returncode == 2
        assert "unknown checker" in proc.stderr

    def test_json_schema_pin(self, dirty_tree):
        proc = _cli(["--root", str(dirty_tree), str(dirty_tree),
                     "--format", "json"], cwd=REPO_ROOT)
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        assert set(report) == {"version", "files_scanned", "checkers",
                               "findings"}
        assert report["version"] == 1
        assert report["files_scanned"] == 1
        assert set(report["checkers"]) == {
            "determinism", "lock-discipline", "digest-coverage",
            "wire-parity", "float-exactness"}
        finding = report["findings"][0]
        assert set(finding) == {"checker", "path", "line", "message",
                                "hint", "severity"}
        assert finding["severity"] == "error"
        assert isinstance(finding["line"], int)

    def test_list_checkers(self):
        proc = _cli(["--list-checkers"], cwd=REPO_ROOT)
        assert proc.returncode == 0
        assert len(proc.stdout.strip().splitlines()) == len(ALL_CHECKERS)


class TestRepoIsClean:
    def test_analyzer_passes_on_the_repo(self):
        """The acceptance gate: the shipped tree carries zero findings
        with every checker active."""
        result = run_checks(REPO_ROOT, ALL_CHECKERS)
        assert [f.describe() for f in result.findings] == []
        assert len(result.checkers) == 5
        assert result.files_scanned > 50
