"""Fig. 9 — bandwidth, EPB and BW/EPB across all architectures.

Runs the full (architecture x workload) grid through the memory simulator
and prints the per-workload series plus the cross-workload geomeans and
the COMET-vs-everything ratios the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..sim.engine import run_evaluation
from ..sim.factory import ARCHITECTURE_NAMES
from ..sim.simulator import summarize
from ..sim.stats import SimStats
from .report import print_table

#: Paper-reported average ratios (COMET vs each architecture).
PAPER_BW_RATIOS = {
    "2D_DDR3": 100.3, "3D_DDR3": 47.2, "2D_DDR4": 58.7,
    "3D_DDR4": 42.1, "EPCM-MM": 40.6, "COSMOS": 5.1,
}
PAPER_EPB_RATIOS = {"2D_DDR3": 4.1, "2D_DDR4": 2.3, "COSMOS": 12.9}
PAPER_BW_PER_EPB_RATIOS = {"3D_DDR4": 6.5, "COSMOS": 65.8}


@dataclass
class Fig9Result:
    results: Dict[str, Dict[str, SimStats]]
    summary: Dict[str, Dict[str, float]]

    def bw_ratio(self, other: str) -> float:
        return (self.summary["COMET"]["bandwidth_gbps"]
                / self.summary[other]["bandwidth_gbps"])

    def epb_ratio(self, other: str) -> float:
        """How much lower COMET's EPB is than ``other``'s."""
        return (self.summary[other]["epb_pj"]
                / self.summary["COMET"]["epb_pj"])

    def latency_ratio(self, other: str) -> float:
        return (self.summary[other]["avg_latency_ns"]
                / self.summary["COMET"]["avg_latency_ns"])

    def bw_per_epb_ratio(self, other: str) -> float:
        return (self.summary["COMET"]["bw_per_epb"]
                / self.summary[other]["bw_per_epb"])


def run(num_requests: int = 8000, seed: int = 1,
        workers: Optional[int] = None,
        workloads: Optional[Iterable[str]] = None) -> Fig9Result:
    """Run the grid; ``workers`` > 1 fans it out over processes and
    ``workloads`` swaps in a non-default set (e.g. the multi-programmed
    mixes) without changing the reported metrics."""
    results = run_evaluation(num_requests=num_requests, seed=seed,
                             workers=workers, workloads=workloads)
    return Fig9Result(results=results, summary=summarize(results))


def main(num_requests: int = 8000) -> Fig9Result:
    result = run(num_requests=num_requests)

    workloads = sorted(next(iter(result.results.values())))
    for metric, fmt in (("bandwidth_gbps", "{:.2f}"),
                        ("energy_per_bit_pj", "{:.1f}"),
                        ("bw_per_epb", "{:.4f}")):
        rows: List[list] = []
        for arch in ARCHITECTURE_NAMES:
            row = [arch]
            for workload in workloads:
                stats = result.results[arch][workload]
                row.append(fmt.format(getattr(stats, metric)))
            rows.append(row)
        print_table(["arch"] + workloads, rows,
                    title=f"Fig. 9 — {metric} per workload")

    rows = []
    for arch in ARCHITECTURE_NAMES:
        s = result.summary[arch]
        rows.append([arch, f"{s['bandwidth_gbps']:.2f}",
                     f"{s['avg_latency_ns']:.1f}", f"{s['epb_pj']:.1f}",
                     f"{s['bw_per_epb']:.4f}"])
    print_table(["arch", "BW (GB/s)", "latency (ns)", "EPB (pJ/b)",
                 "BW/EPB"], rows, title="Fig. 9 — geomean summary")

    print("COMET ratios (measured | paper):")
    for other, paper in PAPER_BW_RATIOS.items():
        print(f"  BW vs {other:8s}: {result.bw_ratio(other):6.1f}x | {paper:.1f}x")
    for other, paper in PAPER_EPB_RATIOS.items():
        print(f"  EPB vs {other:8s}: {result.epb_ratio(other):6.1f}x | {paper:.1f}x")
    for other, paper in PAPER_BW_PER_EPB_RATIOS.items():
        print(f"  BW/EPB vs {other:8s}: {result.bw_per_epb_ratio(other):6.1f}x | {paper:.1f}x")
    print()
    return result


if __name__ == "__main__":
    main()
