"""Bench Fig. 9 — bandwidth / EPB / BW-per-EPB across all architectures.

The heavyweight bench: the full (7 architectures x 8 workloads) simulator
grid.  Prints the geomean summary rows the paper plots and asserts the
ordering/ratio shapes.
"""

from repro.exp.fig9 import run as run_fig9
from repro.sim.factory import ARCHITECTURE_NAMES


def bench_fig9_full_grid(benchmark, eval_store):
    # With $REPRO_RESULT_STORE set this times the *incremental* grid.
    result = benchmark.pedantic(
        run_fig9, kwargs={"num_requests": 8000, "store": eval_store},
        rounds=1, iterations=1)

    summary = result.summary
    print()
    for arch in ARCHITECTURE_NAMES:
        s = summary[arch]
        print(f"  {arch:10s} BW {s['bandwidth_gbps']:7.2f} GB/s   "
              f"lat {s['avg_latency_ns']:8.1f} ns   "
              f"EPB {s['epb_pj']:8.1f} pJ/b   "
              f"BW/EPB {s['bw_per_epb']:.4f}")

    # Headline shapes (paper values in brackets):
    # COMET has the top bandwidth overall.
    comet_bw = summary["COMET"]["bandwidth_gbps"]
    assert all(comet_bw > summary[a]["bandwidth_gbps"]
               for a in ARCHITECTURE_NAMES if a != "COMET")
    # COMET vs COSMOS: BW [5.1-7.1x], EPB [12.9-15.1x], latency [3x].
    assert 3.5 <= result.bw_ratio("COSMOS") <= 10.0
    assert 9.0 <= result.epb_ratio("COSMOS") <= 25.0
    assert result.latency_ratio("COSMOS") > 2.0
    # BW/EPB vs COSMOS [65.8x].
    assert 40.0 <= result.bw_per_epb_ratio("COSMOS") <= 200.0
    # 2D_DDR3 is the slowest DRAM [100.3x gap is the paper's largest].
    assert summary["2D_DDR3"]["bandwidth_gbps"] \
        == min(summary[a]["bandwidth_gbps"]
               for a in ("2D_DDR3", "2D_DDR4", "3D_DDR3", "3D_DDR4"))
    # 3D/PCM parts beat photonics on raw EPB (Section IV.C's observation).
    assert summary["3D_DDR4"]["epb_pj"] < summary["COMET"]["epb_pj"]


def bench_fig9_single_workload_comet(benchmark):
    """Microbench: one workload on COMET (simulator throughput probe)."""
    from repro.sim import MainMemorySimulator

    simulator = MainMemorySimulator("COMET")
    stats = benchmark(simulator.run_workload, "mcf", 4000)
    assert stats.bandwidth_gbps > 10.0
