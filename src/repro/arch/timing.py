"""Table II timing derivation from the device and circuit levels.

The paper's Table II lists COMET's simulator timing parameters.  This
module derives them from first principles so the reproduction can check
they are mutually consistent:

* **read time** — EO ring tuning (2 ns) + time-of-flight + photodetection.
* **max write time** — EO tuning + the slowest level-program pulse
  (SET ramp + isothermal hold) + thermal settle below the window.
* **erase time** — EO tuning + melt-quench RESET pulse + quench settle +
  the GST subarray switch transition that re-gates the subarray.
* **data burst time** — one bus-width flit per ns on the WDM link.

The derived values land within ~20 % of Table II; the simulator uses the
paper's Table II numbers (as the paper's NVMain configuration did), and
EXPERIMENTS.md records the derived-vs-published comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import COMET_TIMINGS, OpticalParameters, PhotonicMemoryTimings, TABLE_I
from ..device.mlc import MultiLevelCell
from ..device.programming import CellProgrammer, ProgrammingMode


@dataclass(frozen=True)
class DerivedTimings:
    """Device-derived photonic timing set, with the Table II reference."""

    read_time_ns: float
    max_write_time_ns: float
    erase_time_ns: float
    data_burst_time_ns: float
    reference: PhotonicMemoryTimings = COMET_TIMINGS

    def deviations(self) -> dict:
        """Relative deviation of each derived value from Table II."""
        ref = self.reference
        return {
            "read": self.read_time_ns / ref.read_time_ns - 1.0,
            "write": self.max_write_time_ns / ref.write_time_ns - 1.0,
            "erase": self.erase_time_ns / ref.erase_time_ns - 1.0,
            "burst": self.data_burst_time_ns / ref.data_burst_time_ns - 1.0,
        }


def derive_comet_timings(
    programmer: CellProgrammer,
    mlc: MultiLevelCell,
    params: OpticalParameters = TABLE_I,
    detection_time_ns: float = 7.0,
    flight_time_ns: float = 1.0,
) -> DerivedTimings:
    """Derive the COMET timing set from a calibrated cell programmer."""
    eo_ns = params.eo_tuning_latency_s * 1e9
    switch_ns = params.pcm_switch_time_s * 1e9

    read_ns = eo_ns + flight_time_ns + detection_time_ns

    write_ns = eo_ns + programmer.max_write_latency_s(
        mlc, ProgrammingMode.AMORPHOUS_DEPOSITED
    ) * 1e9

    reset = programmer.reset_pulse(ProgrammingMode.AMORPHOUS_DEPOSITED)
    peak_k = programmer.thermal.temperature_k(reset.power_w, reset.duration_s)
    settle_s = programmer.thermal.time_to_cool_s(
        peak_k, programmer.kinetics.thermal.crystallization_temperature_k
    )
    erase_ns = eo_ns + (reset.duration_s + settle_s) * 1e9 + switch_ns

    return DerivedTimings(
        read_time_ns=read_ns,
        max_write_time_ns=write_ns,
        erase_time_ns=erase_ns,
        data_burst_time_ns=1.0,
    )
