"""Plain-text table rendering, CSV output, and the full-regeneration
orchestrator for experiment results."""

from __future__ import annotations

import csv
import io
import sys
import time
from typing import Any, Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    print(format_table(headers, rows, title))
    print()


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text (for saving series to disk)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_fmt(value) for value in row])
    return buffer.getvalue()


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(to_csv(headers, rows))


def run_all(
    experiment_ids: Optional[Sequence[str]] = None,
    store: Any = None,
    server: Optional[str] = None,
    num_requests: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Regenerate paper artifacts end to end, incrementally.

    Runs each experiment's printer through the registry's uniform
    contract — grid-backed experiments (fig9, fig10, headline) get the
    ``store``/``server`` substrate, closed-form ones run as always —
    and finishes with a summary table: wall time, whether the
    experiment is store-capable, and how many simulation cells it
    actually *computed* (store hits don't count).  A second pass
    against a populated store therefore shows ``computed = 0`` on every
    store-capable row; ``python -m repro.exp run-all
    --expect-no-compute`` turns that into an exit code.

    Failures don't abort the regeneration: the failing experiment is
    reported in its summary row (status ``error``) and the rest still
    run.  Returns the summary rows.
    """
    # Imported lazily: the registry imports the experiment modules,
    # several of which import this module for table rendering.
    from ..sim.engine import computed_cell_count
    from .registry import EXPERIMENTS, get_experiment

    ids = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    summary: List[Dict[str, object]] = []
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        print(f"=== {experiment.exp_id}: {experiment.description} ===")
        started = time.perf_counter()
        computed_before = computed_cell_count()
        status = "ok"
        try:
            experiment.main(store=store, server=server,
                            num_requests=num_requests)
        except SystemExit as error:
            status = f"error (exit {error.code})"
        except Exception as error:    # summary must cover every artifact
            status = "error"
            print(f"{experiment.exp_id}: failed: {error}", file=sys.stderr)
        summary.append({
            "experiment": experiment.exp_id,
            "status": status,
            "store-capable": "yes" if experiment.store_capable else "-",
            "computed cells": computed_cell_count() - computed_before,
            "seconds": round(time.perf_counter() - started, 2),
        })
    headers = list(summary[0]) if summary else []
    print_table(headers, [[row[h] for h in headers] for row in summary],
                title="run-all summary")
    return summary


def ratio_line(label: str, ours: float, paper: float, unit: str = "x") -> str:
    """One paper-vs-measured comparison line."""
    return (f"{label}: measured {ours:.2f}{unit}  |  paper {paper:.2f}{unit}  "
            f"({ours / paper:.2f} of paper)")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
