"""Lorentz–Lorenz effective-medium blending."""

import numpy as np
import pytest

from repro.errors import MaterialError
from repro.materials.effective_medium import (
    effective_permittivity,
    linear_mix,
    lorentz_lorenz_mix,
)

EPS_A = complex(15.5, 0.35)    # ~amorphous GST
EPS_C = complex(36.6, 10.1)    # ~crystalline GST


class TestLorentzLorenz:
    def test_endpoints_exact(self):
        assert lorentz_lorenz_mix(EPS_A, EPS_C, 0.0) == pytest.approx(EPS_A)
        assert lorentz_lorenz_mix(EPS_A, EPS_C, 1.0) == pytest.approx(EPS_C)

    def test_midpoint_between_endpoints(self):
        mid = lorentz_lorenz_mix(EPS_A, EPS_C, 0.5)
        assert EPS_A.real < mid.real < EPS_C.real
        assert EPS_A.imag < mid.imag < EPS_C.imag

    def test_monotone_in_fraction(self):
        values = [lorentz_lorenz_mix(EPS_A, EPS_C, fc).real
                  for fc in np.linspace(0, 1, 11)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_differs_from_linear_mix(self):
        """LL weights polarizability, not permittivity — they must differ."""
        ll = lorentz_lorenz_mix(EPS_A, EPS_C, 0.5)
        lin = linear_mix(EPS_A, EPS_C, 0.5)
        assert abs(ll - lin) > 0.1

    def test_ll_below_linear_for_convex_mix(self):
        """LL mixing bows below the linear chord for high-index composites."""
        ll = lorentz_lorenz_mix(EPS_A, EPS_C, 0.5)
        lin = linear_mix(EPS_A, EPS_C, 0.5)
        assert ll.real < lin.real

    def test_fraction_bounds(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(MaterialError):
                lorentz_lorenz_mix(EPS_A, EPS_C, bad)

    def test_array_inputs(self):
        eps_a = np.array([EPS_A, EPS_A])
        eps_c = np.array([EPS_C, EPS_C])
        out = lorentz_lorenz_mix(eps_a, eps_c, 0.3)
        assert out.shape == (2,)
        assert out[0] == pytest.approx(out[1])


class TestDispatch:
    def test_scheme_dispatch(self):
        ll = effective_permittivity(EPS_A, EPS_C, 0.4, scheme="lorentz-lorenz")
        lin = effective_permittivity(EPS_A, EPS_C, 0.4, scheme="linear")
        assert ll != lin

    def test_unknown_scheme(self):
        with pytest.raises(MaterialError):
            effective_permittivity(EPS_A, EPS_C, 0.4, scheme="bruggeman")
