"""Trace-driven main-memory simulator (the NVMain 2.0 substitute).

The paper evaluates every architecture with a heavily modified NVMain 2.0
[30].  This package provides the equivalent: a trace-driven, bank-accurate
FCFS/FR-FCFS-lite memory simulator with row-buffer DRAM timing, refresh,
data-bus contention, per-operation + static energy accounting, and the
bandwidth / latency / EPB statistics Fig. 9 plots.

Key entry points:

* :func:`repro.sim.factory.build_device` — device model for any Fig. 9
  architecture name ("COMET", "COSMOS", "EPCM-MM", "2D_DDR3", ...).
* :class:`repro.sim.simulator.MainMemorySimulator` — runs a request list.
* :mod:`repro.sim.tracegen` — deterministic SPEC-like workload generators.
* :mod:`repro.sim.trace` — NVMain-format trace reader/writer.
"""

from .request import MemRequest, OpType
from .trace import TraceReader, TraceWriter, parse_trace_line, format_trace_line
from .tracegen import SyntheticWorkload, SPEC_WORKLOADS, generate_trace
from .devices import (
    MemoryDeviceModel,
    RowBufferTiming,
    RefreshSpec,
    EnergyModel,
)
from .stats import SimStats
from .simulator import MainMemorySimulator
from .factory import build_device, ARCHITECTURE_NAMES

__all__ = [
    "MemRequest",
    "OpType",
    "TraceReader",
    "TraceWriter",
    "parse_trace_line",
    "format_trace_line",
    "SyntheticWorkload",
    "SPEC_WORKLOADS",
    "generate_trace",
    "MemoryDeviceModel",
    "RowBufferTiming",
    "RefreshSpec",
    "EnergyModel",
    "SimStats",
    "MainMemorySimulator",
    "build_device",
    "ARCHITECTURE_NAMES",
]
