"""Command-line simulator runner.

Run a synthetic workload::

    python -m repro.sim --arch COMET --workload mcf --requests 20000

a multi-programmed or phased workload::

    python -m repro.sim --arch COMET --workload mix_mcf_lbm
    python -m repro.sim --arch 3D_DDR4 --workload checkpoint

an NVMain trace file::

    python -m repro.sim --arch 2D_DDR3 --trace path/to/trace.nvt

or the full evaluation grid through the parallel engine::

    python -m repro.sim --arch ALL --grid --workers 4
    python -m repro.sim --arch ALL --grid --workloads mcf,bursty,checkpoint
"""

from __future__ import annotations

import argparse
import sys

from ..errors import SimulationError
from .engine import run_evaluation
from .factory import ARCHITECTURE_NAMES
from .simulator import MainMemorySimulator, summarize
from .stats import SimStats
from .trace import TraceReader
from .tracegen import SPEC_WORKLOADS, WORKLOAD_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sim",
        description="Trace-driven main-memory simulation (NVMain substitute)",
    )
    parser.add_argument("--arch", required=True,
                        choices=ARCHITECTURE_NAMES + ("ALL",),
                        help="architecture to simulate (ALL with --grid "
                             "runs every architecture)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=WORKLOAD_NAMES,
                        help="synthetic workload (SPEC preset, mix_*, "
                             "bursty, checkpoint)")
    source.add_argument("--trace", help="NVMain trace file")
    source.add_argument("--grid", action="store_true",
                        help="run the full evaluation grid through the "
                             "parallel engine")
    parser.add_argument("--workloads", default=None,
                        help="grid workload set: 'spec' (default), 'all', "
                             "or a comma-separated list of workload names")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --grid (default: "
                             "serial, or $REPRO_EVAL_WORKERS)")
    parser.add_argument("--requests", type=int, default=20_000,
                        help="request count for synthetic workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cpu-ghz", type=float, default=2.0,
                        help="CPU frequency for trace cycle conversion")
    return parser


def _grid_workloads(spec: str) -> list:
    if spec == "spec":
        return sorted(SPEC_WORKLOADS)
    if spec == "all":
        return list(WORKLOAD_NAMES)
    return [name.strip() for name in spec.split(",") if name.strip()]


def _print_stats(stats: SimStats) -> None:
    print(f"architecture : {stats.device_name}")
    print(f"workload     : {stats.workload_name}")
    print(f"requests     : {stats.num_requests} "
          f"({stats.num_reads} R / {stats.num_writes} W)")
    print(f"bandwidth    : {stats.bandwidth_gbps:.2f} GB/s")
    print(f"avg latency  : {stats.avg_latency_ns:.1f} ns "
          f"(p95 {stats.p95_latency_ns:.1f} ns)")
    print(f"EPB          : {stats.energy_per_bit_pj:.1f} pJ/bit")
    print(f"BW/EPB       : {stats.bw_per_epb:.4f}")
    if stats.row_hits or stats.row_misses:
        print(f"row hit rate : {stats.row_hit_rate:.1%}")


def _run_grid(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    architectures = ARCHITECTURE_NAMES if args.arch == "ALL" \
        else (args.arch,)
    workload_names = _grid_workloads(args.workloads or "spec")
    if not workload_names:
        parser.error("--workloads resolved to an empty set")
    try:
        results = run_evaluation(
            architectures=architectures,
            workloads=workload_names,
            num_requests=args.requests,
            seed=args.seed,
            workers=args.workers,
        )
    except SimulationError as error:
        parser.error(str(error))
    summary = summarize(results)
    header = (f"{'arch':10s} {'BW (GB/s)':>10s} {'latency (ns)':>13s} "
              f"{'EPB (pJ/b)':>11s} {'BW/EPB':>9s}")
    print(f"grid         : {len(architectures)} architectures x "
          f"{len(workload_names)} workloads "
          f"({', '.join(workload_names)})")
    print(header)
    print("-" * len(header))
    for arch in architectures:
        row = summary[arch]
        print(f"{arch:10s} {row['bandwidth_gbps']:10.2f} "
              f"{row['avg_latency_ns']:13.1f} {row['epb_pj']:11.1f} "
              f"{row['bw_per_epb']:9.4f}")
    return 0


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.grid:
        return _run_grid(args, parser)
    if args.arch == "ALL":
        parser.error("--arch ALL requires --grid")
    if args.workers is not None or args.workloads is not None:
        parser.error("--workers/--workloads only apply with --grid")
    simulator = MainMemorySimulator(args.arch)
    if args.workload:
        stats = simulator.run_workload(args.workload, args.requests, args.seed)
    else:
        requests = TraceReader(args.trace, cpu_freq_ghz=args.cpu_ghz).read_all()
        stats = simulator.run(requests, workload_name=args.trace)
    _print_stats(stats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
