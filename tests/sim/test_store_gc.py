"""Store garbage collection: stale entries, orphans, temp files, CLI.

The regression behind these tests: stale entries (old ``RESULTS_VERSION``
or fingerprint mismatches) were silently treated as misses but never
deleted, so stores grew without bound across model edits.
"""

import json

import pytest

from repro.sim.engine import EvalTask, evaluate_cell
from repro.sim import store as store_mod
from repro.sim.store import ResultStore

TASK_A = EvalTask("EPCM-MM", "gcc", 300, 7)
TASK_B = EvalTask("2D_DDR3", "gcc", 300, 7)


@pytest.fixture(autouse=True)
def fresh_caches():
    """Fingerprints/digests are memoized per process; clear around each
    test so monkeypatched fingerprints take effect and never leak."""
    store_mod.clear_fingerprint_cache()
    yield
    store_mod.clear_fingerprint_cache()


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results")


def _populate(store):
    for task in (TASK_A, TASK_B):
        store.put(task, evaluate_cell(task))


class TestGc:
    def test_fresh_store_is_all_live(self, store):
        _populate(store)
        report = store.gc()
        assert report.live == 2
        assert report.removed_total == 0
        assert store.get(TASK_A) is not None
        assert store.get(TASK_B) is not None

    def test_model_edit_then_gc_shrinks_to_live_cells(self, store,
                                                      monkeypatch):
        """The headline regression: after a device-model edit the old
        cells are unreachable; gc must remove exactly them."""
        _populate(store)
        stale_path = store.path_for(TASK_A)

        # "Edit" the EPCM device model: its fingerprint changes, the
        # 2D_DDR3 model is untouched.
        real_fingerprint = store_mod.device_fingerprint

        def edited(architecture):
            if architecture == "EPCM-MM":
                return "e" * 64
            return real_fingerprint(architecture)

        monkeypatch.setattr(store_mod, "device_fingerprint", edited)
        store_mod.clear_fingerprint_cache()

        assert store.get(TASK_A) is None        # miss, but still on disk
        assert stale_path.exists()
        store.put(TASK_A, evaluate_cell(TASK_A))  # recompute under new model
        assert len(store) == 3                  # unbounded-growth symptom

        report = store.gc()
        assert [p.name for p in report.removed_stale] == [stale_path.name]
        assert report.live == 2
        assert len(store) == 2                  # exactly the live cells
        assert store.get(TASK_A) is not None
        assert store.get(TASK_B) is not None
        assert not stale_path.exists()

    def test_results_version_bump_orphans_everything(self, store,
                                                     monkeypatch):
        _populate(store)
        monkeypatch.setattr(store_mod, "RESULTS_VERSION",
                            store_mod.RESULTS_VERSION + 1)
        store_mod.clear_fingerprint_cache()
        report = store.gc()
        assert report.live == 0
        assert len(report.removed_stale) == 2
        assert len(store) == 0

    def test_unknown_architecture_entry_is_stale(self, store):
        """An entry naming a model this build no longer knows can never
        be served again — gc removes it instead of crashing."""
        _populate(store)
        path = store.path_for(TASK_A)
        entry = json.loads(path.read_text())
        entry["task"]["architecture"] = "RETIRED-ARCH"
        fake = path.parent / ("0" * 64 + ".json")
        fake.write_text(json.dumps(entry))
        report = store.gc()
        assert fake in report.removed_stale
        assert report.live == 2

    def test_orphaned_sidecar_and_temp_files_removed(self, store):
        _populate(store)
        shard = store.path_for(TASK_A).parent
        orphan = shard / ("a" * 64 + ".lat")
        orphan.write_bytes(b"\x00" * 24)
        temp = shard / (".{}.json.stage123".format("b" * 64))
        temp.write_bytes(b"{torn")
        report = store.gc()
        assert orphan in report.removed_sidecars
        assert temp in report.removed_temp_files
        assert not orphan.exists() and not temp.exists()
        assert report.live == 2

    def test_unrelated_hidden_files_survive(self, store):
        """gc must only touch the store's own staging pattern — never a
        user's dotfiles or NFS silly-rename files beside the entries."""
        _populate(store)
        shard = store.path_for(TASK_A).parent
        keep = [store.root / ".gitignore", shard / ".nfs000000123",
                store.root / ".DS_Store"]
        for path in keep:
            path.write_text("keep me")
        staged = store.root / (".store.json.stage1")
        staged.write_text("{torn")
        report = store.gc()
        assert report.removed_temp_files == [staged]
        assert all(path.exists() for path in keep)

    def test_torn_sidecar_entry_removed(self, store):
        _populate(store)
        sidecar = store.path_for(TASK_A).with_suffix(".lat")
        sidecar.write_bytes(sidecar.read_bytes()[:-8])
        report = store.gc()
        assert store.path_for(TASK_A) in report.removed_stale
        assert report.live == 1

    def test_dry_run_removes_nothing(self, store, monkeypatch):
        _populate(store)
        monkeypatch.setattr(store_mod, "device_fingerprint",
                            lambda arch: "d" * 64)
        store_mod.clear_fingerprint_cache()
        report = store.gc(dry_run=True)
        assert report.dry_run
        assert len(report.removed_stale) == 2
        assert len(store) == 2                   # still on disk
        assert "would remove" in report.describe()

    def test_live_entries_byte_identical_after_gc(self, store):
        _populate(store)
        before = store.path_for(TASK_A).read_bytes()
        store.gc()
        assert store.path_for(TASK_A).read_bytes() == before


class TestCompact:
    def test_compact_drops_emptied_shard_dirs(self, store, monkeypatch):
        _populate(store)
        shards_before = {p for p in store.cells_dir.iterdir() if p.is_dir()}
        monkeypatch.setattr(store_mod, "device_fingerprint",
                            lambda arch: "c" * 64)
        store_mod.clear_fingerprint_cache()
        report = store.compact()
        assert len(report.removed_stale) == 2
        assert set(report.removed_dirs) == shards_before
        assert not any(p.is_dir() for p in store.cells_dir.iterdir())

    def test_compact_keeps_live_shards(self, store):
        _populate(store)
        report = store.compact()
        assert report.removed_dirs == []
        assert store.get(TASK_A) is not None


class TestGcCli:
    def test_gc_subcommand(self, store, capsys):
        from repro.sim.__main__ import main

        _populate(store)
        orphan = store.path_for(TASK_A).parent / ("f" * 64 + ".lat")
        orphan.write_bytes(b"\x00" * 8)
        assert main(["gc", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "2 live entries kept" in out
        assert "1 orphaned sidecars" in out
        assert not orphan.exists()

    def test_gc_dry_run_verbose(self, store, capsys):
        from repro.sim.__main__ import main

        _populate(store)
        orphan = store.path_for(TASK_A).parent / ("f" * 64 + ".lat")
        orphan.write_bytes(b"\x00" * 8)
        assert main(["gc", "--store", str(store.root), "--dry-run",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out
        assert str(orphan) in out
        assert orphan.exists()

    def test_gc_unusable_store_is_clean_exit(self, tmp_path, capsys):
        from repro.sim.__main__ import main

        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert main(["gc", "--store", str(blocker)]) == 2
        assert "unusable" in capsys.readouterr().err
