"""WDM grid allocation and ring addressability."""

import pytest

from repro.errors import ConfigError
from repro.photonics.ring import MicroringResonator
from repro.photonics.wdm import (
    WdmGrid,
    comet_wavelength_plan,
    ring_addressability,
)


class TestGrid:
    def test_band_fit(self):
        assert WdmGrid(64, channel_spacing_m=0.4e-9).fits_band()
        assert not WdmGrid(256, channel_spacing_m=0.2e-9).fits_band()

    def test_wavelengths_inside_band(self):
        grid = WdmGrid(64, channel_spacing_m=0.4e-9)
        wl = grid.wavelengths_m()
        assert len(wl) == 64
        assert wl[0] >= grid.band_min_m
        assert wl[-1] <= grid.band_max_m

    def test_wavelengths_raise_when_overflowing(self):
        with pytest.raises(ConfigError):
            WdmGrid(1024, channel_spacing_m=0.1e-9).wavelengths_m()

    def test_max_channels(self):
        grid = WdmGrid(1, channel_spacing_m=0.1e-9)
        assert grid.max_channels_in_band() == 351

    def test_validation(self):
        with pytest.raises(ConfigError):
            WdmGrid(0)
        with pytest.raises(ConfigError):
            WdmGrid(4, channel_spacing_m=0.0)


class TestAddressability:
    def test_small_comb_is_clean(self):
        grid = WdmGrid(32, channel_spacing_m=0.4e-9)   # 12.4 nm < 15 nm FSR
        report = ring_addressability(grid)
        assert report.feasible
        assert not report.crosstalk_pairs

    def test_wide_comb_aliases(self):
        grid = WdmGrid(256, channel_spacing_m=0.1e-9)  # 25.5 nm > FSR
        report = ring_addressability(grid)
        assert report.aliased
        assert report.crosstalk_pairs
        base, alias = report.crosstalk_pairs[0]
        assert alias - base == report.channels_per_fsr

    def test_smaller_ring_raises_fsr_and_capacity(self):
        grid = WdmGrid(256, channel_spacing_m=0.1e-9)
        big_ring = MicroringResonator(radius_m=6e-6)
        small_ring = MicroringResonator(radius_m=3e-6)
        assert ring_addressability(grid, small_ring).max_clean_channels \
            > ring_addressability(grid, big_ring).max_clean_channels


class TestCometPlan:
    def test_comet_4b_has_a_feasible_plan(self):
        """256 wavelengths fit one 6 um-ring FSR at 0.05 nm spacing."""
        grid = comet_wavelength_plan(256)
        assert grid.fits_band()
        assert not ring_addressability(grid).aliased

    def test_comet_2b_plan_is_coarser(self):
        plan_512 = comet_wavelength_plan(512, MicroringResonator(radius_m=2.5e-6))
        assert plan_512.channel_spacing_m <= 0.1e-9

    def test_comet_1b_infeasible_with_default_ring(self):
        """1024 wavelengths per bank do not fit — one more reason (beyond
        Fig. 7's power) that the b=1 configuration loses."""
        with pytest.raises(ConfigError):
            comet_wavelength_plan(1024)
