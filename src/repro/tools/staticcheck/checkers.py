"""The repo-specific checkers.

Each one pins an invariant the simulation stack's correctness argument
rests on; module scopes are matched by path *suffix* so the same
checkers run over fixture mini-trees in the analyzer's own tests.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.tools.staticcheck.core import (
    Checker,
    Finding,
    Module,
    Project,
    dotted_name,
)

#: Modules whose outputs feed result digests: anything nondeterministic
#: here silently poisons the content-addressed store.
DETERMINISM_ZONE = (
    "repro/sim/controller.py",
    "repro/sim/_fastloop.py",
    "repro/sim/store.py",
    "repro/sim/stats.py",
    "repro/sim/tracegen.py",
)

#: The PR 7 thread-audit set: these modules hold the shared state the
#: thread-native execution plane mutates, and must keep declaring their
#: guarded attributes (an empty registry means the audit eroded).
LOCK_AUDITED = (
    "repro/sim/controller.py",
    "repro/sim/engine.py",
    "repro/sim/_fastloop.py",
    "repro/sim/fabric.py",
)


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """local name -> fully qualified module/attribute path."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def _resolve(node: ast.expr, aliases: Dict[str, str]) -> str:
    """Dotted name with the import alias for its head expanded."""
    name = dotted_name(node)
    if not name:
        return ""
    head, _, rest = name.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


class DeterminismChecker(Checker):
    name = "determinism"
    description = ("no wall-clock, unseeded RNG, or environment reads "
                   "inside kernel/controller/digest/store modules")

    _CLOCKS = {
        "time.time", "time.time_ns", "time.monotonic",
        "time.monotonic_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns", "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    }
    _UNSEEDED_NUMPY = {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "bytes", "choice", "shuffle", "permutation", "seed",
        "normal", "uniform", "poisson", "exponential", "standard_normal",
    }
    _SEEDABLE = {"numpy.random.default_rng", "numpy.random.RandomState",
                 "numpy.random.Generator"}

    def check_module(self, module: Module,
                     project: Project) -> Iterable[Finding]:
        if not any(module.rel.endswith(s) for s in DETERMINISM_ZONE):
            return ()
        aliases = _import_aliases(module.tree)
        flagged: Dict[Tuple[int, str], Finding] = {}

        def flag(node: ast.AST, what: str, hint: str) -> None:
            key = (node.lineno, what)
            if key not in flagged:
                flagged[key] = Finding(
                    checker=self.name, path=module.rel, line=node.lineno,
                    message=what, hint=hint)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = _resolve(node.func, aliases)
                self._check_call(node, name, flag)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                name = _resolve(node, aliases)
                if name in ("os.environ", "os.getenv"):
                    flag(node, f"environment read ({name})",
                         "thread configuration through explicit "
                         "parameters, or annotate a deliberate config "
                         "read with `# staticcheck: allow[determinism]`")
        return list(flagged.values())

    def _check_call(self, node: ast.Call, name: str, flag) -> None:
        seed_hint = ("derive randomness from the task seed "
                     "(np.random.RandomState(seed) / default_rng(seed))")
        if name in self._CLOCKS:
            flag(node, f"wall-clock read ({name}())",
                 "results must be pure functions of the task; keep "
                 "timing in the profiling layer")
        elif name.startswith("random.") or name == "random":
            flag(node, f"stdlib random ({name}()) is process-global "
                 "state", seed_hint)
        elif name in self._SEEDABLE:
            has_seed = bool(node.args) or any(
                kw.arg == "seed" for kw in node.keywords)
            if not has_seed:
                flag(node, f"unseeded RNG construction ({name}())",
                     seed_hint)
        elif name.startswith("numpy.random.") \
                and name.rsplit(".", 1)[1] in self._UNSEEDED_NUMPY:
            flag(node, f"global numpy RNG ({name}())", seed_hint)
        elif name.startswith("uuid.uuid") or name.startswith("secrets."):
            flag(node, f"nondeterministic source ({name}())", seed_hint)


#: Mutating container methods: calling one of these on a guarded name
#: is a write even though the name itself is only loaded.
_MUTATORS = {
    "clear", "update", "setdefault", "pop", "popitem", "append",
    "extend", "insert", "remove", "discard", "add", "sort", "reverse",
}


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = ("attributes declared `# staticcheck: guarded-by[L]` "
                   "are only touched inside `with L:` (or a "
                   "register_at_fork reinit path)")

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings = []
        for suffix in LOCK_AUDITED:
            for module in project.matching(suffix):
                if not module.guards:
                    findings.append(Finding(
                        checker=self.name, path=module.rel, line=1,
                        message="thread-audited module declares no "
                                "guarded-by attributes",
                        hint="annotate the module's shared state with "
                             "`# staticcheck: guarded-by[_LOCK]` (the "
                             "PR 7 audit set must not erode)"))
        return findings

    def check_module(self, module: Module,
                     project: Project) -> Iterable[Finding]:
        registry: Dict[str, Tuple[str, bool]] = {}
        findings: List[Finding] = []
        for decl in module.guards:
            names = _assignment_targets(module.tree, decl.line)
            if not names:
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=decl.line,
                    message="guarded-by pragma does not annotate a "
                            "module-level assignment",
                    hint="place the pragma on (or directly above) the "
                         "line defining the guarded attribute"))
                continue
            for name in names:
                registry[name] = (decl.lock, decl.reads)
        if not registry:
            return findings

        fork_exempt = _fork_handler_names(module.tree)
        seen: Set[Tuple[int, str]] = set()

        def report(node: ast.AST, attr: str, lock: str,
                   verb: str) -> None:
            key = (node.lineno, attr)
            if key in seen:
                return
            seen.add(key)
            findings.append(Finding(
                checker=self.name, path=module.rel, line=node.lineno,
                message=f"{verb} of guarded attribute '{attr}' outside "
                        f"`with {lock}:`",
                hint=f"take {lock} (or move the access into a "
                     f"register_at_fork reinit path)"))

        def visit(node: ast.AST, held: Set[str], exempt: bool) -> None:
            if isinstance(node, ast.With):
                locks = set(held)
                for item in node.items:
                    name = dotted_name(item.context_expr)
                    if name:
                        locks.add(name)
                for child in node.body:
                    visit(child, locks, exempt)
                return
            if isinstance(node, ast.Call):
                if not exempt:
                    self._check_access(node, registry, held, report)
                callee = dotted_name(node.func)
                in_fork = exempt or callee.endswith("register_at_fork")
                for child in ast.iter_child_nodes(node):
                    visit(child, held, in_fork)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                body_exempt = exempt or node.name in fork_exempt
                for child in ast.iter_child_nodes(node):
                    visit(child, held, body_exempt)
                return
            if not exempt:
                self._check_access(node, registry, held, report)
            for child in ast.iter_child_nodes(node):
                visit(child, held, exempt)

        # Module-level statements run once under the import lock before
        # any pool exists; only function bodies face concurrency.
        for top in ast.walk(module.tree):
            if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.Lambda)):
                parent_chain_exempt = top.name in fork_exempt if \
                    isinstance(top, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) else False
                body = top.body if isinstance(top.body, list) \
                    else [top.body]
                for child in body:
                    visit(child, set(), parent_chain_exempt)
        return findings

    def _check_access(self, node, registry, held, report) -> None:
        def guarded(name: str) -> Optional[Tuple[str, str, bool]]:
            entry = registry.get(name)
            if entry is None:
                return None
            lock, reads = entry
            return (name, lock, reads)

        def check_target(target: ast.expr) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    check_target(element)
                return
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                entry = guarded(base.id)
                if entry and entry[1] not in held:
                    report(target, entry[0], entry[1], "write")

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                check_target(target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                check_target(target)
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _MUTATORS \
                and isinstance(node.func.value, ast.Name):
            entry = guarded(node.func.value.id)
            if entry and entry[1] not in held:
                report(node, entry[0], entry[1],
                       f"mutation (.{node.func.attr}())")
        elif isinstance(node, ast.Name) \
                and isinstance(node.ctx, ast.Load):
            entry = guarded(node.id)
            if entry and entry[2] and entry[1] not in held:
                report(node, entry[0], entry[1], "read")


def _assignment_targets(tree: ast.Module, line: int) -> List[str]:
    names: List[str] = []
    for node in tree.body:
        if node.lineno != line:
            continue
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.append(node.target.id)
    return names


def _fork_handler_names(tree: ast.AST) -> Set[str]:
    """Names of functions passed to ``os.register_at_fork`` — their
    bodies are fork-reinit paths, exempt from lock discipline."""
    handlers: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) \
                and dotted_name(node.func).endswith("register_at_fork"):
            for arg in list(node.args) + [kw.value for kw in
                                          node.keywords]:
                if isinstance(arg, ast.Name):
                    handlers.add(arg.id)
    return handlers


class DigestCoverageChecker(Checker):
    name = "digest-coverage"
    description = ("every EvalTask field and both model fingerprints "
                   "flow into the store digest")

    _META_KEYS = ("results_version", "device", "workload_model")

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for module in project.matching("repro/sim/store.py"):
            findings.extend(self._check_store(module, project))
        return findings

    def _check_store(self, module: Module,
                     project: Project) -> List[Finding]:
        findings: List[Finding] = []
        digest_fn = _find_function(module.tree, "task_digest")
        if digest_fn is None:
            return [Finding(
                checker=self.name, path=module.rel, line=1,
                message="store module has no task_digest()",
                hint="the content-addressed store needs a digest "
                     "covering every task field")]
        keys, line = self._digest_keys(digest_fn)
        if keys is None:
            return [Finding(
                checker=self.name, path=module.rel,
                line=digest_fn.lineno,
                message="task_digest() does not hash a literal dict of "
                        "fields (coverage is unverifiable)",
                hint="build the digest payload as a dict literal so "
                     "field coverage stays statically checkable")]
        task_fields = project.dataclass_fields("EvalTask")
        if task_fields is None:
            findings.append(Finding(
                checker=self.name, path=module.rel,
                line=digest_fn.lineno,
                message="EvalTask dataclass not found in the scanned "
                        "tree (digest coverage is unverifiable)",
                hint="scan the whole src tree so the task schema is "
                     "visible"))
            task_fields = []
        for name in task_fields:
            if name not in keys:
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=line,
                    message=f"EvalTask field '{name}' does not flow "
                            f"into task_digest()",
                    hint="add the field to the digest payload (and "
                         "bump RESULTS_VERSION if stored results are "
                         "invalidated)"))
        for meta in self._META_KEYS:
            if meta not in keys:
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=line,
                    message=f"digest payload is missing the '{meta}' "
                            f"key",
                    hint="device/workload fingerprints and the results "
                         "version must invalidate stored cells"))
        for fn_name in ("device_fingerprint", "workload_fingerprint"):
            fn = _find_function(module.tree, fn_name)
            if fn is None:
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=1,
                    message=f"store module has no {fn_name}()",
                    hint="model fingerprints keep stored results "
                         "honest across model edits"))
            elif not self._uses_asdict(fn):
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=fn.lineno,
                    message=f"{fn_name}() does not hash via "
                            f"dataclasses.asdict (fields can drift out "
                            f"of the fingerprint)",
                    hint="hash dataclasses.asdict(model) so new model "
                         "fields invalidate old results automatically"))
        return findings

    @staticmethod
    def _digest_keys(fn: ast.FunctionDef):
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and dotted_name(node.func).split(".")[-1] \
                    in ("_sha256", "sha256"):
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        keys = {key.value for key in arg.keys
                                if isinstance(key, ast.Constant)
                                and isinstance(key.value, str)}
                        return keys, arg.lineno
        return None, fn.lineno

    @staticmethod
    def _uses_asdict(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) \
                    and dotted_name(node.func).split(".")[-1] == "asdict":
                return True
        return False


class WireParityChecker(Checker):
    name = "wire-parity"
    description = "to_dict/from_dict pairs cover identical field sets"

    def check_module(self, module: Module,
                     project: Project) -> Iterable[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                to_fn = _find_function(node, "to_dict", depth=1)
                from_fn = _find_function(node, "from_dict", depth=1)
                if to_fn is not None and from_fn is not None:
                    findings.extend(self._compare(
                        module, project, to_fn, from_fn, owner=node))
        to_fns = {n.name[:-len("_to_dict")]: n
                  for n in module.tree.body
                  if isinstance(n, ast.FunctionDef)
                  and n.name.endswith("_to_dict")}
        from_fns = {n.name[:-len("_from_dict")]: n
                    for n in module.tree.body
                    if isinstance(n, ast.FunctionDef)
                    and n.name.endswith("_from_dict")}
        for stem, to_fn in to_fns.items():
            from_fn = from_fns.get(stem)
            if from_fn is not None:
                findings.extend(self._compare(
                    module, project, to_fn, from_fn, owner=None))
        return findings

    def _compare(self, module: Module, project: Project,
                 to_fn: ast.FunctionDef, from_fn: ast.FunctionDef,
                 owner: Optional[ast.ClassDef]) -> List[Finding]:
        to_cov = self._coverage(to_fn, project, owner, side="to")
        from_cov = self._coverage(from_fn, project, owner, side="from")
        if to_cov is None or from_cov is None:
            return []    # unresolvable schema: stay silent, not wrong
        findings = []
        for name in sorted(to_cov - from_cov):
            findings.append(Finding(
                checker=self.name, path=module.rel, line=from_fn.lineno,
                message=f"field '{name}' is written by {to_fn.name}() "
                        f"but never read by {from_fn.name}()",
                hint="wire formats must round-trip: read the field (or "
                     "stop serializing it)"))
        for name in sorted(from_cov - to_cov):
            findings.append(Finding(
                checker=self.name, path=module.rel, line=to_fn.lineno,
                message=f"field '{name}' is read by {from_fn.name}() "
                        f"but never written by {to_fn.name}()",
                hint="wire formats must round-trip: serialize the "
                     "field (or stop reading it)"))
        if owner is not None and not findings:
            fields = project.dataclass_fields(owner.name)
            if fields:
                for name in fields:
                    if name not in to_cov:
                        findings.append(Finding(
                            checker=self.name, path=module.rel,
                            line=to_fn.lineno,
                            message=f"dataclass field '{name}' of "
                                    f"{owner.name} is not covered by "
                                    f"its wire schema",
                            hint="new fields must ship over the wire "
                                 "or be explicitly excluded"))
        return findings

    def _coverage(self, fn: ast.FunctionDef, project: Project,
                  owner: Optional[ast.ClassDef],
                  side: str) -> Optional[Set[str]]:
        explicit: Set[str] = set()
        schema_classes: Set[str] = set()
        attr_tokens: Set[str] = set()
        payload = self._payload_param(fn) if side == "from" else None

        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func).split(".")[-1]
                if callee in ("asdict", "fields"):
                    cls = self._schema_class(node, fn, owner)
                    if cls is None:
                        return None
                    schema_classes.add(cls)
                elif isinstance(node.func, ast.Attribute) \
                        and node.func.attr == "get" \
                        and payload is not None \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == payload:
                    if node.args and isinstance(node.args[0],
                                                ast.Constant) \
                            and isinstance(node.args[0].value, str):
                        explicit.add(node.args[0].value)
                elif payload is not None and any(
                        isinstance(arg, ast.Name) and arg.id == payload
                        for arg in node.args):
                    for arg in node.args:
                        if isinstance(arg, ast.Constant) \
                                and isinstance(arg.value, str):
                            explicit.add(arg.value)
            elif isinstance(node, ast.Subscript):
                container = node.value
                index = node.slice
                if isinstance(index, ast.Constant) \
                        and isinstance(index.value, str):
                    if side == "to" or (
                            payload is not None
                            and isinstance(container, ast.Name)
                            and container.id == payload):
                        explicit.add(index.value)
            elif isinstance(node, ast.Dict) and side == "to":
                for key in node.keys:
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str):
                        explicit.add(key.value)
            elif isinstance(node, (ast.For, ast.comprehension)):
                token = dotted_name(node.iter)
                if token.startswith(("self.", "cls.")):
                    name = token.split(".", 1)[1]
                    # Only ALL_CAPS class constants are schema sources
                    # (e.g. _AXES); iterating a data field is not.
                    if name.isupper():
                        attr_tokens.add(name)

        coverage = set(explicit)
        for cls in schema_classes:
            fields = project.dataclass_fields(cls)
            if fields is None:
                return None
            coverage.update(fields)
        for token in attr_tokens:
            values = self._class_constant(owner, token)
            if values is None:
                return None
            coverage.update(values)
        if not coverage:
            return None
        return coverage

    @staticmethod
    def _payload_param(fn: ast.FunctionDef) -> Optional[str]:
        args = [a.arg for a in fn.args.args if a.arg not in ("self",
                                                             "cls")]
        return args[0] if args else None

    @staticmethod
    def _schema_class(call: ast.Call, fn: ast.FunctionDef,
                      owner: Optional[ast.ClassDef]) -> Optional[str]:
        """Which dataclass an asdict()/fields() call covers."""
        if not call.args:
            return None
        arg = call.args[0]
        name = dotted_name(arg)
        if name in ("self", "cls") and owner is not None:
            return owner.name
        for param in fn.args.args:
            if param.arg == name and param.annotation is not None:
                annotation = dotted_name(param.annotation)
                if annotation:
                    return annotation.split(".")[-1]
        if owner is not None:
            return owner.name
        return None

    @staticmethod
    def _class_constant(owner: Optional[ast.ClassDef],
                        name: str) -> Optional[List[str]]:
        if owner is None:
            return None
        for stmt in owner.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        if isinstance(stmt.value, (ast.Tuple, ast.List)):
                            values = []
                            for element in stmt.value.elts:
                                if isinstance(element, ast.Constant) \
                                        and isinstance(element.value,
                                                       str):
                                    values.append(element.value)
                                else:
                                    return None
                            return values
        return None


_C_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_BANNED_LIBM = re.compile(
    r"\b(sinh?|cosh?|tanh?|asin|acos|atan2?|exp2?|expm1|"
    r"log(?:2|10|1p)?|pow|sqrt|cbrt|hypot|[lt]gamma|erfc?)\s*\(")
_FLOAT_RE = re.compile(r"\bfloat\b")


class FloatExactnessChecker(Checker):
    name = "float-exactness"
    description = ("the C twin uses double only, no non-exact libm "
                   "calls, and builds with -ffp-contract=off "
                   "-fno-fast-math")

    _REQUIRED_FLAGS = ("-ffp-contract=off", "-fno-fast-math")
    _FORBIDDEN_FLAGS = ("-ffast-math", "-Ofast",
                        "-funsafe-math-optimizations")

    def check_module(self, module: Module,
                     project: Project) -> Iterable[Finding]:
        if not module.rel.endswith("_fastloop.py"):
            return ()
        findings: List[Finding] = []
        source_node = self._c_source(module.tree)
        if source_node is None:
            findings.append(Finding(
                checker=self.name, path=module.rel, line=1,
                message="no _C_SOURCE string literal found",
                hint="the twin's C source must live in _C_SOURCE so "
                     "exactness stays statically checkable"))
        else:
            findings.extend(self._scan_c(module, source_node))
        findings.extend(self._check_flags(module))
        return findings

    @staticmethod
    def _c_source(tree: ast.Module) -> Optional[ast.Constant]:
        for node in tree.body:
            if isinstance(node, ast.Assign) \
                    and any(isinstance(t, ast.Name)
                            and t.id == "_C_SOURCE"
                            for t in node.targets) \
                    and isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, str):
                return node.value
        return None

    def _scan_c(self, module: Module,
                node: ast.Constant) -> List[Finding]:
        findings = []
        text = _C_COMMENT_RE.sub(
            lambda m: "\n" * m.group(0).count("\n"), node.value)
        for offset, line in enumerate(text.split("\n")):
            code = line.split("//", 1)[0]
            file_line = node.lineno + offset
            if _FLOAT_RE.search(code):
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=file_line,
                    message="C twin declares `float` — the scalar loop "
                            "computes in IEEE-754 double",
                    hint="use `double`; a narrowing conversion moves "
                         "results by an ulp and breaks bit-identity"))
            for match in _BANNED_LIBM.finditer(code):
                findings.append(Finding(
                    checker=self.name, path=module.rel, line=file_line,
                    message=f"C twin calls {match.group(1)}() — libm "
                            f"transcendentals are not bit-stable "
                            f"across implementations",
                    hint="only exactly-rounded operations (+-*/, "
                         "fmod, fabs, floor, ceil) keep the twin "
                         "bit-identical"))
        return findings

    def _check_flags(self, module: Module) -> List[Finding]:
        compile_fn = _find_function(module.tree, "_compile")
        if compile_fn is None:
            return [Finding(
                checker=self.name, path=module.rel, line=1,
                message="no _compile() found (build flags are "
                        "unverifiable)",
                hint="keep the twin's build in a _compile() helper so "
                     "its flags stay statically checkable")]
        strings = {node.value for node in ast.walk(compile_fn)
                   if isinstance(node, ast.Constant)
                   and isinstance(node.value, str)}
        findings = []
        for flag in self._REQUIRED_FLAGS:
            if flag not in strings:
                findings.append(Finding(
                    checker=self.name, path=module.rel,
                    line=compile_fn.lineno,
                    message=f"twin build is missing {flag}",
                    hint="contraction/fast-math must stay off or FMA "
                         "fusion moves results by an ulp"))
        for flag in self._FORBIDDEN_FLAGS:
            if flag in strings:
                findings.append(Finding(
                    checker=self.name, path=module.rel,
                    line=compile_fn.lineno,
                    message=f"twin build passes {flag}",
                    hint="value-changing optimization flags break the "
                         "bit-identity contract"))
        return findings


def _find_function(scope: ast.AST, name: str,
                   depth: Optional[int] = None):
    """First FunctionDef called ``name``; ``depth=1`` looks only at
    direct children (class methods)."""
    nodes = ast.iter_child_nodes(scope) if depth == 1 \
        else ast.walk(scope)
    for node in nodes:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return node
    return None


ALL_CHECKERS: Tuple[Checker, ...] = (
    DeterminismChecker(),
    LockDisciplineChecker(),
    DigestCoverageChecker(),
    WireParityChecker(),
    FloatExactnessChecker(),
)
