"""Ablation — COSMOS modeling choices (Section IV.B's re-modeling).

Two knobs the paper turns when making COSMOS simulable:

1. the subtractive read flow (read + erase + read) versus an idealized
   direct read (the registered ``COSMOS-direct`` variant architecture) —
   how much of COSMOS's deficit is the read mechanism;
2. the effective-medium blending scheme (Lorentz–Lorenz vs naive linear)
   — how much the multi-level map depends on the Wang et al. model.

The simulation cells are store-addressable; a ``$REPRO_RESULT_STORE``
makes re-runs incremental.
"""

import numpy as np

from repro.materials import get_material
from repro.materials.pcm import PhaseChangeMaterial
from repro.sim.engine import EvalTask, evaluate_tasks


def bench_ablation_subtractive_read(benchmark, eval_store):
    def run():
        tasks = [EvalTask("COSMOS", "mcf", 4000, 1),
                 EvalTask("COSMOS-direct", "mcf", 4000, 1),
                 EvalTask("COMET", "mcf", 4000, 1)]
        lookup = evaluate_tasks(tasks, store=eval_store)
        return tuple(lookup[task] for task in tasks)

    stats_sub, stats_direct, comet = benchmark.pedantic(
        run, rounds=1, iterations=1)
    print(f"\n  subtractive read: {stats_sub.bandwidth_gbps:6.2f} GB/s | "
          f"idealized direct read: {stats_direct.bandwidth_gbps:6.2f} GB/s")

    # The subtractive flow costs real bandwidth on a random workload
    # (the 1.6 us writes still dominate, so the gap is bounded)...
    assert stats_direct.bandwidth_gbps > 1.2 * stats_sub.bandwidth_gbps
    # ...but even idealized COSMOS keeps the 1.6 us write pulse train, so
    # it cannot reach COMET-class write behaviour.
    assert comet.bandwidth_gbps > stats_direct.bandwidth_gbps


def bench_ablation_effective_medium_scheme(benchmark):
    """Linear permittivity mixing distorts the level map measurably."""
    def run():
        gst_ll = get_material("GST")
        gst_linear = PhaseChangeMaterial(
            name="GST-linear",
            amorphous=gst_ll.amorphous,
            crystalline=gst_ll.crystalline,
            thermal=gst_ll.thermal,
            kinetics=gst_ll.kinetics,
            blending_scheme="linear",
        )
        fractions = np.linspace(0.0, 1.0, 11)
        n_ll = np.array([gst_ll.nk(1550e-9, fc)[0] for fc in fractions])
        n_lin = np.array([gst_linear.nk(1550e-9, fc)[0] for fc in fractions])
        return n_ll, n_lin

    n_ll, n_lin = benchmark(run)
    # Endpoints agree by construction...
    assert abs(n_ll[0] - n_lin[0]) < 1e-9
    assert abs(n_ll[-1] - n_lin[-1]) < 1e-9
    # ...but mid-states differ: the LL mix bows below the linear chord.
    mid_gap = np.max(np.abs(n_ll[1:-1] - n_lin[1:-1]))
    assert mid_gap > 0.02
    assert np.all(n_ll[1:-1] <= n_lin[1:-1] + 1e-9)
