#!/usr/bin/env python
"""Quickstart: build a COMET instance and walk the cross-layer stack.

Runs in a few seconds and touches every layer once:

1. material   — GST dispersion and why it wins the selection,
2. device     — the 4-bit cell's response and reset energies,
3. circuit    — the microring access switch and loss budget,
4. architecture — organization, address mapping, LUT, power stack,
5. system     — a short trace through the memory simulator.

Usage: python examples/quickstart.py
"""

from repro.arch import CometArchitecture
from repro.device import ProgrammingMode
from repro.materials import get_material
from repro.photonics import MicroringResonator
from repro.sim import MainMemorySimulator


def main() -> None:
    # 1. Material level -------------------------------------------------
    gst = get_material("GST")
    n_a, k_a = gst.nk(1550e-9, 0.0)
    n_c, k_c = gst.nk(1550e-9, 1.0)
    print("GST @ 1550 nm:")
    print(f"  amorphous    n = {n_a:.2f}, kappa = {k_a:.3f}")
    print(f"  crystalline  n = {n_c:.2f}, kappa = {k_c:.3f}")
    print(f"  contrast FOM = {gst.figure_of_merit():.2f} "
          f"(GSST: {get_material('GSST').figure_of_merit():.2f}, "
          f"Sb2Se3: {get_material('Sb2Se3').figure_of_merit():.4f})")

    # 2-4. Device + architecture ----------------------------------------
    arch = CometArchitecture()           # b=4, GST, Table I/II defaults
    print(f"\n{arch.describe()}")
    print(f"  cell transmission: amorphous {arch.cell.transmission(0.0):.3f}, "
          f"crystalline {arch.cell.transmission(1.0):.3f}")
    print(f"  reset energies: "
          f"{arch.reset_energy_pj(ProgrammingMode.CRYSTALLINE_DEPOSITED):.0f} pJ "
          f"(crystalline-deposited, paper 880), "
          f"{arch.reset_energy_pj(ProgrammingMode.AMORPHOUS_DEPOSITED):.0f} pJ "
          f"(amorphous-deposited, paper 280)")

    ring = MicroringResonator()
    print(f"  access ring: Q = {ring.quality_factor():.0f}, "
          f"FSR = {ring.free_spectral_range_m * 1e9:.2f} nm, "
          f"drop loss = {ring.drop_loss_db():.2f} dB")

    location = arch.mapper.map_address(0x12345680)
    print(f"  address 0x12345680 -> bank {location.bank}, "
          f"subarray {location.subarray_id}, row {location.subarray_row}")

    power = arch.power_breakdown()
    print(f"  power stack: laser {power.laser_w:.1f} W + "
          f"SOA {power.soa_w:.1f} W + tuning {power.tuning_w * 1e3:.1f} mW "
          f"= {power.total_w:.1f} W per channel device")

    # 5. System level -----------------------------------------------------
    simulator = MainMemorySimulator("COMET")
    stats = simulator.run_workload("mcf", num_requests=4000)
    print(f"\nmcf trace on COMET: {stats.bandwidth_gbps:.1f} GB/s, "
          f"{stats.avg_latency_ns:.0f} ns avg latency, "
          f"{stats.energy_per_bit_pj:.0f} pJ/bit")


if __name__ == "__main__":
    main()
