"""Fig. 9 — bandwidth, EPB and BW/EPB across all architectures.

Runs the full (architecture x workload) grid through the memory simulator
and prints the per-workload series plus the cross-workload geomeans and
the COMET-vs-everything ratios the paper reports.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from ..errors import SimulationError
from ..sim.client import SERVER_ENV_VAR, evaluate_tasks_remote
from ..sim.engine import grid_tasks, run_evaluation
from ..sim.factory import ARCHITECTURE_NAMES
from ..sim.simulator import summarize
from ..sim.stats import SimStats
from ..sim.store import ResultStore
from .report import print_table

#: Environment variable naming a result-store directory; when set,
#: ``python -m repro.exp fig9`` regenerates the figure incrementally
#: (only cells missing from the store are simulated).  When
#: ``$REPRO_EVAL_SERVER`` (see :mod:`repro.sim.client`) is also set —
#: or set alone — the grid is answered by the daemon instead, whose
#: store/LRU make repeated regenerations effectively free.
STORE_ENV_VAR = "REPRO_RESULT_STORE"

#: Paper-reported average ratios (COMET vs each architecture).
PAPER_BW_RATIOS = {
    "2D_DDR3": 100.3, "3D_DDR3": 47.2, "2D_DDR4": 58.7,
    "3D_DDR4": 42.1, "EPCM-MM": 40.6, "COSMOS": 5.1,
}
PAPER_EPB_RATIOS = {"2D_DDR3": 4.1, "2D_DDR4": 2.3, "COSMOS": 12.9}
PAPER_BW_PER_EPB_RATIOS = {"3D_DDR4": 6.5, "COSMOS": 65.8}


@dataclass
class Fig9Result:
    results: Dict[str, Dict[str, SimStats]]
    summary: Dict[str, Dict[str, float]]

    def bw_ratio(self, other: str) -> float:
        return (self.summary["COMET"]["bandwidth_gbps"]
                / self.summary[other]["bandwidth_gbps"])

    def epb_ratio(self, other: str) -> float:
        """How much lower COMET's EPB is than ``other``'s."""
        return (self.summary[other]["epb_pj"]
                / self.summary["COMET"]["epb_pj"])

    def latency_ratio(self, other: str) -> float:
        return (self.summary[other]["avg_latency_ns"]
                / self.summary["COMET"]["avg_latency_ns"])

    def bw_per_epb_ratio(self, other: str) -> float:
        return (self.summary["COMET"]["bw_per_epb"]
                / self.summary[other]["bw_per_epb"])


def run(num_requests: int = 8000, seed: int = 1,
        workers: Optional[int] = None,
        workloads: Optional[Iterable[str]] = None,
        store: Optional[Union[str, Path, ResultStore]] = None,
        resume: bool = True,
        server: Optional[str] = None) -> Fig9Result:
    """Run the grid; ``workers`` > 1 fans it out over processes and
    ``workloads`` swaps in a non-default set (e.g. the multi-programmed
    mixes) without changing the reported metrics.

    ``store`` (a directory path or :class:`ResultStore`) makes the run
    incremental: cells already stored are reused, new cells are
    checkpointed, so figure regeneration after a model change only
    recomputes the invalidated architectures.

    ``server`` (an evaluation-daemon address, see
    :mod:`repro.sim.client`) answers the grid remotely instead: the
    daemon's store read-through, coalescing and LRU do the caching, and
    the returned stats are bit-identical to a local run.  ``workers``
    and ``store`` are the daemon's concern in that mode.
    """
    if server is not None:
        tasks = grid_tasks(num_requests=num_requests, seed=seed,
                           workloads=workloads)
        lookup = evaluate_tasks_remote(tasks, server)
        results: Dict[str, Dict[str, SimStats]] = {
            arch: {} for arch in ARCHITECTURE_NAMES}
        for task in tasks:
            results[task.architecture][task.workload] = lookup[task]
        return Fig9Result(results=results, summary=summarize(results))
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    results = run_evaluation(num_requests=num_requests, seed=seed,
                             workers=workers, workloads=workloads,
                             store=store, resume=resume)
    return Fig9Result(results=results, summary=summarize(results))


def main(num_requests: int = 8000,
         store: Optional[Union[str, Path, ResultStore]] = None,
         server: Optional[str] = None) -> Fig9Result:
    if server is None:
        server = os.environ.get(SERVER_ENV_VAR) or None
    if server is not None:
        # A running daemon answers the whole grid; its store (if any)
        # makes the regeneration incremental server-side.
        try:
            result = run(num_requests=num_requests, server=server)
        except (SimulationError, OSError) as error:
            # OSError covers raw transport failures (connection refused,
            # reset, dead unix socket) that escape the client's own
            # wrapping — the daemon dying mid-request must be the same
            # clean exit as a structured server error, not a traceback.
            print(f"fig9: evaluation server {server!r} failed: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
        return _print_report(result)
    if store is None:
        store = os.environ.get(STORE_ENV_VAR) or None
    if store is not None and not isinstance(store, ResultStore):
        try:
            store = ResultStore(store)
        except (OSError, SimulationError) as error:
            # Entry point advertised via $REPRO_RESULT_STORE: fail with
            # a clean message, not a raw mkdir traceback.
            print(f"fig9: result store {str(store)!r} unusable: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
    result = run(num_requests=num_requests, store=store)
    return _print_report(result)


def _print_report(result: Fig9Result) -> Fig9Result:
    workloads = sorted(next(iter(result.results.values())))
    for metric, fmt in (("bandwidth_gbps", "{:.2f}"),
                        ("energy_per_bit_pj", "{:.1f}"),
                        ("bw_per_epb", "{:.4f}")):
        rows: List[list] = []
        for arch in ARCHITECTURE_NAMES:
            row = [arch]
            for workload in workloads:
                stats = result.results[arch][workload]
                row.append(fmt.format(getattr(stats, metric)))
            rows.append(row)
        print_table(["arch"] + workloads, rows,
                    title=f"Fig. 9 — {metric} per workload")

    rows = []
    for arch in ARCHITECTURE_NAMES:
        s = result.summary[arch]
        rows.append([arch, f"{s['bandwidth_gbps']:.2f}",
                     f"{s['avg_latency_ns']:.1f}", f"{s['epb_pj']:.1f}",
                     f"{s['bw_per_epb']:.4f}"])
    print_table(["arch", "BW (GB/s)", "latency (ns)", "EPB (pJ/b)",
                 "BW/EPB"], rows, title="Fig. 9 — geomean summary")

    print("COMET ratios (measured | paper):")
    for other, paper in PAPER_BW_RATIOS.items():
        print(f"  BW vs {other:8s}: {result.bw_ratio(other):6.1f}x | {paper:.1f}x")
    for other, paper in PAPER_EPB_RATIOS.items():
        print(f"  EPB vs {other:8s}: {result.epb_ratio(other):6.1f}x | {paper:.1f}x")
    for other, paper in PAPER_BW_PER_EPB_RATIOS.items():
        print(f"  BW/EPB vs {other:8s}: {result.bw_per_epb_ratio(other):6.1f}x | {paper:.1f}x")
    print()
    return result


if __name__ == "__main__":
    main()
