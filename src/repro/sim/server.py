"""Async evaluation service: store read-through, coalescing, bounded compute.

PR 1/PR 2 built batch evaluation (``evaluate_tasks`` fan-out, the
content-addressed :class:`~repro.sim.store.ResultStore`); this module is
the online layer over them — an asyncio daemon that answers evaluation
*queries* instead of running fixed sweeps:

* **Two front-ends, one core.**  A minimal HTTP/1.1 endpoint
  (``POST /eval``, ``GET /stats``, ``GET /healthz``, ``POST /shutdown``)
  and a newline-delimited-JSON line protocol over a unix socket or TCP
  port both funnel into :meth:`EvalServer.handle_query`.
* **Read-through.**  Every query resolves to :class:`EvalTask` digests;
  cells already in the :class:`ResultStore` are served from disk, and a
  small in-process LRU over *deserialized* :class:`SimStats` short-cuts
  repeated hot cells past JSON parsing entirely.
* **Coalescing.**  N concurrent identical queries trigger exactly one
  computation: the first arrival owns a shared resolution task keyed by
  digest, later arrivals await it (counted in ``/stats`` as
  ``coalesced``).  The shared task is shielded, so one cancelled client
  never aborts a computation other clients are waiting on.
* **Bounded compute.**  Misses are scheduled onto a bounded executor
  picked by the engine's pool abstraction
  (:func:`~repro.sim.engine.resolve_pool` — the ``pool`` argument,
  then ``REPRO_POOL``, then auto): a multi-worker thread pool wherever
  the compiled scheduler twin is available (cells run outside the GIL
  in-process — shared caches, no pickling), a probed
  ``ProcessPoolExecutor`` when only the GIL-bound tiers exist (with a
  fall-back to threads in sandboxes that cannot fork), and always a
  single worker thread for ``workers <= 1`` (the deterministic test
  configuration).  Process-pool workers return their dispatch-counter
  deltas with each result, so ``/stats.kernel`` stays accurate for
  ``workers > 1`` under every executor kind.  Store I/O runs on its
  own small thread pool so disk reads never stall the event loop.
* **Structured errors.**  Malformed JSON, unknown architectures/
  workloads and bad field types are 4xx-style JSON errors; a cell that
  dies mid-compute comes back as a 5xx JSON error annotated with the
  failing cell (the same ``grid cell (...) failed`` shape the sweep
  path uses) — never a hung connection or a bare worker traceback.

Served stats are bit-identical to a direct :func:`evaluate_cell` call:
the wire format is ``SimStats.to_dict`` and Python floats round-trip
exactly through JSON.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, Executor, \
    ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ReproError, SimulationError
from .controller import merge_kernel_counters
from .engine import (EvalTask, _resolve_workers, evaluate_cell_checked,
                     evaluate_cell_with_counters, resolve_pool,
                     task_from_dict, task_to_dict)
from .stats import SimStats
from .store import ResultStore, task_digest
from .sweep import SweepSpec

#: Default size of the in-process LRU over deserialized SimStats.
DEFAULT_LRU_SIZE = 256

#: Hard cap on cells expanded from a single query (a typo'd sweep must
#: not wedge the daemon behind a million-cell grid).
MAX_CELLS_PER_QUERY = 4096

#: Hard cap on one cell's request count over the wire: a single
#: ``num_requests=2e9`` cell would occupy the bounded executor for
#: hours and allocate multi-GB traces — far past any legitimate query
#: (the full-size grid runs 20k).
MAX_REQUESTS_PER_CELL = 1_000_000

#: Hard cap on an HTTP request body / line-protocol line.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Hard cap on HTTP header lines per message, shared with the clients'
#: response parsers — neither side may be pinned in a header-read loop
#: by a peer streaming headers forever.
MAX_HEADER_LINES = 128

_HTTP_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Counter names reported by ``/stats`` (all start at zero).
COUNTER_NAMES = (
    "queries",        # queries accepted (any protocol)
    "cells",          # cells resolved successfully across all queries
    "store_hits",     # cells served from the ResultStore
    "lru_hits",       # cells served from the in-process LRU
    "coalesced",      # cells that joined an in-flight identical compute
    "computed",       # cells actually evaluated by the executor
    "errors",         # queries answered with a structured error
)


def _parse_query(payload: Any) -> Tuple[List[EvalTask], bool]:
    """Expand one eval query into validated tasks.

    Exactly one of ``task`` (single cell), ``tasks`` (batch) or
    ``sweep`` (a :class:`SweepSpec` payload) selects the cells;
    ``latencies: false`` trims the bulky per-request samples from the
    response.  Every validation failure is a ``SimulationError`` — the
    server's 4xx path.
    """
    if not isinstance(payload, dict):
        raise SimulationError(
            f"query must be a JSON object, got {type(payload).__name__}")
    allowed = {"task", "tasks", "sweep", "latencies", "op"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SimulationError(
            f"unknown query fields {unknown}; known: {sorted(allowed)}")
    sources = [key for key in ("task", "tasks", "sweep") if key in payload]
    if len(sources) != 1:
        raise SimulationError(
            "query needs exactly one of 'task', 'tasks' or 'sweep'")
    latencies = payload.get("latencies", True)
    if not isinstance(latencies, bool):
        raise SimulationError(
            f"query field 'latencies' must be a boolean, got {latencies!r}")
    def check_cell_count(count: int) -> None:
        if count > MAX_CELLS_PER_QUERY:
            raise SimulationError(
                f"query expands to {count} cells; the per-query limit "
                f"is {MAX_CELLS_PER_QUERY} — split it into smaller batches")

    if sources[0] == "task":
        tasks = [task_from_dict(payload["task"])]
    elif sources[0] == "tasks":
        raw = payload["tasks"]
        if not isinstance(raw, list) or not raw:
            raise SimulationError(
                "query field 'tasks' must be a non-empty list")
        check_cell_count(len(raw))
        tasks = [task_from_dict(item) for item in raw]
    else:
        spec = SweepSpec.from_dict(payload["sweep"])
        # Check the axis product *before* materializing the cross
        # product: a {1e5 n's x 1e5 seeds} payload is small on the wire
        # but 10^10 tasks in memory.
        check_cell_count(spec.num_cells)
        tasks = spec.tasks()
    for task in tasks:
        if task.num_requests > MAX_REQUESTS_PER_CELL:
            raise SimulationError(
                f"cell ({task.describe()}) exceeds the per-cell request "
                f"limit {MAX_REQUESTS_PER_CELL}")
    return tasks, latencies


class EvalServer:
    """The asyncio evaluation daemon (see the module docstring).

    Construct, ``await start()``, query over HTTP / the line protocol /
    directly via :meth:`handle_query`, ``await stop()``.  ``port=0``
    binds an ephemeral port (read it back from :attr:`http_address`);
    ``workers`` follows the engine convention (``0`` = one per CPU,
    ``<= 1`` = a single in-process worker thread, the configuration the
    deterministic tests pin).
    """

    def __init__(
        self,
        store: Optional[Union[str, Path, ResultStore]] = None,
        workers: int = 1,
        lru_size: int = DEFAULT_LRU_SIZE,
        host: str = "127.0.0.1",
        port: int = 0,
        line_port: Optional[int] = None,
        unix_path: Optional[Union[str, Path]] = None,
        pool: Optional[str] = None,
    ) -> None:
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.workers = _resolve_workers(workers)
        self.pool = pool
        self.host = host
        self.port = port
        self.line_port = line_port
        self.unix_path = str(unix_path) if unix_path is not None else None
        self._lru_size = max(0, int(lru_size))
        self._lru: "OrderedDict[str, SimStats]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Task"] = {}
        self._counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self._compute: Optional[Executor] = None
        self._io: Optional[ThreadPoolExecutor] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._shutdown = asyncio.Event()
        self.executor_kind = "none"
        self._started_monotonic: Optional[float] = None
        # Baseline for the fast-path counters: /stats reports this
        # server's delta, not process-lifetime totals (keeps scripted
        # load replays deterministic).
        from .controller import kernel_counters

        self._kernel_baseline = kernel_counters()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Bind the front-ends and spin up the executors."""
        self._started_monotonic = time.monotonic()
        self._compute = self._build_compute_pool()
        self._io = ThreadPoolExecutor(max_workers=2,
                                      thread_name_prefix="eval-store-io")
        http_server = await asyncio.start_server(
            self._handle_http, self.host, self.port, limit=MAX_BODY_BYTES)
        self.port = http_server.sockets[0].getsockname()[1]
        self._servers.append(http_server)
        if self.line_port is not None:
            line_server = await asyncio.start_server(
                self._handle_line, self.host, self.line_port,
                limit=MAX_BODY_BYTES)
            self.line_port = line_server.sockets[0].getsockname()[1]
            self._servers.append(line_server)
        if self.unix_path is not None:
            self._servers.append(await asyncio.start_unix_server(
                self._handle_line, self.unix_path, limit=MAX_BODY_BYTES))

    async def stop(self) -> None:
        """Close the front-ends and shut the executors down."""
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers.clear()
        if self.unix_path is not None:
            try:
                Path(self.unix_path).unlink()
            except OSError:
                pass
        if self._compute is not None:
            self._compute.shutdown(wait=True, cancel_futures=True)
            self._compute = None
        if self._io is not None:
            self._io.shutdown(wait=True, cancel_futures=True)
            self._io = None
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """``start()`` then block until ``/shutdown`` (or ``stop()``)."""
        await self.start()
        try:
            await self._shutdown.wait()
        finally:
            await self.stop()

    @property
    def http_address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (idempotent, callable from
        handlers and signal handlers)."""
        self._shutdown.set()

    def _build_compute_pool(self) -> Executor:
        """The bounded compute executor, chosen via the engine's pool
        abstraction (constructor ``pool`` > ``REPRO_POOL`` > auto).

        ``workers <= 1`` (and ``pool="serial"``) pins everything to one
        worker thread — fully deterministic scheduling, the
        configuration the load-test harness replays.  ``threads`` (the
        auto pick whenever the compiled scheduler twin is available)
        runs cells on a multi-worker thread pool, outside the GIL and
        in-process.  ``fork`` tries a ``ProcessPoolExecutor`` (probed
        with a no-op so a sandbox that cannot fork fails *here*, not on
        the first query) and degrades to a thread pool — same results,
        GIL-bound throughput.
        """
        mode = resolve_pool(self.pool)
        if self.workers <= 1 or mode == "serial":
            self.executor_kind = "thread"
            return ThreadPoolExecutor(max_workers=1,
                                      thread_name_prefix="eval-compute")
        if mode == "threads":
            self.executor_kind = "thread"
            return ThreadPoolExecutor(max_workers=self.workers,
                                      thread_name_prefix="eval-compute")
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            pool.submit(int, 0).result(timeout=60)
            self.executor_kind = "process"
            return pool
        except Exception:
            self.executor_kind = "thread"
            return ThreadPoolExecutor(max_workers=self.workers,
                                      thread_name_prefix="eval-compute")

    def _rebuild_compute_pool(self) -> Executor:
        """Replace a broken pool with a fresh one of the same kind.

        Unlike the startup build there is no blocking probe (start
        already established whether this environment can fork, and this
        runs on the event loop), and construction is lazy/cheap — the
        replacement is ready before the next query submits to it.
        """
        if self.executor_kind == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="eval-compute")

    # -- stats / LRU --------------------------------------------------------

    def health_snapshot(self) -> Dict[str, Any]:
        """The ``/healthz`` payload: liveness plus cheap vitals.

        ``{"ok": true}`` is the compatibility floor older probes check;
        the rest lets the fabric's membership prober and ``fabric
        stats`` share one health surface — uptime (monotonic seconds
        since :meth:`start`, ``null`` before it), the in-flight
        resolution count, and the compute pool's kind and size.  Cheap
        by construction: no store I/O, no executor round-trips.
        """
        uptime: Optional[float] = None
        if self._started_monotonic is not None:
            uptime = max(0.0, time.monotonic() - self._started_monotonic)
        return {
            "ok": True,
            "uptime_s": uptime,
            "inflight": len(self._inflight),
            "workers": self.workers,
            "executor": self.executor_kind,
        }

    def stats_snapshot(self) -> Dict[str, Any]:
        """The ``/stats`` payload: counters plus configuration.

        ``kernel`` reports the controller's fast-path dispatch counters
        since this server was constructed.  Thread executors mutate
        them in-process; process-pool workers return per-cell deltas
        that :meth:`_resolve_miss` merges, so the numbers are truthful
        for every executor kind.
        """
        from .controller import kernel_counters

        counters = kernel_counters()
        return {
            **self._counters,
            "inflight": len(self._inflight),
            "lru_entries": len(self._lru),
            "lru_size": self._lru_size,
            "workers": self.workers,
            "executor": self.executor_kind,
            "store": str(self.store.root) if self.store is not None else None,
            # Clamped: a process-wide reset_kernel_counters() after this
            # server's baseline snapshot must not surface as negative
            # dispatch counts.
            "kernel": {key: max(0, counters[key]
                                - self._kernel_baseline[key])
                       for key in counters},
        }

    def _lru_get(self, digest: str) -> Optional[SimStats]:
        stats = self._lru.get(digest)
        if stats is not None:
            self._lru.move_to_end(digest)
        return stats

    def _lru_put(self, digest: str, stats: SimStats) -> None:
        if self._lru_size <= 0:
            return
        self._lru[digest] = stats
        self._lru.move_to_end(digest)
        while len(self._lru) > self._lru_size:
            self._lru.popitem(last=False)

    # -- resolution core ----------------------------------------------------

    async def resolve_task(self, task: EvalTask) -> Tuple[SimStats, str]:
        """One cell → ``(stats, source)`` with read-through + coalescing.

        ``source`` is ``"lru"``, ``"store"``, ``"computed"`` or
        ``"coalesced"`` (this request joined an identical in-flight
        computation started by an earlier one).
        """
        loop = asyncio.get_running_loop()
        # First digest of an architecture builds its device model
        # (~0.7 s for COMET) — keep that off the event loop.
        digest = await loop.run_in_executor(self._io, task_digest, task)
        stats = self._lru_get(digest)
        if stats is not None:
            self._counters["lru_hits"] += 1
            return stats, "lru"
        shared = self._inflight.get(digest)
        if shared is None:
            created = True
            shared = asyncio.ensure_future(self._resolve_miss(task, digest))
            self._inflight[digest] = shared

            def _cleanup(done: "asyncio.Task", digest: str = digest) -> None:
                if self._inflight.get(digest) is shared:
                    del self._inflight[digest]
                if not done.cancelled():
                    done.exception()    # mark retrieved: no GC warning
            shared.add_done_callback(_cleanup)
        else:
            created = False
            self._counters["coalesced"] += 1
        # Shielded: cancelling one waiter (e.g. a gather sibling failed)
        # must not abort a computation other waiters share.
        stats, source = await asyncio.shield(shared)
        return stats, (source if created else "coalesced")

    async def _resolve_miss(self, task: EvalTask, digest: str) \
            -> Tuple[SimStats, str]:
        """The shared per-digest resolution: store, then compute."""
        loop = asyncio.get_running_loop()
        pool = self._compute
        try:
            if self.store is not None:
                stats = await loop.run_in_executor(
                    self._io, self.store.get, task)
                if stats is not None:
                    self._counters["store_hits"] += 1
                    self._lru_put(digest, stats)
                    return stats, "store"
            pool = self._compute    # re-read: may have been rebuilt
            if self.executor_kind == "process":
                # Workers dispatch in their own process: bring the
                # per-cell kernel-counter delta home so /stats.kernel
                # stays truthful under fork.
                stats, delta = await loop.run_in_executor(
                    pool, evaluate_cell_with_counters, task)
                merge_kernel_counters(delta)
            else:
                # Thread executors mutate the parent's counters
                # directly — submitting the counting wrapper here would
                # double-count every dispatch.
                stats = await loop.run_in_executor(
                    pool, evaluate_cell_checked, task)
            self._counters["computed"] += 1
            if self.store is not None:
                await loop.run_in_executor(
                    self._io, self.store.put, task, stats)
            self._lru_put(digest, stats)
            return stats, "computed"
        except BrokenExecutor as error:
            # A worker died hard (segfault, OOM-kill): the pool is
            # unusable for every later query — rebuild it and surface
            # the failing cell the way the sweep path does.  A broken
            # process pool fails *every* pending future at once, so
            # several handlers land here back to back: only the one
            # whose submission pool is still current replaces it (no
            # await between the check and the swap), the rest must not
            # tear down the healthy replacement.
            if self._compute is pool:
                self._compute = self._rebuild_compute_pool()
                pool.shutdown(wait=False, cancel_futures=True)
            raise SimulationError(
                f"grid cell ({task.describe()}) failed: evaluation worker "
                f"died ({type(error).__name__}); worker pool restarted"
            ) from error
        except asyncio.CancelledError:
            raise
        except Exception as error:
            if isinstance(error, ReproError):
                raise
            raise SimulationError(
                f"grid cell ({task.describe()}) failed: "
                f"{type(error).__name__}: {error}") from error

    async def handle_query(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Answer one eval query → ``(http_status, response_payload)``.

        The protocol-independent core both front-ends call; tests may
        call it directly.  Responses are all-or-nothing: any failing
        cell fails the query with a structured error.
        """
        self._counters["queries"] += 1
        try:
            tasks, latencies = _parse_query(payload)
        except SimulationError as error:
            self._counters["errors"] += 1
            return 400, {"ok": False, "error": str(error)}
        try:
            resolved = await asyncio.gather(
                *(self.resolve_task(task) for task in tasks))
        except ReproError as error:
            self._counters["errors"] += 1
            return 500, {"ok": False, "error": str(error)}
        self._counters["cells"] += len(tasks)
        results = [
            {
                "task": task_to_dict(task),
                "digest": task_digest(task),   # memoized by resolution
                "source": source,
                "stats": stats.to_dict(latencies=latencies),
            }
            for task, (stats, source) in zip(tasks, resolved)
        ]
        return 200, {"ok": True, "results": results}

    # -- HTTP front-end -----------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """One HTTP/1.1 request per connection (``Connection: close``)."""
        shutting_down = False
        try:
            status, payload = await self._http_exchange(reader)
            if status == 200 and payload.get("shutting_down"):
                shutting_down = True
            await self._write_http(writer, status, payload)
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.LimitOverrunError, ValueError):
            pass    # client went away or sent garbage beyond recovery
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if shutting_down:
                # Response flushed first, then the serve loop exits.
                self.request_shutdown()

    async def _http_exchange(self, reader: asyncio.StreamReader) \
            -> Tuple[int, Dict[str, Any]]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            self._counters["errors"] += 1
            return 400, {"ok": False, "error": "malformed request line"}
        headers: Dict[str, str] = {}
        header_lines = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            header_lines += 1
            if header_lines > MAX_HEADER_LINES:
                self._counters["errors"] += 1
                return 400, {"ok": False,
                             "error": f"more than {MAX_HEADER_LINES} "
                                      f"header lines"}
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            self._counters["errors"] += 1
            return 400, {"ok": False, "error": "bad Content-Length"}
        if length < 0 or length > MAX_BODY_BYTES:
            self._counters["errors"] += 1
            return 413, {"ok": False,
                         "error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(length) if length else b""
        return await self._route_http(method, target.split("?", 1)[0], body)

    async def _route_http(self, method: str, path: str, body: bytes) \
            -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, self.health_snapshot()
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed("GET")
            return 200, {"ok": True, "stats": self.stats_snapshot()}
        if path == "/eval":
            if method != "POST":
                return self._method_not_allowed("POST")
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                self._counters["errors"] += 1
                return 400, {"ok": False,
                             "error": f"malformed JSON body: {error}"}
            return await self.handle_query(payload)
        if path == "/shutdown":
            if method != "POST":
                return self._method_not_allowed("POST")
            return 200, {"ok": True, "shutting_down": True}
        self._counters["errors"] += 1
        return 404, {"ok": False, "error": f"unknown path {path!r}; "
                     f"routes: /eval /stats /healthz /shutdown"}

    def _method_not_allowed(self, allowed: str) -> Tuple[int, Dict[str, Any]]:
        self._counters["errors"] += 1
        return 405, {"ok": False, "error": f"method not allowed; use {allowed}"}

    @staticmethod
    async def _write_http(writer: asyncio.StreamWriter, status: int,
                          payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- line-protocol front-end -------------------------------------------

    async def _handle_line(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Newline-delimited JSON: one query per line, one reply per line.

        ``{"op": "eval", ...}`` (the default op), ``{"op": "stats"}``,
        ``{"op": "ping"}``, ``{"op": "shutdown"}``.  The connection is
        persistent: a client can stream queries back-to-back.
        """
        shutting_down = False
        try:
            while not shutting_down:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._counters["errors"] += 1
                    response = {"ok": False,
                                "error": f"line exceeds {MAX_BODY_BYTES} "
                                         f"bytes"}
                    writer.write(json.dumps(response).encode() + b"\n")
                    await writer.drain()
                    break    # framing lost: drop the connection
                if not line:
                    break
                if not line.strip():
                    continue
                response, shutting_down = await self._line_response(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if shutting_down:
                self.request_shutdown()

    async def _line_response(self, line: bytes) \
            -> Tuple[Dict[str, Any], bool]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            self._counters["errors"] += 1
            return {"ok": False, "error": f"malformed JSON line: {error}"}, \
                False
        op = payload.get("op", "eval") if isinstance(payload, dict) else "eval"
        if op == "ping":
            return {**self.health_snapshot(), "pong": True}, False
        if op == "stats":
            return {"ok": True, "stats": self.stats_snapshot()}, False
        if op == "shutdown":
            return {"ok": True, "shutting_down": True}, True
        if op == "eval":
            _status, response = await self.handle_query(payload)
            return response, False
        self._counters["errors"] += 1
        return {"ok": False, "error": f"unknown op {op!r}; "
                f"ops: eval stats ping shutdown"}, False


async def _serve(server: EvalServer, quiet: bool = False) -> None:
    """CLI body: start, announce, install signal handlers, serve."""
    import signal

    await server.start()
    if not quiet:
        print(f"ready: {server.http_address}", flush=True)
        if server.line_port is not None:
            print(f"line protocol: {server.host}:{server.line_port}",
                  flush=True)
        if server.unix_path is not None:
            print(f"line protocol: unix://{server.unix_path}", flush=True)
        if server.store is not None:
            print(f"store: {server.store.root}", flush=True)
        print(f"workers: {server.workers} ({server.executor_kind})",
              flush=True)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass    # non-unix event loops: KeyboardInterrupt still works
    try:
        await server._shutdown.wait()
    finally:
        await server.stop()


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim serve`` — run the daemon until shutdown."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim serve",
        description="Async evaluation daemon: JSON queries over HTTP and "
                    "an optional unix/TCP line protocol, with result-store "
                    "read-through, request coalescing and an LRU.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8787,
                        help="HTTP port (0 = ephemeral, printed on start)")
    parser.add_argument("--line-port", type=int, default=None, metavar="PORT",
                        help="also serve the JSON line protocol on this TCP "
                             "port (0 = ephemeral)")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="also serve the JSON line protocol on this "
                             "unix socket")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="result store directory for read-through and "
                             "write-back")
    parser.add_argument("--workers", type=int, default=1,
                        help="compute workers (1 = single in-process "
                             "worker thread, N > 1 = pool per --pool, "
                             "0 = one per CPU)")
    parser.add_argument("--pool", default=None,
                        choices=("auto", "threads", "fork", "serial"),
                        help="compute executor kind for --workers > 1 "
                             "(default: auto / $REPRO_POOL — threads "
                             "when the compiled scheduler twin loads, "
                             "a probed process pool otherwise)")
    parser.add_argument("--lru", type=int, default=DEFAULT_LRU_SIZE,
                        help="in-process LRU entries over deserialized "
                             "stats (0 disables)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the startup banner")
    args = parser.parse_args(argv)
    try:
        server = EvalServer(store=args.store, workers=args.workers,
                            lru_size=args.lru, host=args.host,
                            port=args.port, line_port=args.line_port,
                            unix_path=args.unix, pool=args.pool)
    except (SimulationError, OSError) as error:
        parser.error(str(error))
    try:
        asyncio.run(_serve(server, quiet=args.quiet))
    except KeyboardInterrupt:
        pass    # signal handler missed the window: still a clean exit
    except OSError as error:
        print(f"error: cannot serve on {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    if not args.quiet:
        print("shutdown clean", flush=True)
    return 0
