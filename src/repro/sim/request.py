"""Memory request primitives."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import SimulationError


class OpType(enum.Enum):
    """Request operation type."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def from_token(cls, token: str) -> "OpType":
        normalized = token.strip().upper()
        if normalized in ("R", "READ"):
            return cls.READ
        if normalized in ("W", "WRITE"):
            return cls.WRITE
        raise SimulationError(f"unknown operation token {token!r}")


@dataclass
class MemRequest:
    """One memory request as seen by the controller.

    ``arrival_ns`` is the wall-clock arrival; the simulator fills in the
    service fields (``start_ns``, ``finish_ns``, ``completion_ns``).
    """

    address: int
    op: OpType
    arrival_ns: float
    size_bytes: int = 128
    thread_id: int = 0
    start_ns: Optional[float] = None
    finish_ns: Optional[float] = None
    completion_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise SimulationError(f"negative address {self.address:#x}")
        if self.arrival_ns < 0.0:
            raise SimulationError("arrival time must be non-negative")
        if self.size_bytes <= 0:
            raise SimulationError("request size must be positive")

    @property
    def is_read(self) -> bool:
        return self.op is OpType.READ

    @property
    def latency_ns(self) -> float:
        """End-to-end latency once simulated."""
        if self.completion_ns is None:
            raise SimulationError("request has not been simulated")
        return self.completion_ns - self.arrival_ns
