"""Gain LUT sizing and the loss-aware reliability rules (Section IV.A)."""

import pytest

from repro.arch.lut import GainLUT
from repro.arch.organization import MemoryOrganization
from repro.arch.reliability import (
    active_soa_count,
    lut_granularity_rows,
    max_gain_error_db,
    rows_passable,
    soa_row_interval,
    total_soa_count,
    worst_row_path_loss_db,
)
from repro.device.mlc import paper_loss_tolerance_db
from repro.errors import ConfigError


class TestReliabilityRules:
    def test_soa_interval_is_46(self):
        """floor(15.2 dB / 0.33 dB) = 46 (Section III.E)."""
        assert soa_row_interval() == 46

    @pytest.mark.parametrize("bits,expected", [(1, 9), (2, 3), (4, 0)])
    def test_rows_passable(self, bits, expected):
        """b=1 signals pass 9 rows beyond the source (Section IV.A)."""
        assert rows_passable(bits) == expected

    @pytest.mark.parametrize("bits,expected", [(1, 10), (2, 4), (4, 1)])
    def test_lut_granularity(self, bits, expected):
        assert lut_granularity_rows(bits) == expected

    def test_soa_counts_formulas(self):
        org = MemoryOrganization.comet(4)
        # B * Nr * Nc / 46
        assert total_soa_count(org) == -(-4 * 2097152 * 256 // 46)
        # B * Mr * Mc / 46
        assert active_soa_count(org) == -(-4 * 512 * 256 // 46)

    def test_active_far_fewer_than_total(self):
        org = MemoryOrganization.comet(4)
        assert active_soa_count(org) * 1000 < total_soa_count(org)

    def test_worst_path_loss_within_soa_gain(self):
        org = MemoryOrganization.comet(4)
        assert worst_row_path_loss_db(org) <= 15.2

    def test_gain_error_within_tolerance(self):
        for bits in (1, 2, 4):
            assert max_gain_error_db(bits) <= paper_loss_tolerance_db(bits)


class TestGainLut:
    @pytest.mark.parametrize("bits,expected", [(1, 52), (2, 12), (4, 46)])
    def test_paper_entry_counts(self, bits, expected):
        """Section IV.A quotes 52 / 12 / 46 entries for b = 1 / 2 / 4."""
        lut = GainLUT(rows_per_subarray=512, bits_per_cell=bits)
        assert lut.paper_entry_count == expected

    def test_b1_distinct_entries_is_5(self):
        """'...making the entry requirement just 5 parameters' (b=1)."""
        assert GainLUT(512, 1).distinct_entries == 5

    def test_gain_monotone_within_period(self):
        lut = GainLUT(512, 4)
        gains = [lut.gain_db_for_row(row) for row in range(46)]
        assert all(b >= a for a, b in zip(gains, gains[1:]))

    def test_gain_resets_each_soa_period(self):
        lut = GainLUT(512, 4)
        assert lut.gain_db_for_row(46) == lut.gain_db_for_row(0)
        assert lut.gain_db_for_row(47) == lut.gain_db_for_row(1)

    def test_quantization_errs_toward_overgain(self):
        """Quantized gain must never under-compensate (levels alias down)."""
        lut = GainLUT(512, 1)
        for row in range(100):
            exact = (row % 46) * 0.33
            assert lut.gain_db_for_row(row) >= exact - 1e-9

    def test_residual_bounded_by_granularity(self):
        lut = GainLUT(512, 2)
        bound = lut.granularity_rows * 0.33 + 1e-9
        for row in range(92):
            assert lut.residual_loss_db_for_row(row) <= bound

    def test_table_lists_distinct_gains(self):
        lut = GainLUT(512, 2)
        table = lut.table()
        assert len(table) == lut.distinct_entries
        assert all(b > a for a, b in zip(table, table[1:]))

    def test_row_bounds(self):
        with pytest.raises(ConfigError):
            GainLUT(512, 4).gain_db_for_row(512)
