"""Evaluation-daemon smoke test: start, one miss + one hit, clean exit.

The CI job runs this end to end against real processes (no pytest, no
in-process shortcuts): launch ``python -m repro.sim serve`` as a
subprocess, wait for its ready line, issue one cache-miss query and the
same query again (served without recomputation — verified via
``/stats``), then request shutdown and assert the daemon exits 0.

Usage::

    PYTHONPATH=src python examples/server_smoke.py
"""

import os
import subprocess
import sys
import tempfile

from repro.sim.client import EvalClient
from repro.sim.engine import EvalTask, evaluate_cell

TASK = EvalTask("EPCM-MM", "gcc", 500, 7)


def main() -> int:
    store_dir = tempfile.mkdtemp(prefix="eval-smoke-store-")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.sim", "serve", "--port", "0",
         "--store", store_dir, "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ},
    )
    try:
        ready = daemon.stdout.readline().strip()
        assert ready.startswith("ready: "), f"unexpected banner: {ready!r}"
        address = ready.split("ready: ", 1)[1]
        print(f"daemon up at {address}")

        client = EvalClient(address)
        assert client.ping(), "health check failed"

        miss = client.eval_cell(TASK)
        counters = client.stats()
        assert counters["computed"] == 1, counters
        print(f"miss computed: {miss.bandwidth_gbps:.2f} GB/s")

        hit = client.eval_cell(TASK)
        counters = client.stats()
        assert counters["computed"] == 1, \
            f"warm query recomputed: {counters}"
        assert counters["lru_hits"] + counters["store_hits"] >= 1, counters
        assert hit == miss, "hit diverged from the computed stats"
        print("hit served without recomputation")

        direct = evaluate_cell(TASK)
        assert miss == direct, "served stats differ from direct evaluation"
        print("served stats bit-identical to direct evaluate_cell")

        client.shutdown()
        code = daemon.wait(timeout=60)
        assert code == 0, f"daemon exited {code}"
        print("clean shutdown")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)
        stderr = daemon.stderr.read()
        if stderr:
            print(stderr, file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
