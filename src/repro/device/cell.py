"""Optical response of a GST-on-waveguide cell (the Fig. 4/Fig. 6 substrate).

The transmission of a PCM-loaded waveguide section of length ``L`` is

    T(fc, lambda) = (1 - R_in) * (1 - R_out) * exp(-alpha(fc, lambda) * L)

where ``alpha`` is the modal intensity absorption (from the mode solver's
confinement-weighted extinction) and ``R_in/R_out`` are the Fresnel power
reflections of the effective-index step between the bare and loaded strip
sections — the "optical-refractive-index mismatch" contribution the paper
calls out in Section III.B.

A single calibration constant, ``field_enhancement``, scales the modal
extinction to absorb what the 1-D effective-index picture under-counts
versus full FDTD (field concentration at the high-index GST film edges and
slow-light enhancement).  It is chosen once so that the paper's selected
geometry (480 nm x 20 nm x 2 um) reaches the reported ~95 % transmission /
absorption contrast, and held fixed for every other geometry, material,
wavelength and crystalline fraction — the *shapes* of Figs. 4 and 6 are
produced by the physics, not the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..constants import WAVELENGTH_1550_M
from ..errors import MaterialError, SolverError
from ..materials.pcm import PhaseChangeMaterial
from ..photonics.indices import SILICA_INDEX
from ..photonics.waveguide import PcmLoadedWaveguide, WaveguideMode
from ..units import kappa_to_alpha_per_m, transmission_to_loss_db
from .geometry import CellGeometry

#: Calibrated once against the paper's ~95 % contrast at the selected
#: geometry; see tests/device/test_cell.py::test_selected_geometry_contrast.
DEFAULT_FIELD_ENHANCEMENT = 1.8

#: Crystalline-fraction grid used for the cached response tables.
_FC_GRID = np.linspace(0.0, 1.0, 41)


@dataclass(frozen=True)
class CellOpticalResponse:
    """The optical response of one cell state."""

    crystalline_fraction: float
    transmission: float
    absorption: float
    reflection: float
    insertion_loss_db: float
    effective_index: float

    def __post_init__(self) -> None:
        total = self.transmission + self.absorption + self.reflection
        if not 0.999 <= total <= 1.001:
            raise SolverError(f"T+A+R must sum to 1, got {total}")


class OpticalGstCell:
    """A PCM-on-waveguide memory cell with multi-level optical response."""

    def __init__(
        self,
        material: PhaseChangeMaterial,
        geometry: CellGeometry = CellGeometry(),
        field_enhancement: float = DEFAULT_FIELD_ENHANCEMENT,
    ) -> None:
        if field_enhancement <= 0.0:
            raise SolverError("field enhancement must be positive")
        self.material = material
        self.geometry = geometry
        self.field_enhancement = field_enhancement
        self._table_cache = {}
        self._waveguide = PcmLoadedWaveguide(
            width_m=geometry.waveguide_width_m,
            core_thickness_m=geometry.core_thickness_m,
            pcm_thickness_m=geometry.pcm_thickness_m,
            core_index=geometry.platform_index,
            substrate_index=SILICA_INDEX,
            top_cladding_index=SILICA_INDEX,
        )

    # ------------------------------------------------------------------
    # Mode-level quantities
    # ------------------------------------------------------------------

    def bare_mode(self, wavelength_m: float = WAVELENGTH_1550_M) -> WaveguideMode:
        """Fundamental mode of the unloaded access waveguide."""
        return self._waveguide.bare_mode(wavelength_m)

    def loaded_mode(
        self, crystalline_fraction: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> WaveguideMode:
        """Fundamental mode of the PCM-loaded section at a given state."""
        n, kappa = self.material.nk(wavelength_m, crystalline_fraction)
        return self._waveguide.loaded_mode(wavelength_m, complex(n, kappa))

    def absorption_coefficient_per_m(
        self, crystalline_fraction: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> float:
        """Modal intensity absorption coefficient [1/m], calibrated."""
        mode = self.loaded_mode(crystalline_fraction, wavelength_m)
        kappa_eff = mode.modal_extinction * self.field_enhancement
        return kappa_to_alpha_per_m(kappa_eff, wavelength_m)

    # ------------------------------------------------------------------
    # Cell response
    # ------------------------------------------------------------------

    def response(
        self, crystalline_fraction: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> CellOpticalResponse:
        """Full T/A/R response of the cell in a given state."""
        if not 0.0 <= crystalline_fraction <= 1.0:
            raise MaterialError(
                f"crystalline fraction must be in [0, 1], got {crystalline_fraction}"
            )
        bare = self.bare_mode(wavelength_m)
        loaded = self.loaded_mode(crystalline_fraction, wavelength_m)
        r_facet = _fresnel_power_reflection(
            bare.effective_index, loaded.effective_index
        )
        alpha = self.absorption_coefficient_per_m(crystalline_fraction, wavelength_m)
        internal_t = float(np.exp(-alpha * self.geometry.cell_length_m))
        transmission = (1.0 - r_facet) ** 2 * internal_t
        # Power absorbed inside the film (single-pass, no multiple
        # reflections: the facet reflections here are <1 %).
        absorbed = (1.0 - r_facet) * (1.0 - internal_t)
        reflection = 1.0 - transmission - absorbed
        return CellOpticalResponse(
            crystalline_fraction=crystalline_fraction,
            transmission=transmission,
            absorption=absorbed,
            reflection=reflection,
            insertion_loss_db=transmission_to_loss_db(max(transmission, 1e-12)),
            effective_index=loaded.effective_index,
        )

    def transmission(
        self, crystalline_fraction: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> float:
        """Power transmission of the cell in a given state."""
        return self.response(crystalline_fraction, wavelength_m).transmission

    def absorption(
        self, crystalline_fraction: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> float:
        """Fraction of incident power absorbed in the cell."""
        return self.response(crystalline_fraction, wavelength_m).absorption

    # ------------------------------------------------------------------
    # Contrast figures (Fig. 4 quantities)
    # ------------------------------------------------------------------

    def transmission_contrast(
        self, wavelength_m: float = WAVELENGTH_1550_M
    ) -> float:
        """T(amorphous) - T(crystalline) — the Fig. 4 transmission contrast."""
        return (self.transmission(0.0, wavelength_m)
                - self.transmission(1.0, wavelength_m))

    def absorption_contrast(self, wavelength_m: float = WAVELENGTH_1550_M) -> float:
        """A(crystalline) - A(amorphous) — the Fig. 4 absorption contrast."""
        return (self.absorption(1.0, wavelength_m)
                - self.absorption(0.0, wavelength_m))

    # ------------------------------------------------------------------
    # Level inversion (Fig. 6 support)
    # ------------------------------------------------------------------

    def _transmission_table(
        self, wavelength_m: float = WAVELENGTH_1550_M
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(fc grid, transmission) table; transmission decreases with fc."""
        key = round(wavelength_m, 15)
        if key not in self._table_cache:
            transmissions = np.array(
                [self.transmission(fc, wavelength_m) for fc in _FC_GRID]
            )
            self._table_cache[key] = (_FC_GRID.copy(), transmissions)
        return self._table_cache[key]

    def fc_for_transmission(
        self, target_transmission: float,
        wavelength_m: float = WAVELENGTH_1550_M,
    ) -> float:
        """Invert T(fc) to the crystalline fraction realizing a target level.

        Raises :class:`MaterialError` when the target is outside the cell's
        achievable [T(crystalline), T(amorphous)] range.
        """
        fc_grid, trans = self._transmission_table(wavelength_m)
        t_max, t_min = trans[0], trans[-1]
        if not t_min - 1e-9 <= target_transmission <= t_max + 1e-9:
            raise MaterialError(
                f"target transmission {target_transmission:.3f} outside the "
                f"achievable range [{t_min:.3f}, {t_max:.3f}]"
            )
        # T decreases monotonically with fc; np.interp wants ascending x.
        return float(np.interp(target_transmission, trans[::-1], fc_grid[::-1]))

    # ------------------------------------------------------------------
    # Wavelength dependence (C-band claims of Section III.B)
    # ------------------------------------------------------------------

    def loss_db_per_mm(
        self, crystalline_fraction: float, wavelength_m: float
    ) -> float:
        """Propagation-style loss of the loaded section in dB/mm."""
        alpha = self.absorption_coefficient_per_m(crystalline_fraction, wavelength_m)
        return 10.0 * alpha / np.log(10.0) * 1e-3

    def c_band_contrast_variation(self, points: int = 8) -> float:
        """Max relative variation of the transmission contrast over C-band."""
        wavelengths = np.linspace(1530e-9, 1565e-9, points)
        contrasts = np.array([self.transmission_contrast(w) for w in wavelengths])
        return float((contrasts.max() - contrasts.min()) / contrasts.max())


def _fresnel_power_reflection(n1: float, n2: float) -> float:
    """Normal-incidence Fresnel power reflection between effective indices."""
    if n1 <= 0.0 or n2 <= 0.0:
        raise SolverError("effective indices must be positive")
    r = (n1 - n2) / (n1 + n2)
    return r * r
