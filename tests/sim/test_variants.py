"""Ablation-variant architectures: first-class, store-addressable names."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.sim.engine import EvalTask, evaluate_cell, task_from_dict
from repro.sim.factory import (
    ARCHITECTURE_NAMES,
    VARIANT_NAMES,
    build_cosmos_device,
    build_device,
    known_architectures,
)
from repro.sim.store import task_digest
from repro.sim.sweep import SweepSpec
from repro.baselines.cosmos import CosmosArchitecture


class TestRegistry:
    def test_fig9_grid_unchanged(self):
        """Variants must not leak into the paper's seven-architecture
        grid (golden rankings, default sweeps)."""
        assert len(ARCHITECTURE_NAMES) == 7
        assert not set(VARIANT_NAMES) & set(ARCHITECTURE_NAMES)
        assert set(known_architectures()) \
            == set(ARCHITECTURE_NAMES) | set(VARIANT_NAMES)

    @pytest.mark.parametrize("name", VARIANT_NAMES)
    def test_variant_builds_under_its_own_name(self, name):
        device = build_device(name)
        assert device.name == name

    def test_unknown_name_lists_variants(self):
        with pytest.raises(ConfigError, match="COMET-b1"):
            build_device("COMET-b9")

    def test_variant_matches_inline_construction(self):
        """The registered variant is the device the ablation bench used
        to build by hand (modulo the distinguishing name)."""
        inline = build_cosmos_device(CosmosArchitecture(
            subtractive_read=False))
        registered = build_device("COSMOS-direct")
        assert dataclasses.replace(registered, name=inline.name) == inline


class TestEvaluation:
    def test_variant_cell_evaluates(self):
        stats = evaluate_cell(EvalTask("COMET-ungated", "gcc", 300, 1))
        assert stats.device_name == "COMET-ungated"
        base = evaluate_cell(EvalTask("COMET", "gcc", 300, 1))
        # Gating is an energy knob, not a timing one.
        assert stats.bandwidth_gbps == base.bandwidth_gbps
        assert stats.energy_per_bit_pj > base.energy_per_bit_pj

    def test_variant_digest_differs_from_base(self):
        base = task_digest(EvalTask("COMET", "gcc", 300, 1))
        variant = task_digest(EvalTask("COMET-b1", "gcc", 300, 1))
        assert base != variant

    def test_wire_format_accepts_variants(self):
        task = task_from_dict({"architecture": "3D_DDR4-closed",
                               "workload": "mcf", "num_requests": 100})
        assert task.architecture == "3D_DDR4-closed"

    def test_sweep_spec_accepts_variants(self):
        spec = SweepSpec(architectures=("COMET", "COMET-thermal"),
                         workloads=("milc",), num_requests=(100,))
        assert spec.num_cells == 2


class TestAccelWorkloads:
    def test_dota_workloads_resolve_by_name(self):
        from repro.accel.dota import DotaSystem
        from repro.accel.transformer import DEIT_BASE, DEIT_TINY
        from repro.sim.tracegen import (ACCEL_WORKLOAD_NAMES,
                                        ALL_WORKLOAD_NAMES, WORKLOAD_NAMES,
                                        get_workload)

        for model in (DEIT_TINY, DEIT_BASE):
            expected = DotaSystem("COMET", model).traffic_workload()
            assert get_workload(expected.name) == expected
            assert expected.name in ACCEL_WORKLOAD_NAMES
        # Lazily registered: addressable everywhere, but not part of the
        # default workload set ('--workloads all', grid presets).
        assert not set(ACCEL_WORKLOAD_NAMES) & set(WORKLOAD_NAMES)
        assert set(ALL_WORKLOAD_NAMES) \
            == set(WORKLOAD_NAMES) | set(ACCEL_WORKLOAD_NAMES)

    def test_wire_format_accepts_dota_workload(self):
        task = task_from_dict({"architecture": "COMET",
                               "workload": "dota-DeiT-T",
                               "num_requests": 100, "seed": 7})
        assert task.workload == "dota-DeiT-T"

    def test_custom_dota_system_not_engine_addressable(self):
        from repro.accel.dota import DotaSystem
        from repro.accel.transformer import DEIT_TINY

        default = DotaSystem("COMET", DEIT_TINY)
        custom = DotaSystem("COMET", DEIT_TINY, inference_rate_per_s=1.0)
        assert default.is_engine_addressable()
        assert not custom.is_engine_addressable()
        # The direct fallback still evaluates.
        result = custom.evaluate(num_requests=200)
        assert result.system_epb_pj > 0.0
