"""Crystallization kinetics: JMAK/Scheil and melt-quench."""

import numpy as np
import pytest

from repro.device.kinetics import CrystallizationKinetics
from repro.errors import ProgrammingError
from repro.materials import get_record


@pytest.fixture(scope="module")
def kinetics():
    record = get_record("GST")
    return CrystallizationKinetics(record.kinetics, record.thermal)


class TestRateWindow:
    def test_zero_outside_window(self, kinetics):
        assert kinetics.rate_per_s(300.0) == 0.0           # ambient
        assert kinetics.rate_per_s(420.0) == 0.0           # below Tg
        assert kinetics.rate_per_s(950.0) == 0.0           # above Tl

    def test_peak_at_optimal_temperature(self, kinetics):
        t_opt = kinetics.params.optimal_temperature_k
        assert kinetics.rate_per_s(t_opt) == pytest.approx(
            kinetics.params.k_max_per_s)
        assert kinetics.rate_per_s(t_opt) > kinetics.rate_per_s(t_opt - 100)
        assert kinetics.rate_per_s(t_opt) > kinetics.rate_per_s(t_opt + 100)

    def test_array_input(self, kinetics):
        temps = np.array([300.0, 650.0, 950.0])
        rates = kinetics.rate_per_s(temps)
        assert rates.shape == (3,)
        assert rates[0] == rates[2] == 0.0
        assert rates[1] > 0.0


class TestJmak:
    def test_fraction_progress_roundtrip(self, kinetics):
        for fc in (0.1, 0.5, 0.9, 0.99):
            theta = kinetics.progress_for_fraction(fc)
            assert kinetics.fraction_from_progress(theta) \
                == pytest.approx(fc, rel=1e-9)

    def test_isothermal_fraction_monotone_in_time(self, kinetics):
        times = np.linspace(0, 100e-9, 8)
        fractions = [kinetics.isothermal_fraction(650.0, t) for t in times]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] == 0.0

    def test_time_to_fraction_inverts(self, kinetics):
        t = kinetics.time_to_fraction_s(650.0, 0.9)
        assert kinetics.isothermal_fraction(650.0, t) == pytest.approx(0.9)

    def test_no_growth_outside_window(self, kinetics):
        with pytest.raises(ProgrammingError):
            kinetics.time_to_fraction_s(300.0, 0.5)

    def test_sigmoid_shape(self, kinetics):
        """JMAK with n=2 accelerates then saturates (S-curve)."""
        t_half = kinetics.time_to_fraction_s(650.0, 0.5)
        early = kinetics.isothermal_fraction(650.0, t_half / 4)
        assert early < 0.125  # slower than linear at the start

    def test_evolve_fraction_accumulates(self, kinetics):
        temps = np.full(100, 650.0)
        dt = 1e-9
        fc1 = kinetics.evolve_fraction(0.0, temps, dt)
        fc2 = kinetics.evolve_fraction(fc1, temps, dt)
        direct = kinetics.evolve_fraction(0.0, np.full(200, 650.0), dt)
        assert fc2 == pytest.approx(direct, rel=1e-6)

    def test_evolve_from_full_crystalline_stays(self, kinetics):
        assert kinetics.evolve_fraction(1.0, np.full(10, 650.0), 1e-9) == 1.0


class TestMeltQuench:
    def test_no_melt_below_tl(self, kinetics):
        result = kinetics.melt_quench(0.8, 850.0, 1e10)
        assert result.melted_fraction == 0.0
        assert result.resulting_crystalline_fraction == 0.8

    def test_full_melt_fast_quench_amorphizes(self, kinetics):
        result = kinetics.melt_quench(1.0, 960.0, 1e10)
        assert result.melted_fraction == 1.0
        assert result.amorphized
        assert result.resulting_crystalline_fraction == 0.0

    def test_partial_melt_partial_amorphization(self, kinetics):
        result = kinetics.melt_quench(1.0, 925.0, 1e10)
        assert 0.0 < result.melted_fraction < 1.0
        assert 0.0 < result.resulting_crystalline_fraction < 1.0

    def test_slow_quench_recrystallizes(self, kinetics):
        result = kinetics.melt_quench(0.5, 960.0, 1e6)
        assert not result.amorphized
        assert result.resulting_crystalline_fraction == pytest.approx(1.0)

    def test_melt_fraction_linear_in_overdrive(self, kinetics):
        t_melt = kinetics.thermal.melting_temperature_k
        margin = kinetics.full_melt_margin_k
        assert kinetics.melt_fraction_from_peak(t_melt + margin / 2) \
            == pytest.approx(0.5)
