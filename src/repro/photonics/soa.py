"""Semiconductor optical amplifier model.

COMET plants SOA arrays inside every subarray (one stage every 46 rows,
Section III.E) and loss-aware boosters at the electrical interface.  The
intra-subarray SOAs only have to restore the signal to the 0 dBm bank input
level and consume 1.4 mW each [29]; Table I also lists a 20 dB booster SOA.

The model is a saturating gain block: ``P_out = min(G * P_in, P_sat)``,
with a fixed electrical power draw when enabled (the dominant cost — bias
current is burned whether or not photons arrive, which is why COMET only
enables SOAs inside the subarray being accessed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..units import db_to_linear


@dataclass(frozen=True)
class SemiconductorOpticalAmplifier:
    """A single SOA stage."""

    gain_db: float = 15.2
    saturation_output_w: float = 1e-3     # 0 dBm output per [29]
    electrical_power_w: float = 1.4e-3
    noise_figure_db: float = 7.0
    enable_latency_s: float = 1e-9

    def __post_init__(self) -> None:
        if self.gain_db < 0.0:
            raise ConfigError("SOA gain must be non-negative")
        if self.saturation_output_w <= 0.0:
            raise ConfigError("saturation power must be positive")
        if self.electrical_power_w < 0.0:
            raise ConfigError("electrical power must be non-negative")

    @classmethod
    def intra_subarray(cls, params: OpticalParameters = TABLE_I
                       ) -> "SemiconductorOpticalAmplifier":
        """The 15.2 dB / 1.4 mW intra-subarray SOA of Section III.E."""
        return cls(
            gain_db=params.intra_soa_gain_db,
            saturation_output_w=params.intra_soa_output_power_w,
            electrical_power_w=params.intra_soa_power_w,
        )

    @classmethod
    def booster(cls, params: OpticalParameters = TABLE_I
                ) -> "SemiconductorOpticalAmplifier":
        """The 20 dB interface booster of Table I."""
        return cls(
            gain_db=params.soa_gain_db,
            saturation_output_w=5e-3,
            electrical_power_w=5e-3,
        )

    @property
    def gain_linear(self) -> float:
        return db_to_linear(self.gain_db)

    def amplify(self, input_power_w: float) -> float:
        """Output power for a given input power (saturating)."""
        if input_power_w < 0.0:
            raise ConfigError("input power must be non-negative")
        return min(input_power_w * self.gain_linear, self.saturation_output_w)

    def compensable_loss_db(self) -> float:
        """Maximum span loss this stage can fully make up for."""
        return self.gain_db

    def stages_for_loss(self, total_loss_db: float) -> int:
        """How many cascaded stages are needed to cover ``total_loss_db``."""
        if total_loss_db <= 0.0:
            return 0
        full, rem = divmod(total_loss_db, self.gain_db)
        return int(full) + (1 if rem > 1e-12 else 0)
