"""Memory organization algebra."""

import pytest

from repro.arch.organization import MemoryOrganization
from repro.errors import ConfigError


class TestComet:
    @pytest.mark.parametrize("bits,cols", [(1, 1024), (2, 512), (4, 256)])
    def test_paper_configurations(self, bits, cols):
        org = MemoryOrganization.comet(bits)
        assert org.banks == 4
        assert org.row_subarrays == 4096
        assert org.rows_per_subarray == 512
        assert org.cols_per_subarray == cols
        assert org.col_subarrays == 1

    def test_capacity_one_gib_per_channel(self):
        for bits in (1, 2, 4):
            org = MemoryOrganization.comet(bits)
            assert org.capacity_bytes == 2**30

    def test_row_bits_constant_across_densities(self):
        """Section IV.A: Nc shrinks as b grows so the line size holds."""
        row_bits = {MemoryOrganization.comet(b).row_bits for b in (1, 2, 4)}
        assert row_bits == {1024}

    def test_wavelengths_required(self):
        assert MemoryOrganization.comet(4).wavelengths_required == 256
        assert MemoryOrganization.comet(1).wavelengths_required == 1024

    def test_mr_counts(self):
        org = MemoryOrganization.comet(4)
        assert org.access_mr_count == 2 * 256
        assert org.row_access_mr_count == 2 * 256

    def test_subarray_grid_is_64(self):
        assert MemoryOrganization.comet(4).subarray_grid_side == 64

    def test_describe(self):
        assert MemoryOrganization.comet(4).describe() \
            == "(4 x 4096 x 512 x 256 x 4)"


class TestCosmos:
    def test_section_iv_b_shape(self):
        org = MemoryOrganization.cosmos()
        assert org.banks == 16
        assert org.rows_per_bank == 16384
        assert org.cols_per_bank == 16384
        assert org.bits_per_cell == 2
        assert org.rows_per_subarray == org.cols_per_subarray == 32

    def test_capacity_matches_comet_channel_device(self):
        """Both photonic devices hold 1 GiB (the 8 GB part is 8 of them)."""
        assert MemoryOrganization.cosmos().capacity_bits \
            == MemoryOrganization.comet(4).capacity_bits == 2**33


class TestValidation:
    def test_rejects_zero_fields(self):
        with pytest.raises(ConfigError):
            MemoryOrganization(0, 1, 1, 1, 1, 1)

    def test_non_square_grid_raises(self):
        org = MemoryOrganization(4, 48, 1, 512, 256, 4)
        with pytest.raises(ConfigError):
            org.subarray_grid_side
