"""Silicon-photonics substrate: waveguides, rings, SOAs, lasers, losses.

This package is the reproduction's substitute for the commercial tooling
the paper uses (Ansys Lumerical FDTD for cell electromagnetics) plus the
circuit-level component models (microrings with EO/thermal tuning, SOAs,
GST waveguide switches, WDM/MDM links, itemized loss budgets, and the
COSMOS crossbar crosstalk model).
"""

from .indices import (
    SILICON_INDEX,
    SILICA_INDEX,
    SILICON_NITRIDE_INDEX,
    AIR_INDEX,
)
from .slab import Layer, SlabMode, MultilayerSlabSolver
from .waveguide import StripWaveguide, WaveguideMode, PcmLoadedWaveguide
from .ring import MicroringResonator, TuningMechanism, RingTuningModel
from .soa import SemiconductorOpticalAmplifier
from .laser import LaserSource
from .losses import LossElement, LossBudget
from .switch import GstWaveguideSwitch, SwitchState
from .crosstalk import CrossbarCrosstalkModel, CrosstalkEvent
from .links import WdmMdmLink
from .wdm import WdmGrid, ring_addressability, comet_wavelength_plan

__all__ = [
    "SILICON_INDEX",
    "SILICA_INDEX",
    "SILICON_NITRIDE_INDEX",
    "AIR_INDEX",
    "Layer",
    "SlabMode",
    "MultilayerSlabSolver",
    "StripWaveguide",
    "WaveguideMode",
    "PcmLoadedWaveguide",
    "MicroringResonator",
    "TuningMechanism",
    "RingTuningModel",
    "SemiconductorOpticalAmplifier",
    "LaserSource",
    "LossElement",
    "LossBudget",
    "GstWaveguideSwitch",
    "SwitchState",
    "CrossbarCrosstalkModel",
    "CrosstalkEvent",
    "WdmMdmLink",
    "WdmGrid",
    "ring_addressability",
    "comet_wavelength_plan",
]
