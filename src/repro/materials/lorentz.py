"""Single-pole Lorentz oscillator dispersion model.

The paper (Section III.A) models the refractive index ``n`` and extinction
coefficient ``kappa`` of each PCM phase "using the Lorenz model [27]"
(Wang et al., npj Comput. Mater. 7, 183, 2021).  The complex relative
permittivity of a single Lorentz oscillator is

    eps(E) = eps_inf + A / (E0^2 - E^2 - i * Gamma * E)

with photon energy ``E`` in eV, resonance energy ``E0``, oscillator
strength ``A`` (eV^2) and damping ``Gamma`` (eV).  The complex refractive
index is ``n + i*kappa = sqrt(eps)`` (positive branch).

:func:`fit_single_oscillator` inverts the model analytically so that the
oscillator reproduces a published ``(n, kappa)`` point *exactly* at a chosen
wavelength, given a resonance energy and damping appropriate for the
material class.  Because all PCM resonances sit far above the telecom band
(visible/UV), this yields smooth, physically-shaped normal dispersion
across the C-band, which is all Fig. 3 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..constants import photon_energy_ev
from ..errors import MaterialError

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class LorentzOscillator:
    """Single-pole Lorentz oscillator.

    Parameters
    ----------
    eps_inf:
        High-frequency (background) permittivity, dimensionless.
    amplitude:
        Oscillator strength ``A`` in eV^2.
    resonance_ev:
        Resonance energy ``E0`` in eV.
    damping_ev:
        Damping ``Gamma`` in eV (must be positive for causality).
    """

    eps_inf: float
    amplitude: float
    resonance_ev: float
    damping_ev: float

    def __post_init__(self) -> None:
        if self.resonance_ev <= 0.0:
            raise MaterialError("resonance energy must be positive")
        if self.damping_ev <= 0.0:
            raise MaterialError("damping must be positive")
        if self.amplitude < 0.0:
            raise MaterialError("oscillator strength must be non-negative")

    # -- core model --------------------------------------------------------

    def permittivity(self, wavelength_m: ArrayLike) -> ArrayLike:
        """Complex relative permittivity at the given vacuum wavelength(s)."""
        energy = _photon_energy(wavelength_m)
        denom = (self.resonance_ev ** 2 - energy ** 2) - 1j * self.damping_ev * energy
        return self.eps_inf + self.amplitude / denom

    def complex_index(self, wavelength_m: ArrayLike) -> ArrayLike:
        """Complex refractive index ``n + i*kappa`` (principal square root)."""
        eps = self.permittivity(wavelength_m)
        return np.sqrt(eps + 0j)

    def nk(self, wavelength_m: ArrayLike) -> Tuple[ArrayLike, ArrayLike]:
        """Return ``(n, kappa)`` at the given wavelength(s)."""
        index = self.complex_index(wavelength_m)
        n = np.real(index)
        kappa = np.imag(index)
        if np.isscalar(wavelength_m):
            return float(n), float(kappa)
        return np.asarray(n), np.asarray(kappa)

    def refractive_index(self, wavelength_m: ArrayLike) -> ArrayLike:
        """Real refractive index ``n``."""
        return self.nk(wavelength_m)[0]

    def extinction_coefficient(self, wavelength_m: ArrayLike) -> ArrayLike:
        """Extinction coefficient ``kappa``."""
        return self.nk(wavelength_m)[1]


def _photon_energy(wavelength_m: ArrayLike) -> ArrayLike:
    if np.isscalar(wavelength_m):
        return photon_energy_ev(float(wavelength_m))
    arr = np.asarray(wavelength_m, dtype=float)
    if np.any(arr <= 0.0):
        raise MaterialError("wavelengths must be positive")
    return np.array([photon_energy_ev(w) for w in arr.ravel()]).reshape(arr.shape)


def fit_single_oscillator(
    n: float,
    kappa: float,
    wavelength_m: float,
    resonance_ev: float,
    damping_ev: float,
) -> LorentzOscillator:
    """Build an oscillator that reproduces ``(n, kappa)`` exactly.

    Given the target complex permittivity ``eps_t = (n + i*kappa)^2`` at
    photon energy ``E`` and a chosen ``(E0, Gamma)``, solve

        A     = Im(eps_t) * |D|^2 / (Gamma * E)
        eps_inf = Re(eps_t) - A * (E0^2 - E^2) / |D|^2

    where ``D = (E0^2 - E^2) - i*Gamma*E``.  The imaginary part pins the
    oscillator strength; the real part absorbs the remainder into
    ``eps_inf``.

    Raises
    ------
    MaterialError
        If the target extinction is negative or the fit produces a negative
        oscillator strength (i.e. the resonance sits below the fit point).
    """
    if n <= 0.0:
        raise MaterialError(f"refractive index must be positive, got {n}")
    if kappa < 0.0:
        raise MaterialError(f"extinction must be non-negative, got {kappa}")
    energy = photon_energy_ev(wavelength_m)
    if resonance_ev <= energy:
        raise MaterialError(
            "oscillator resonance must lie above the fit photon energy "
            f"({resonance_ev} eV <= {energy:.3f} eV)"
        )
    # A strictly zero kappa makes A = 0 and the model dispersionless; use a
    # tiny floor so weakly-absorbing phases still show normal dispersion.
    kappa_eff = max(kappa, 1e-6)
    eps_target = complex(n, kappa_eff) ** 2
    denom = (resonance_ev ** 2 - energy ** 2) - 1j * damping_ev * energy
    denom_sq = abs(denom) ** 2
    amplitude = eps_target.imag * denom_sq / (damping_ev * energy)
    eps_inf = eps_target.real - amplitude * (resonance_ev ** 2 - energy ** 2) / denom_sq
    if amplitude < 0.0:
        raise MaterialError("fit produced a negative oscillator strength")
    return LorentzOscillator(
        eps_inf=eps_inf,
        amplitude=amplitude,
        resonance_ev=resonance_ev,
        damping_ev=damping_ev,
    )
