"""Ablation — DRAM page policy (controller fairness check).

The Fig. 9 DRAM baselines use open-page controllers; this ablation
verifies the comparison is not rigged by that choice: COMET's bandwidth
advantage survives whichever policy flatters the DRAM on each workload.

The closed-page controller is the registered ``3D_DDR4-closed`` variant
architecture, so the cells are store-addressable and a
``$REPRO_RESULT_STORE`` makes re-runs incremental.
"""

from repro.sim.engine import EvalTask, evaluate_tasks

ARCH_OF = {"open": "3D_DDR4", "closed": "3D_DDR4-closed",
           "comet": "COMET"}
WORKLOADS = ("libquantum", "mcf")


def bench_ablation_page_policy(benchmark, eval_store):
    def run():
        tasks = {(label, workload): EvalTask(arch, workload, 3000, 1)
                 for label, arch in ARCH_OF.items()
                 for workload in WORKLOADS}
        lookup = evaluate_tasks(list(tasks.values()), store=eval_store)
        results = {label: {} for label in ARCH_OF}
        for (label, workload), task in tasks.items():
            results[label][workload] = lookup[task]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for policy in ("open", "closed"):
        for workload, stats in results[policy].items():
            print(f"  3D_DDR4[{policy:6s}] {workload:10s}: "
                  f"{stats.bandwidth_gbps:6.2f} GB/s "
                  f"(hit rate {stats.row_hit_rate:.0%})")

    # Per-request service: each workload prefers the expected policy.
    def busy_per_request(policy, workload):
        stats = results[policy][workload]
        return stats.busy_time_ns / stats.num_requests

    assert busy_per_request("open", "libquantum") \
        < busy_per_request("closed", "libquantum")
    assert busy_per_request("closed", "mcf") < busy_per_request("open", "mcf")

    # COMET keeps its bandwidth lead under the DRAM-optimal policy.
    for workload in WORKLOADS:
        best_dram = max(results["open"][workload].bandwidth_gbps,
                        results["closed"][workload].bandwidth_gbps)
        assert results["comet"][workload].bandwidth_gbps > best_dram
