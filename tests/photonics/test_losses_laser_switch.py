"""Loss budgets, laser source and the GST waveguide switch."""

import pytest

from repro.config import TABLE_I
from repro.errors import ConfigError
from repro.photonics.laser import LaserSource, default_laser
from repro.photonics.losses import LossBudget, LossElement, waveguide_path_budget
from repro.photonics.switch import GstWaveguideSwitch, SwitchState


class TestLossBudget:
    def test_total_is_sum(self):
        budget = LossBudget().add("a", 1.0).add("b", 0.5, count=3)
        assert budget.total_db == pytest.approx(2.5)
        assert len(budget) == 2

    def test_transmission_consistent(self):
        budget = LossBudget().add("a", 3.0103)
        assert budget.transmission == pytest.approx(0.5, rel=1e-4)

    def test_itemize_merges_names(self):
        budget = LossBudget().add("mr", 0.02).add("mr", 0.02)
        assert budget.itemize() == {"mr": pytest.approx(0.04)}

    def test_extend_composes(self):
        a = LossBudget().add("x", 1.0)
        b = LossBudget().add("y", 2.0)
        a.extend(b)
        assert a.total_db == pytest.approx(3.0)

    def test_launch_power(self):
        budget = LossBudget().add("path", 10.0)
        assert budget.required_launch_power_w(1e-3) == pytest.approx(1e-2)
        assert budget.delivered_power_w(1e-2) == pytest.approx(1e-3)

    def test_negative_loss_rejected(self):
        with pytest.raises(ConfigError):
            LossElement("bad", -1.0)

    def test_waveguide_path_helper(self):
        budget = waveguide_path_budget(length_cm=2.0, bends_90deg=4)
        items = budget.itemize()
        assert items["propagation"] == pytest.approx(0.2)
        assert items["bending"] == pytest.approx(0.04)


class TestLaser:
    def test_wall_plug_scaling(self):
        laser = LaserSource(wall_plug_efficiency=0.2)
        assert laser.electrical_power_w(1.0) == pytest.approx(5.0)

    def test_launch_power_covers_loss(self):
        laser = LaserSource()
        assert laser.launch_power_w(1e-3, 10.0) == pytest.approx(1e-2)

    def test_per_channel_limit_enforced(self):
        laser = LaserSource(max_optical_power_per_channel_w=5e-3)
        with pytest.raises(ConfigError):
            laser.launch_power_w(1e-3, 10.0)

    def test_link_power_multiplies_channels(self):
        laser = LaserSource()
        single = laser.electrical_power_for_link_w(1e-3, 3.0, channels=1)
        many = laser.electrical_power_for_link_w(1e-3, 3.0, channels=64)
        assert many == pytest.approx(64 * single)

    def test_default_laser_uses_table_i(self):
        assert default_laser().wall_plug_efficiency \
            == TABLE_I.laser_wall_plug_efficiency


class TestGstSwitch:
    def test_coupling_loss_is_table_value(self):
        switch = GstWaveguideSwitch.from_parameters()
        assert switch.loss_db(SwitchState.COUPLING) == pytest.approx(0.2)

    def test_blocking_attenuates_strongly(self):
        switch = GstWaveguideSwitch()
        assert switch.transmission(SwitchState.BLOCKING) \
            < 0.01 * switch.transmission(SwitchState.COUPLING)

    def test_switch_time_100ns(self):
        switch = GstWaveguideSwitch.from_parameters()
        assert switch.switch_time_s == pytest.approx(100e-9)

    def test_nonvolatile(self):
        assert GstWaveguideSwitch().is_nonvolatile()
