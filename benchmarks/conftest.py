"""Benchmark-suite configuration.

Every bench regenerates one paper artifact (table or figure), asserts its
qualitative shape, and — through pytest-benchmark — reports how long the
regeneration takes.  Heavy pipelines (the Fig. 9/10 simulator grids) run
single-round via ``benchmark.pedantic``; cheap device/material benches run
with normal calibration.

Run with::

    pytest benchmarks/ --benchmark-only
"""
