"""Ablation — run-time laser power management (future work, Ref. [43]).

Section IV.C: laser power dominates photonic EPB; dynamic management
"could significantly improve photonic memory energy consumption".  This
bench quantifies it: the same COMET device with an always-on optical rail
(the registered ``COMET-ungated`` variant) versus the gated rail, on a
low-utilization workload where gating matters most, plus the closed-form
bound from the governor model.  A ``$REPRO_RESULT_STORE`` makes re-runs
incremental.
"""

from repro.arch.laser_management import LaserPowerManager, managed_epb_pj
from repro.sim.engine import EvalTask, evaluate_tasks

ARCH_OF = {False: "COMET-ungated", True: "COMET"}


def bench_ablation_laser_gating(benchmark, eval_store):
    def run():
        tasks = {gated: EvalTask(arch, "gcc", 5000, 1)
                 for gated, arch in ARCH_OF.items()}
        lookup = evaluate_tasks(list(tasks.values()), store=eval_store)
        return {gated: lookup[task] for gated, task in tasks.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    always_on = results[False].energy_per_bit_pj
    gated = results[True].energy_per_bit_pj
    print(f"\n  always-on: {always_on:8.1f} pJ/b | "
          f"gated: {gated:8.1f} pJ/b | saving {always_on / gated:.1f}x")

    # gcc is a low-intensity workload: gating must save materially.
    assert gated < always_on
    assert always_on / gated > 1.5
    # Bandwidth is untouched (gating is an energy knob, not a timing one).
    assert results[False].bandwidth_gbps == results[True].bandwidth_gbps


def bench_ablation_governor_bound(benchmark):
    """Closed-form governor bound vs a bursty utilization trace."""
    def run():
        manager = LaserPowerManager(full_power_w=24.0, sleep_fraction=0.1)
        trace = ([0.9] * 20 + [0.0] * 180) * 5
        average = manager.average_power_w(trace)
        always_on, managed = managed_epb_pj(24.0, 10.0, utilization=0.09)
        return average, always_on, managed

    average, always_on, managed = benchmark(run)
    assert average < 0.5 * 24.0          # the governor sleeps most epochs
    assert managed < 0.3 * always_on     # the bound agrees
