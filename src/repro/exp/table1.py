"""Table I — the optical loss/power parameters COMET's power model uses.

This experiment is a consistency check: it prints the parameter set and
verifies a handful of derived quantities the paper quotes elsewhere
(46-row SOA interval, EO-tuned ring latency, 0 dBm SOA output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.reliability import soa_row_interval
from ..config import TABLE_I, table_i_rows
from .report import print_table


@dataclass
class Table1Result:
    rows: Dict[str, str]
    soa_interval_rows: int
    eo_latency_ns: float


def run() -> Table1Result:
    return Table1Result(
        rows=table_i_rows(),
        soa_interval_rows=soa_row_interval(TABLE_I),
        eo_latency_ns=TABLE_I.eo_tuning_latency_s * 1e9,
    )


def main() -> Table1Result:
    result = run()
    print_table(["parameter", "value"], list(result.rows.items()),
                title="Table I — optical loss and power parameters")
    print(f"  derived SOA interval: every {result.soa_interval_rows} rows "
          f"(paper: 46)")
    print(f"  EO tuning latency: {result.eo_latency_ns:.0f} ns (paper: 2 ns)\n")
    return result


if __name__ == "__main__":
    main()
