"""Persistent result store: digests, round trips, invalidation."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EvalTask, evaluate_cell
from repro.sim import store as store_mod
from repro.sim.store import (
    ResultStore,
    STORE_SCHEMA_VERSION,
    device_fingerprint,
    task_digest,
    workload_fingerprint,
)

TASK = EvalTask("EPCM-MM", "gcc", 400, 7)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results")


class TestDigests:
    def test_digest_is_deterministic(self):
        assert task_digest(TASK) == task_digest(TASK)
        assert len(task_digest(TASK)) == 64

    def test_digest_covers_every_task_axis(self):
        base = task_digest(TASK)
        assert task_digest(EvalTask("2D_DDR3", "gcc", 400, 7)) != base
        assert task_digest(EvalTask("EPCM-MM", "mcf", 400, 7)) != base
        assert task_digest(EvalTask("EPCM-MM", "gcc", 500, 7)) != base
        assert task_digest(EvalTask("EPCM-MM", "gcc", 400, 8)) != base
        assert task_digest(EvalTask("EPCM-MM", "gcc", 400, 7, 16)) != base

    def test_digest_stable_across_processes(self):
        """No dict-ordering or hash-randomization dependence: a fresh
        interpreter computes the same digest."""
        script = (
            "from repro.sim.engine import EvalTask\n"
            "from repro.sim.store import task_digest\n"
            "print(task_digest(EvalTask('EPCM-MM', 'gcc', 400, 7)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONHASHSEED": "random"},
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == task_digest(TASK)

    def test_fingerprints_differ_between_models(self):
        assert device_fingerprint("EPCM-MM") != device_fingerprint("2D_DDR3")
        assert workload_fingerprint("gcc") != workload_fingerprint("mcf")


class TestResultStore:
    def test_put_get_round_trip_is_bit_identical(self, store):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        assert TASK in store
        assert len(store) == 1
        assert store.get(TASK) == stats   # dataclass eq: every field

    def test_get_unknown_is_miss(self, store):
        assert store.get(TASK) is None
        assert TASK not in store

    def test_corrupt_entry_is_a_miss(self, store):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        store.path_for(TASK).write_text("{not json")
        assert store.get(TASK) is None

    def test_missing_or_torn_sidecar_is_a_miss(self, store):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        sidecar = store.path_for(TASK).with_suffix(".lat")
        truncated = sidecar.read_bytes()[:-8]
        sidecar.write_bytes(truncated)
        assert store.get(TASK) is None
        sidecar.unlink()
        assert store.get(TASK) is None

    def test_entries_iterates_tasks_and_stats(self, store):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        listed = list(store.entries())
        assert listed == [(TASK, stats)]

    def test_entries_respect_umask(self, store):
        """Atomic staging must not leave the shareable store files at
        NamedTemporaryFile's private 0600."""
        old_umask = os.umask(0o022)
        try:
            store.put(TASK, evaluate_cell(TASK))
        finally:
            os.umask(old_umask)
        for path in (store.path_for(TASK),
                     store.path_for(TASK).with_suffix(".lat")):
            assert path.stat().st_mode & 0o777 == 0o644

    def test_reopen_preserves_contents(self, store):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        reopened = ResultStore(store.root)
        assert reopened.get(TASK) == stats

    def test_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "old-store"
        ResultStore(root)
        meta = json.loads((root / "store.json").read_text())
        meta["schema"] = STORE_SCHEMA_VERSION + 1
        (root / "store.json").write_text(json.dumps(meta))
        with pytest.raises(SimulationError):
            ResultStore(root)

    def test_put_without_latencies_reloads_with_summary(self, store):
        """Archival entries answer latency queries from the fixed-bin
        summary written at put time: mean/max exactly, percentiles by
        in-bin interpolation — no NaN columns."""
        stats = evaluate_cell(TASK)
        store.put(TASK, stats, latencies=False)
        lean = store.get(TASK)
        assert lean.latencies_ns == []
        assert lean.bandwidth_gbps == stats.bandwidth_gbps
        assert lean.avg_latency_ns == stats.avg_latency_ns
        assert lean.max_latency_ns == stats.max_latency_ns
        exact_p95 = stats.p95_latency_ns
        # Within one log-spaced bin (~26 % width) of the exact value.
        assert 0.7 * exact_p95 <= lean.p95_latency_ns <= 1.3 * exact_p95
        row = lean.as_row()
        assert row["avg_latency_ns"] == stats.avg_latency_ns

    def test_archival_reput_reclaims_the_sidecar(self, store):
        """Re-putting latencies=False over a full entry must delete the
        bulky .lat sidecar, not just stop referencing it."""
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        sidecar = store.path_for(TASK).with_suffix(".lat")
        assert sidecar.exists()
        store.put(TASK, stats, latencies=False)
        assert not sidecar.exists()
        assert store.get(TASK).latencies_ns == []


class TestInvalidation:
    @pytest.fixture(autouse=True)
    def fresh_caches(self):
        """Digests/fingerprints are memoized per process; clear around
        each test so monkeypatched fingerprints take effect and fake
        digests never leak into other tests."""
        store_mod.clear_fingerprint_cache()
        yield
        store_mod.clear_fingerprint_cache()

    def test_device_fingerprint_change_invalidates(self, store, monkeypatch):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        assert store.get(TASK) is not None
        monkeypatch.setattr(store_mod, "device_fingerprint",
                            lambda arch: "0" * 64)
        store_mod.clear_fingerprint_cache()
        assert store.get(TASK) is None
        assert TASK not in store

    def test_workload_fingerprint_change_invalidates(self, store,
                                                     monkeypatch):
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        monkeypatch.setattr(store_mod, "workload_fingerprint",
                            lambda name: "f" * 64)
        store_mod.clear_fingerprint_cache()
        assert store.get(TASK) is None

    def test_results_version_bump_invalidates(self, store, monkeypatch):
        """Simulator-behavior changes can't be fingerprinted from config;
        bumping RESULTS_VERSION must orphan every stored result."""
        stats = evaluate_cell(TASK)
        store.put(TASK, stats)
        monkeypatch.setattr(store_mod, "RESULTS_VERSION",
                            store_mod.RESULTS_VERSION + 1)
        store_mod.clear_fingerprint_cache()
        assert store.get(TASK) is None

    def test_clear_fingerprint_cache(self):
        from repro.sim import engine
        device_fingerprint("EPCM-MM")
        task_digest(TASK)
        store_mod.clear_fingerprint_cache()
        assert store_mod._FINGERPRINT_CACHE == {}
        assert store_mod._DIGEST_CACHE == {}
        # The engine caches clear too: fingerprints derive from the
        # cached device, so an in-process model edit re-fingerprints.
        assert engine._DEVICE_CACHE == {}
        assert engine._CONTROLLER_CACHE == {}
