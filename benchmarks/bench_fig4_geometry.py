"""Bench Fig. 4 — absorption/transmission contrast vs cell geometry.

Full-resolution sweep (6 widths x 7 thicknesses, as in the paper's scan),
checking the selected star and the thickness-dominates-width shape.
"""

import numpy as np

from repro.device.sweep import (
    DEFAULT_THICKNESSES_M,
    DEFAULT_WIDTHS_M,
    geometry_sweep,
    select_design_point,
)
from repro.materials import get_material


def bench_fig4_geometry_sweep(benchmark):
    gst = get_material("GST")

    def run():
        points = geometry_sweep(gst, DEFAULT_WIDTHS_M, DEFAULT_THICKNESSES_M)
        return points, select_design_point(points)

    points, selected = benchmark.pedantic(run, rounds=1, iterations=1)

    assert len(points) == len(DEFAULT_WIDTHS_M) * len(DEFAULT_THICKNESSES_M)
    # Paper star: 20 nm film (width nearly irrelevant).
    assert selected.thickness_m == 20e-9
    assert selected.transmission_contrast > 0.85
    assert selected.absorption_contrast > 0.85

    # Shape: contrast varies far more along thickness than along width.
    grid = {}
    for p in points:
        grid[(p.width_m, p.thickness_m)] = p.absorption_contrast
    widths = sorted({w for w, _ in grid})
    thicknesses = sorted({t for _, t in grid})
    across_thickness = np.ptp([grid[(widths[0], t)] for t in thicknesses])
    across_width = np.ptp([grid[(w, 20e-9)] for w in widths])
    assert across_thickness > 3 * across_width
