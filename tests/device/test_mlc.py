"""Multi-level cell: level maps, decisions, loss tolerances."""

import numpy as np
import pytest

from repro.device.mlc import (
    MultiLevelCell,
    paper_loss_tolerance_db,
    paper_loss_tolerance_fraction,
)
from repro.errors import ConfigError


class TestPaperTolerances:
    def test_fractions_match_section_iii_c(self):
        """50 % at b=1, 25 % at b=2, 6.25 % at b=4."""
        assert paper_loss_tolerance_fraction(1) == pytest.approx(0.5)
        assert paper_loss_tolerance_fraction(2) == pytest.approx(0.25)
        assert paper_loss_tolerance_fraction(4) == pytest.approx(0.0625)

    def test_db_values_match_paper(self):
        """3.01 dB at b=1, ~1.2 dB at b=2, ~0.26 dB at b=4."""
        assert paper_loss_tolerance_db(1) == pytest.approx(3.01, abs=0.01)
        assert paper_loss_tolerance_db(2) == pytest.approx(1.25, abs=0.06)
        assert paper_loss_tolerance_db(4) == pytest.approx(0.28, abs=0.03)

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigError):
            paper_loss_tolerance_fraction(0)


class TestLevelMap:
    def test_default_4bit_has_6_percent_spacing(self):
        mlc = MultiLevelCell(4)
        assert mlc.num_levels == 16
        assert mlc.level_spacing == pytest.approx(0.06)

    def test_levels_descend_from_brightest(self):
        mlc = MultiLevelCell(2)
        levels = mlc.level_transmissions()
        assert levels[0] == pytest.approx(0.95)
        assert levels[-1] == pytest.approx(0.05)
        assert np.all(np.diff(levels) < 0)

    def test_for_cell_spans_achievable_range(self, gst_cell):
        mlc = MultiLevelCell.for_cell(gst_cell, 4)
        assert mlc.max_transmission < gst_cell.transmission(0.0)
        assert mlc.min_transmission > gst_cell.transmission(1.0)
        assert mlc.level_spacing == pytest.approx(0.06, abs=0.005)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MultiLevelCell(0)
        with pytest.raises(ConfigError):
            MultiLevelCell(4, min_transmission=0.9, max_transmission=0.5)


class TestReadout:
    def test_exact_levels_decode_correctly(self):
        mlc = MultiLevelCell(4)
        for level in range(16):
            t = mlc.transmission_for_level(level)
            assert mlc.decide_level(t) == level

    def test_thresholds_are_midpoints(self):
        mlc = MultiLevelCell(2)
        thresholds = mlc.decision_thresholds()
        levels = mlc.level_transmissions()
        assert thresholds[0] == pytest.approx((levels[0] + levels[1]) / 2)

    def test_readout_error_beyond_tolerance(self):
        mlc = MultiLevelCell(4)
        # A bright level losing 10 % aliases downward at 6 % spacing.
        assert mlc.readout_error(stored_level=0, loss_fraction=0.10)
        assert not mlc.readout_error(stored_level=0, loss_fraction=0.01)

    def test_level_bounds_checked(self):
        mlc = MultiLevelCell(2)
        with pytest.raises(ConfigError):
            mlc.transmission_for_level(4)
        with pytest.raises(ConfigError):
            mlc.readout_error(0, 1.5)

    def test_tolerance_from_level_map_close_to_paper_rule(self):
        """The level-map tolerance is the same order as the 2^-b rule."""
        mlc = MultiLevelCell(4)
        assert mlc.loss_tolerance_db() == pytest.approx(
            paper_loss_tolerance_db(4), rel=0.6)


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        mlc = MultiLevelCell(4)
        values = [0, 15, 7, 3]
        word = mlc.pack_values(values)
        assert mlc.unpack_values(word, 4) == values

    def test_unpack_detects_overflow(self):
        mlc = MultiLevelCell(2)
        with pytest.raises(ConfigError):
            mlc.unpack_values(1 << 20, 2)

    def test_pack_rejects_out_of_range(self):
        mlc = MultiLevelCell(2)
        with pytest.raises(ConfigError):
            mlc.pack_values([4])
