"""OPCM cell device models (paper Section III.B, Figs. 4–6).

The device layer replaces the paper's Ansys Lumerical FDTD + HEAT flow:

* :class:`repro.device.cell.OpticalGstCell` — transmission/absorption of a
  PCM-on-waveguide cell versus crystalline fraction and wavelength.
* :class:`repro.device.heat.LayeredHeatSolver` /
  :class:`repro.device.heat.LumpedThermalModel` — transient thermal response
  of the cell stack to programming pulses.
* :class:`repro.device.kinetics.CrystallizationKinetics` — JMAK/Scheil
  crystallization and melt-quench amorphization.
* :class:`repro.device.programming.CellProgrammer` — maps target levels to
  (power, duration, energy) pulses; regenerates Fig. 6.
* :class:`repro.device.mlc.MultiLevelCell` — level maps, readout thresholds
  and the per-bit-density loss tolerances of Section III.C.
* :func:`repro.device.sweep.geometry_sweep` — the Fig. 4 design-space scan.
"""

from .geometry import CellGeometry
from .cell import OpticalGstCell, CellOpticalResponse
from .heat import (
    LumpedThermalModel,
    LayeredHeatSolver,
    ThermalLayer,
    THERMAL_LIBRARY,
    calibrate_lumped_from_layered,
)
from .kinetics import CrystallizationKinetics, MeltQuenchResult
from .programming import (
    CellProgrammer,
    ProgrammingConfig,
    ProgrammingMode,
    PulseSpec,
    LevelProgram,
)
from .mlc import MultiLevelCell, paper_loss_tolerance_db, paper_loss_tolerance_fraction
from .readout import PhotodetectorModel, ReadoutModel
from .drift import TransmissionDriftModel, TEN_YEARS_S
from .thermal_crosstalk import ThermalCrosstalkModel, comet_write_disturb_report
from .sweep import GeometrySweepPoint, geometry_sweep, select_design_point

__all__ = [
    "CellGeometry",
    "OpticalGstCell",
    "CellOpticalResponse",
    "LumpedThermalModel",
    "LayeredHeatSolver",
    "ThermalLayer",
    "THERMAL_LIBRARY",
    "calibrate_lumped_from_layered",
    "CrystallizationKinetics",
    "MeltQuenchResult",
    "CellProgrammer",
    "ProgrammingConfig",
    "ProgrammingMode",
    "PulseSpec",
    "LevelProgram",
    "MultiLevelCell",
    "paper_loss_tolerance_db",
    "paper_loss_tolerance_fraction",
    "PhotodetectorModel",
    "ReadoutModel",
    "TransmissionDriftModel",
    "TEN_YEARS_S",
    "ThermalCrosstalkModel",
    "comet_write_disturb_report",
    "GeometrySweepPoint",
    "geometry_sweep",
    "select_design_point",
]
