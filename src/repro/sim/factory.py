"""Device-model factory: one builder per Fig. 9 architecture label.

``build_device(name)`` returns the :class:`MemoryDeviceModel` the paper's
evaluation would configure in NVMain for that architecture:

* ``"COMET"`` — Table II timings, MDM-parallel buses, power stack from
  :class:`repro.arch.power.CometPowerModel`, per-line write energy from
  the calibrated cell programmer (Section III.B pulses).
* ``"COSMOS"`` — re-modeled Table II timings with the subtractive read
  flow and erase-before-write, power stack from
  :class:`repro.baselines.cosmos.CosmosPowerModel`.
* ``"EPCM-MM"`` — electrical PCM per :data:`repro.baselines.epcm.EPCM_MM`.
* ``"2D_DDR3" / "2D_DDR4" / "3D_DDR3" / "3D_DDR4"`` — DRAM row-buffer
  models with refresh.

Beyond the seven Fig. 9 labels, :data:`VARIANT_BUILDERS` names the
single-knob *ablation variants* the benchmark suite studies (bit
density, page policy, tuning mechanism, laser gating, COSMOS read
flow).  Variants are first-class architecture names — ``build_device``,
the evaluation engine, the result store and the evaluation server all
accept them — but they are deliberately **not** part of
:data:`ARCHITECTURE_NAMES`, so the default Fig. 9 grid stays the
paper's seven architectures.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..arch.comet import CometArchitecture
from ..baselines.cosmos import CosmosArchitecture
from ..baselines.dram import DRAM_CONFIGS, DramConfig, dram_config
from ..baselines.epcm import EPCM_MM, EpcmConfig
from ..config import MAIN_MEMORY_CHANNELS
from ..errors import ConfigError, TraceError
from .devices import EnergyModel, MemoryDeviceModel, RefreshSpec, RowBufferTiming
from .tracegen import Workload, get_workload

ARCHITECTURE_NAMES: Tuple[str, ...] = (
    "2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4", "EPCM-MM", "COSMOS", "COMET",
)

#: Electrical interface dynamic energy per photonic line access
#: (modulator drive + receiver + SerDes; ~1 pJ/bit class).
_PHOTONIC_INTERFACE_ENERGY_J = 1e-9


def build_comet_device(arch: Optional[CometArchitecture] = None) -> MemoryDeviceModel:
    """COMET device model from a configured architecture facade.

    The Fig. 9 part is 8 GB: eight 1 GiB channel devices (Table II — "4
    banks, 1 rank/channel, 1 device/rank"), each carrying its own MDM
    link.  The device model therefore exposes ``channels x 4`` independent
    banks and the power stack of all channels; per-busy-bank power gating
    in the controller keeps idle channels cheap.
    """
    comet = arch if arch is not None else CometArchitecture()
    timings = comet.timings
    channels = comet.channels
    power = comet.power_breakdown()
    # Per-line write energy: one pulse per cell of the written row.
    table = comet.programmer.level_table(comet.mlc)
    mean_pulse_j = sum(entry.energy_j for entry in table) / len(table)
    cells_per_line = timings.cache_line_bits // comet.bits_per_cell
    write_energy = cells_per_line * mean_pulse_j + _PHOTONIC_INTERFACE_ENERGY_J
    return MemoryDeviceModel(
        name="COMET",
        line_bytes=timings.cache_line_bits // 8,
        banks=timings.banks * channels,
        channels=channels,
        data_burst_ns=timings.burst_total_time_ns,
        interface_delay_ns=timings.electrical_interface_delay_ns,
        # The Fig. 5(f) write flow carries no inline erase: RESET pulses run
        # in background idle windows (non-volatile cells need no refresh, so
        # idle banks pre-erase), leaving the foreground write at the 170 ns
        # Table II programming envelope.
        read_occupancy_ns=timings.read_time_ns,
        write_occupancy_ns=timings.write_time_ns,
        shared_bus=False,  # each bank rides its own MDM mode
        burst_overlaps_array=True,
        # Section III.C: line interleaving + one MDM mode per bank give
        # every bank an independent scheduler, so transaction queueing
        # decomposes per bank too (the fast-path kernel's precondition).
        per_bank_queues=True,
        # fast_path_class == "per_bank": the prefix-fold kernel.
        allow_fast_path=True,
        energy=EnergyModel(
            background_power_w=0.0,
            active_power_w=power.total_w * channels,
            read_energy_j=_PHOTONIC_INTERFACE_ENERGY_J,
            write_energy_j=write_energy,
        ),
    )


def build_cosmos_device(arch: Optional[CosmosArchitecture] = None) -> MemoryDeviceModel:
    """COSMOS device model (subtractive read, erase-before-write).

    The subtractive flow reads the whole 32x32 subarray, erases the target
    row and reads again (Section II.B); the subtracted subarray contents
    stay at the controller, so subsequent reads of the same subarray hit a
    *subarray buffer*.  We express that with row-buffer timing: a miss pays
    read + erase + read (25 + 250 + 25 ns), a hit just one read, and a
    4 KB "row" spanning the subarray's lines.  Writes always pay the full
    1.6 us pulse train.
    """
    cosmos = arch if arch is not None else CosmosArchitecture()
    timings = cosmos.timings
    channels = MAIN_MEMORY_CHANNELS
    power = cosmos.power_breakdown()
    subarray_lines = cosmos.organization.rows_per_subarray
    line_bytes = timings.cache_line_bits // 8
    if cosmos.subtractive_read:
        read_timing = dict(
            row_buffer=RowBufferTiming(
                t_rcd_ns=timings.read_time_ns,
                t_rp_ns=timings.erase_time_ns,
                t_cas_ns=timings.read_time_ns,
                t_wr_ns=0.0,
                row_size_bytes=subarray_lines * line_bytes,
            ),
        )
    else:
        # Idealized non-destructive read (the ablation baseline).
        read_timing = dict(read_occupancy_ns=timings.read_time_ns)
    return MemoryDeviceModel(
        name="COSMOS",
        line_bytes=line_bytes,
        banks=timings.banks * channels,
        channels=channels,
        data_burst_ns=timings.burst_total_time_ns,
        interface_delay_ns=timings.electrical_interface_delay_ns,
        write_occupancy_ns=timings.write_time_ns,
        shared_bus=False,  # generous lossless MDM-16 links (Section IV.B)
        burst_overlaps_array=True,
        # fast_path_class == "global_queue" (also for COSMOS-direct,
        # which shares this builder): the compiled exact-twin kernel of
        # the unshared global-FIFO recurrence.
        allow_fast_path=True,
        energy=EnergyModel(
            background_power_w=0.0,
            active_power_w=power.total_w * channels,
            read_energy_j=_PHOTONIC_INTERFACE_ENERGY_J,
            write_energy_j=(cosmos.write_energy_per_line_j()
                            + _PHOTONIC_INTERFACE_ENERGY_J),
        ),
        **read_timing,
    )


def build_epcm_device(config: EpcmConfig = EPCM_MM) -> MemoryDeviceModel:
    """Electrical-PCM device model."""
    return MemoryDeviceModel(
        name=config.name,
        line_bytes=config.line_bytes,
        banks=config.banks,
        data_burst_ns=config.data_burst_ns,
        interface_delay_ns=config.interface_delay_ns,
        read_occupancy_ns=config.read_latency_ns,
        write_occupancy_ns=config.write_latency_ns,
        shared_bus=True,
        bus_turnaround_ns=6.0,
        # fast_path_class == "shared_bus": the compiled exact-twin
        # kernel of the bus-ordered recurrence (no refresh on PCM).
        allow_fast_path=True,
        energy=EnergyModel(
            background_power_w=config.background_power_w,
            read_energy_j=config.read_energy_per_line_j,
            write_energy_j=config.write_energy_per_line_j,
        ),
    )


def build_dram_device(config: DramConfig) -> MemoryDeviceModel:
    """DRAM device model with row buffer and refresh."""
    return MemoryDeviceModel(
        name=config.name,
        line_bytes=config.line_bytes,
        banks=config.banks,
        data_burst_ns=config.data_burst_ns,
        interface_delay_ns=config.interface_delay_ns,
        row_buffer=RowBufferTiming(
            t_rcd_ns=config.t_rcd_ns,
            t_rp_ns=config.t_rp_ns,
            t_cas_ns=config.t_cas_ns,
            t_wr_ns=config.t_wr_ns,
            row_size_bytes=config.row_size_bytes,
            page_policy=config.page_policy,
        ),
        refresh=RefreshSpec(
            interval_ns=config.t_refi_ns,
            duration_ns=config.t_rfc_ns,
            energy_j=config.refresh_energy_j,
        ),
        shared_bus=config.shared_bus,
        bus_turnaround_ns=6.0,
        # fast_path_class == "shared_bus" (all DRAM configs keep the
        # bus): the compiled exact-twin kernel runs the refresh+bus
        # recurrence natively.
        allow_fast_path=True,
        energy=EnergyModel(
            background_power_w=config.background_power_w,
            read_energy_j=config.dynamic_energy_per_line_j,
            write_energy_j=config.dynamic_energy_per_line_j,
        ),
    )


# -- ablation variants ------------------------------------------------------


def _variant_comet_bits(bits: int) -> MemoryDeviceModel:
    """COMET at a non-default bit density (Fig. 7's b axis, end to end)."""
    device = build_comet_device(CometArchitecture(bits_per_cell=bits))
    return dataclasses.replace(device, name=f"COMET-b{bits}")


def _variant_comet_thermal() -> MemoryDeviceModel:
    """COMET with thermal instead of electro-optic microring tuning.

    Thermal access control replaces the ns-scale EO step of every access
    with the us-scale thermal settle (Section II.B's argument, made
    simulable): both occupancies stretch by the tuning-latency gap.
    """
    from ..photonics.ring import RingTuningModel, TuningMechanism

    eo = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
    thermal = RingTuningModel.from_parameters(TuningMechanism.THERMAL)
    extra_ns = (thermal.latency_s - eo.latency_s) * 1e9
    base = build_comet_device()
    return dataclasses.replace(
        base,
        name="COMET-thermal",
        read_occupancy_ns=base.read_occupancy_ns + extra_ns,
        write_occupancy_ns=base.write_occupancy_ns + extra_ns,
    )


def _variant_comet_ungated() -> MemoryDeviceModel:
    """COMET with an always-on optical rail (no laser power gating)."""
    base = build_comet_device()
    return dataclasses.replace(
        base, name="COMET-ungated",
        energy=dataclasses.replace(base.energy, gate_active_power=False))


def _variant_cosmos_direct() -> MemoryDeviceModel:
    """Idealized COSMOS with a direct, non-destructive read flow."""
    device = build_cosmos_device(CosmosArchitecture(subtractive_read=False))
    return dataclasses.replace(device, name="COSMOS-direct")


def _variant_ddr4_closed() -> MemoryDeviceModel:
    """3D_DDR4 with a closed-page controller (fairness ablation)."""
    device = build_dram_device(dataclasses.replace(
        dram_config("3D_DDR4"), page_policy="closed"))
    return dataclasses.replace(device, name="3D_DDR4-closed")


#: Named ablation variants: single-knob departures from the Fig. 9
#: devices, addressable everywhere an architecture name is (engine,
#: store, sweeps, server) so ablation results are content-addressed and
#: cached like any other grid cell.
VARIANT_BUILDERS: Dict[str, Callable[[], MemoryDeviceModel]] = {
    "COMET-b1": lambda: _variant_comet_bits(1),
    "COMET-b2": lambda: _variant_comet_bits(2),
    "COMET-thermal": _variant_comet_thermal,
    "COMET-ungated": _variant_comet_ungated,
    "COSMOS-direct": _variant_cosmos_direct,
    "3D_DDR4-closed": _variant_ddr4_closed,
}

VARIANT_NAMES: Tuple[str, ...] = tuple(sorted(VARIANT_BUILDERS))


def known_architectures() -> Tuple[str, ...]:
    """Every name :func:`build_device` accepts: the Fig. 9 seven plus
    the ablation variants."""
    return ARCHITECTURE_NAMES + VARIANT_NAMES


def build_device(name: str) -> MemoryDeviceModel:
    """Build the device model for any Fig. 9 architecture label or
    registered ablation variant."""
    if name == "COMET":
        return build_comet_device()
    if name == "COSMOS":
        return build_cosmos_device()
    if name == "EPCM-MM":
        return build_epcm_device()
    if name in DRAM_CONFIGS:
        return build_dram_device(DRAM_CONFIGS[name])
    if name in VARIANT_BUILDERS:
        return VARIANT_BUILDERS[name]()
    raise ConfigError(
        f"unknown architecture {name!r}; known: {known_architectures()}"
    )


def build_workload(name: str) -> Workload:
    """Look up any named workload preset (SPEC, ``mix_*``, phased).

    The workload-side twin of :func:`build_device`: together they name
    every cell of the evaluation grid, and both raise ``ConfigError``
    on unknown names.
    """
    try:
        return get_workload(name)
    except TraceError as error:
        raise ConfigError(str(error)) from None
