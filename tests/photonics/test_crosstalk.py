"""Crossbar crosstalk model: the Section II.B arithmetic and array damage."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.photonics.crosstalk import CrossbarCrosstalkModel


class TestSectionIIBNumbers:
    def test_coupled_energy_matches_paper(self):
        """750 pJ at -18 dB -> ~11.9 pJ (paper rounds to 12.6 pJ)."""
        model = CrossbarCrosstalkModel()
        assert model.coupled_energy_j == pytest.approx(11.9e-12, rel=0.02)

    def test_fraction_shift_near_8_percent(self):
        model = CrossbarCrosstalkModel()
        assert model.fraction_shift_per_write == pytest.approx(0.08, abs=0.01)

    def test_shift_scales_with_write_energy(self):
        weak = CrossbarCrosstalkModel(write_energy_j=135e-12)
        strong = CrossbarCrosstalkModel(write_energy_j=750e-12)
        assert strong.fraction_shift_per_write \
            > 5 * weak.fraction_shift_per_write

    def test_validation(self):
        with pytest.raises(ConfigError):
            CrossbarCrosstalkModel(crosstalk_db=1.0)
        with pytest.raises(ConfigError):
            CrossbarCrosstalkModel(reference_shift=1.5)


class TestArrayDisturbance:
    def test_adjacent_rows_drift_up(self):
        model = CrossbarCrosstalkModel()
        fractions = np.zeros((8, 4))
        events = model.disturb_row_write(fractions, 4, np.arange(4))
        assert np.all(fractions[3] > 0.0)
        assert np.all(fractions[5] > 0.0)
        assert np.all(fractions[4] == 0.0)      # aggressor row untouched
        assert len(events) == 8

    def test_edge_row_has_one_victim_side(self):
        model = CrossbarCrosstalkModel()
        fractions = np.zeros((4, 2))
        events = model.disturb_row_write(fractions, 0, np.arange(2))
        assert len(events) == 2
        assert np.all(fractions[1] > 0.0)

    def test_saturation_at_one(self):
        model = CrossbarCrosstalkModel()
        fractions = np.full((3, 2), 0.99)
        model.disturb_row_write(fractions, 1, np.arange(2))
        assert np.all(fractions <= 1.0)

    def test_row_bounds_checked(self):
        model = CrossbarCrosstalkModel()
        with pytest.raises(ConfigError):
            model.disturb_row_write(np.zeros((4, 4)), 9, np.arange(4))

    def test_corrupt_after_writes_is_pure(self):
        model = CrossbarCrosstalkModel()
        before = np.random.RandomState(0).random_sample((16, 16))
        before_copy = before.copy()
        after = model.corrupt_after_writes(before, [4, 8])
        assert np.array_equal(before, before_copy)   # input untouched
        assert not np.array_equal(after, before)


class TestLevelCorruption:
    def test_four_bit_cells_corrupt(self):
        """At 16 levels (1/15 spacing), one 7.5 % shift flips a level."""
        model = CrossbarCrosstalkModel()
        spacing = 1.0 / 15
        before = np.zeros((8, 8))
        after = model.corrupt_after_writes(before, [3])
        corrupted, fraction = model.levels_corrupted(before, after, spacing)
        assert corrupted == 16          # two victim rows of 8 cells
        assert fraction == pytest.approx(16 / 64)

    def test_single_bit_cells_survive(self):
        """At 2 levels the same shift is far below the decision threshold."""
        model = CrossbarCrosstalkModel()
        spacing = 1.0
        before = np.zeros((8, 8))
        after = model.corrupt_after_writes(before, [3])
        corrupted, _ = model.levels_corrupted(before, after, spacing)
        assert corrupted == 0

    def test_spacing_must_be_positive(self):
        model = CrossbarCrosstalkModel()
        with pytest.raises(ConfigError):
            model.levels_corrupted(np.zeros((2, 2)), np.zeros((2, 2)), 0.0)
