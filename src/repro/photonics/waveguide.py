"""Strip-waveguide model via the effective index method (EIM).

The COMET cell is GST deposited on a 480 nm x 220 nm SOI strip waveguide
(Fig. 5(a)).  We model the strip with the classic two-step effective index
method:

1. **Vertical step** — solve the multilayer slab through the thickness
   (BOX / Si core / optional PCM film / cladding) for the region under the
   ridge, giving a vertical effective index and the vertical confinement in
   each layer (in particular in the PCM film).
2. **Horizontal step** — treat the ridge as a symmetric three-layer slab of
   width ``w`` whose core index is the vertical effective index and whose
   claddings are the lateral oxide, giving the final mode index and the
   lateral core confinement.

The PCM confinement of the full 2-D mode is the product of the vertical
film confinement and the lateral core confinement.  This reproduces, at
first order, what the paper extracts from FDTD: modal absorption versus
film thickness (strong) and waveguide width (weak), and the effective-index
mismatch between loaded and unloaded sections that partially drives the
transmission contrast (Section III.B).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

from ..errors import SolverError
from .indices import SILICA_INDEX, SILICON_INDEX
from .slab import Layer, MultilayerSlabSolver


@dataclass(frozen=True)
class WaveguideMode:
    """Solved fundamental mode of a (possibly PCM-loaded) strip waveguide."""

    effective_index: float
    modal_extinction: float
    vertical_confinement_core: float
    vertical_confinement_pcm: float
    lateral_confinement: float

    @property
    def pcm_confinement(self) -> float:
        """2-D confinement factor of the PCM film."""
        return self.vertical_confinement_pcm * self.lateral_confinement

    @property
    def complex_effective_index(self) -> complex:
        return complex(self.effective_index, self.modal_extinction)


@dataclass(frozen=True)
class StripWaveguide:
    """An SOI (or SiN) strip waveguide with optional PCM film on top.

    Parameters
    ----------
    width_m / core_thickness_m:
        Ridge cross-section (the paper uses 480 nm x 220 nm).
    core_index:
        Platform core index; :data:`SILICON_INDEX` by default, pass
        :data:`SILICON_NITRIDE_INDEX` for the SiN comparison of Sec. III.B.
    pcm_index:
        Complex index of the PCM film (``None`` for a bare waveguide).
    pcm_thickness_m:
        PCM film thickness (the paper's cell uses 20 nm).
    top_cladding_index:
        Upper cladding (oxide by default; air for uncapped cells).
    """

    width_m: float = 480e-9
    core_thickness_m: float = 220e-9
    core_index: float = SILICON_INDEX
    pcm_index: Optional[complex] = None
    pcm_thickness_m: float = 0.0
    substrate_index: float = SILICA_INDEX
    top_cladding_index: float = SILICA_INDEX
    side_cladding_index: float = SILICA_INDEX

    def __post_init__(self) -> None:
        if self.width_m <= 0.0 or self.core_thickness_m <= 0.0:
            raise SolverError("waveguide dimensions must be positive")
        if self.pcm_index is not None and self.pcm_thickness_m <= 0.0:
            raise SolverError("a PCM film needs a positive thickness")

    # ------------------------------------------------------------------

    def _vertical_layers(self) -> Tuple[Layer, ...]:
        layers = [Layer("core", complex(self.core_index), self.core_thickness_m)]
        if self.pcm_index is not None:
            layers.append(Layer("pcm", complex(self.pcm_index), self.pcm_thickness_m))
        return tuple(layers)

    def solve(self, wavelength_m: float) -> WaveguideMode:
        """Solve the fundamental quasi-TE mode at the given wavelength."""
        key = (
            round(self.width_m, 12), round(self.core_thickness_m, 12),
            round(self.core_index, 6),
            None if self.pcm_index is None else (
                round(self.pcm_index.real, 6), round(self.pcm_index.imag, 6)),
            round(self.pcm_thickness_m, 12),
            round(self.substrate_index, 6), round(self.top_cladding_index, 6),
            round(self.side_cladding_index, 6), round(wavelength_m, 12),
        )
        return _solve_cached(key)


@lru_cache(maxsize=4096)
def _solve_cached(key) -> WaveguideMode:
    (width, core_t, core_n, pcm, pcm_t, sub_n, top_n, side_n, wl) = key
    pcm_index = None if pcm is None else complex(pcm[0], pcm[1])

    # --- vertical slab under the ridge ---------------------------------
    layers = [Layer("core", complex(core_n), core_t)]
    if pcm_index is not None:
        layers.append(Layer("pcm", pcm_index, pcm_t))
    vertical = MultilayerSlabSolver(
        layers, bottom_cladding_index=complex(sub_n),
        top_cladding_index=complex(top_n), wavelength_m=wl,
    )
    v_mode = vertical.fundamental()

    # --- horizontal slab across the ridge ------------------------------
    # The lateral "core" is the vertical effective index; lateral claddings
    # are the side oxide.  The vertical modal extinction rides along as the
    # lateral core's imaginary part so that the lateral confinement scales
    # the loss, matching the 2-D overlap-factor picture.
    lateral_core = complex(v_mode.effective_index, v_mode.modal_extinction)
    if lateral_core.real <= side_n:
        raise SolverError(
            "vertical effective index below side cladding: no lateral guiding"
        )
    horizontal = MultilayerSlabSolver(
        [Layer("lateral_core", lateral_core, width)],
        bottom_cladding_index=complex(side_n),
        top_cladding_index=complex(side_n),
        wavelength_m=wl,
    )
    h_mode = horizontal.fundamental()
    lateral_conf = h_mode.confinement["lateral_core"]

    return WaveguideMode(
        effective_index=h_mode.effective_index,
        modal_extinction=v_mode.modal_extinction * lateral_conf,
        vertical_confinement_core=v_mode.confinement["core"],
        vertical_confinement_pcm=v_mode.confinement.get("pcm", 0.0),
        lateral_confinement=lateral_conf,
    )


@dataclass(frozen=True)
class PcmLoadedWaveguide:
    """Convenience pair of (bare, loaded) strip waveguides for one cell.

    Exposes the two quantities the cell transmission model needs: the
    complex effective index of the loaded section at a given PCM complex
    index, and the bare-section effective index for the facet mismatch.
    """

    width_m: float = 480e-9
    core_thickness_m: float = 220e-9
    pcm_thickness_m: float = 20e-9
    core_index: float = SILICON_INDEX
    substrate_index: float = SILICA_INDEX
    top_cladding_index: float = SILICA_INDEX

    def bare_mode(self, wavelength_m: float) -> WaveguideMode:
        """Fundamental mode of the unloaded strip."""
        bare = StripWaveguide(
            width_m=self.width_m,
            core_thickness_m=self.core_thickness_m,
            core_index=self.core_index,
            substrate_index=self.substrate_index,
            top_cladding_index=self.top_cladding_index,
        )
        return bare.solve(wavelength_m)

    def loaded_mode(self, wavelength_m: float, pcm_index: complex) -> WaveguideMode:
        """Fundamental mode with the PCM film at the given complex index."""
        loaded = StripWaveguide(
            width_m=self.width_m,
            core_thickness_m=self.core_thickness_m,
            core_index=self.core_index,
            pcm_index=pcm_index,
            pcm_thickness_m=self.pcm_thickness_m,
            substrate_index=self.substrate_index,
            top_cladding_index=self.top_cladding_index,
        )
        return loaded.solve(wavelength_m)
