#!/usr/bin/env python
"""Functional COMET memory demo: store real data through the optical path.

Writes a text through the full Fig. 5(f) flow (address mapping, 4-bit MLC
packing, in-array losses, LUT gain compensation, level decisions), reads
it back bit-exactly — then shows what breaks when the loss-aware design
is sabotaged (the Section III.E story, executed).

Usage: python examples/functional_memory_demo.py
"""

from repro.arch.functional import FunctionalCometMemory

MESSAGE = (b"COMET stores 4 bits per GST cell as 16 optical transmission "
           b"levels; the gain LUT makes every subarray row readable.")


def happy_path() -> None:
    memory = FunctionalCometMemory()
    lines = memory.write_blob(0, MESSAGE)
    recovered = memory.read_blob(0, len(MESSAGE))
    print(f"Stored {len(MESSAGE)} bytes across {lines} lines "
          f"({memory.org.bits_per_cell} bits/cell).")
    print(f"Recovered: {recovered.decode()!r}")
    print(f"Cell decision errors: {memory.stats.level_errors} "
          f"of {memory.stats.cells_read} cells read.\n")
    assert recovered == MESSAGE


def sabotage_gain_lut() -> None:
    memory = FunctionalCometMemory(gain_lut_enabled=False)
    # Write to subarray row 40: the readout crosses 40 EO-tuned rings
    # (13.2 dB) before reaching its SOA stage.
    deep_row_address = 40 * memory.org.banks * memory.line_bytes
    memory.write_line(deep_row_address, MESSAGE[:128].ljust(128, b"."))
    recovered = memory.read_line(deep_row_address)
    print("Gain LUT disabled, reading subarray row 40:")
    print(f"  recovered head: {recovered[:40]!r}")
    print(f"  corrupted cells: {memory.stats.level_errors} "
          f"of {memory.stats.cells_read} "
          f"({memory.stats.cell_error_rate:.0%})\n")


def sabotage_extra_loss() -> None:
    memory = FunctionalCometMemory(extra_loss_db=1.0)
    memory.write_line(0, bytes(128))    # all cells at the brightest level
    memory.read_line(0)
    print("1.0 dB uncompensated loss (b=4 tolerates only ~0.26 dB):")
    print(f"  corrupted cells: {memory.stats.level_errors} of "
          f"{memory.stats.cells_read}")


if __name__ == "__main__":
    happy_path()
    sabotage_gain_lut()
    sabotage_extra_loss()
