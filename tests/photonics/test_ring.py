"""Microring resonator model: spectra, tuning, Table I consistency."""

import numpy as np
import pytest

from repro.config import TABLE_I
from repro.errors import ConfigError
from repro.photonics.ring import (
    MicroringResonator,
    RingTuningModel,
    TuningMechanism,
)


class TestSpectrum:
    def test_drop_peaks_on_resonance(self):
        ring = MicroringResonator()
        on = ring.drop_transmission(ring.resonance_wavelength_m)
        off = ring.drop_transmission(ring.resonance_wavelength_m + 2e-9)
        assert on > off

    def test_through_dips_on_resonance(self):
        ring = MicroringResonator()
        on = ring.through_transmission(ring.resonance_wavelength_m)
        off = ring.through_transmission(
            ring.resonance_wavelength_m + ring.free_spectral_range_m / 2)
        assert on < off

    def test_energy_conservation_bound(self):
        """T_through + T_drop <= 1 everywhere (passive device)."""
        ring = MicroringResonator()
        wl = np.linspace(1549e-9, 1551e-9, 101)
        total = ring.through_transmission(wl) + ring.drop_transmission(wl)
        assert np.all(total <= 1.0 + 1e-9)

    def test_fsr_matches_6um_ring(self):
        """FSR = lambda^2/(n_g L): ~15 nm for a 6 um SOI ring."""
        ring = MicroringResonator()
        assert ring.free_spectral_range_m == pytest.approx(15.2e-9, rel=0.05)

    def test_quality_factor_reasonable(self):
        ring = MicroringResonator()
        assert 500 < ring.quality_factor() < 50_000

    def test_extinction_ratio_positive(self):
        ring = MicroringResonator()
        assert ring.extinction_ratio_db() > 10.0

    def test_shift_moves_resonance(self):
        ring = MicroringResonator()
        shifted = ring.drop_transmission(ring.resonance_wavelength_m, shift_nm=1.0)
        unshifted = ring.drop_transmission(ring.resonance_wavelength_m)
        assert shifted < unshifted

    def test_validation(self):
        with pytest.raises(ConfigError):
            MicroringResonator(radius_m=0.0)
        with pytest.raises(ConfigError):
            MicroringResonator(self_coupling_t1=1.5)


class TestTuningModels:
    def test_eo_model_from_table_i(self):
        model = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
        assert model.latency_s == pytest.approx(2e-9)
        assert model.through_loss_db == pytest.approx(0.33)
        assert model.drop_loss_db == pytest.approx(1.6)
        assert model.power_w_per_nm == pytest.approx(4e-6)

    def test_thermal_model_slower_but_lower_loss(self):
        eo = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
        thermal = RingTuningModel.from_parameters(TuningMechanism.THERMAL)
        assert thermal.latency_s > 100 * eo.latency_s
        assert thermal.through_loss_db < eo.through_loss_db

    def test_tuning_power_scales_with_shift(self):
        model = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
        assert model.tuning_power_w(2.0) == pytest.approx(8e-6)
        with pytest.raises(ConfigError):
            model.tuning_power_w(-1.0)

    def test_section_ii_trade_off(self):
        """The paper's argument: EO tuning buys ~1000x latency for ~0.3 dB."""
        eo = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
        thermal = RingTuningModel.from_parameters(TuningMechanism.THERMAL)
        speedup = thermal.latency_s / eo.latency_s
        loss_penalty = eo.through_loss_db - thermal.through_loss_db
        assert speedup >= 1000
        assert loss_penalty == pytest.approx(0.31, abs=0.02)

    def test_eo_tuning_power_from_table_i_derived(self):
        assert TABLE_I.eo_tuning_power_w == pytest.approx(
            TABLE_I.eo_tuning_power_w_per_nm * TABLE_I.mr_tuning_range_nm)
