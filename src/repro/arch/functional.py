"""Functional (data-storing) COMET memory: the Fig. 5(f) flow, end to end.

The performance simulator (:mod:`repro.sim`) answers "how fast/how much
energy"; this model answers "does the data survive".  It executes the
paper's read and write operation flows against real stored state:

* **write** (Fig. 5(f), bottom): map the physical address (Eq. (1)–(6)),
  pack the line's bytes into per-cell levels, convert levels to target
  transmissions, program the subarray row (optionally with programming
  noise on the achieved transmission).
* **read** (Fig. 5(f), top): apply the row-position-dependent EO-tuned MR
  through losses the readout suffers inside the subarray, amplify with the
  gain-LUT entry for the row (the Section III.E loss-aware compensation),
  add optional detector noise, run nearest-level decisions, and repack the
  bytes.

Failure-injection knobs make the architecture's reliability story
testable: disabling the gain LUT makes far-from-SOA rows decode wrongly
at b=4 exactly as Section IV.A predicts; adding uncompensated loss beyond
the bit-density tolerance breaks readout; transmission drift below half a
level spacing is absorbed by the nearest-level decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import OpticalParameters, TABLE_I
from ..device.mlc import MultiLevelCell
from ..errors import AddressError, ConfigError
from ..units import db_to_linear
from .address import AddressMapper, CellLocation
from .lut import GainLUT
from .organization import MemoryOrganization


@dataclass
class FunctionalStats:
    """Counters of the functional memory."""

    writes: int = 0
    reads: int = 0
    cells_read: int = 0
    level_errors: int = 0

    @property
    def cell_error_rate(self) -> float:
        return self.level_errors / self.cells_read if self.cells_read else 0.0


class FunctionalCometMemory:
    """A behavioural COMET channel that stores and retrieves real data."""

    def __init__(
        self,
        organization: Optional[MemoryOrganization] = None,
        mlc: Optional[MultiLevelCell] = None,
        params: OpticalParameters = TABLE_I,
        gain_lut_enabled: bool = True,
        extra_loss_db: float = 0.0,
        transmission_noise_sigma: float = 0.0,
        seed: int = 12345,
    ) -> None:
        self.org = organization if organization is not None \
            else MemoryOrganization.comet(4)
        self.mlc = mlc if mlc is not None \
            else MultiLevelCell(self.org.bits_per_cell)
        if self.mlc.bits_per_cell != self.org.bits_per_cell:
            raise ConfigError("MLC bit density must match the organization")
        self.params = params
        self.mapper = AddressMapper(self.org, channels=1)
        self.lut = GainLUT(
            rows_per_subarray=self.org.rows_per_subarray,
            bits_per_cell=self.org.bits_per_cell,
            params=params,
        )
        self.gain_lut_enabled = gain_lut_enabled
        if extra_loss_db < 0.0:
            raise ConfigError("extra loss must be non-negative")
        self.extra_loss_db = extra_loss_db
        if transmission_noise_sigma < 0.0:
            raise ConfigError("noise sigma must be non-negative")
        self.noise_sigma = transmission_noise_sigma
        self._rng = np.random.RandomState(seed)
        #: (bank, subarray, row) -> stored per-cell transmissions
        self._rows: Dict[Tuple[int, int, int], np.ndarray] = {}
        self.stats = FunctionalStats()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------

    @property
    def line_bytes(self) -> int:
        return self.mapper.line_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.mapper.capacity_bytes

    def _check_line_address(self, address: int) -> CellLocation:
        if address % self.line_bytes:
            raise AddressError(
                f"address {address:#x} is not {self.line_bytes}-byte aligned")
        return self.mapper.map_address(address)

    def _bytes_to_levels(self, data: bytes) -> np.ndarray:
        value = int.from_bytes(data, "big")
        levels = self.mlc.unpack_values(value, self.org.cols_per_subarray)
        return np.array(levels, dtype=int)

    def _levels_to_bytes(self, levels: np.ndarray) -> bytes:
        word = self.mlc.pack_values([int(v) for v in levels])
        return word.to_bytes(self.line_bytes, "big")

    # ------------------------------------------------------------------
    # Fig. 5(f) operations
    # ------------------------------------------------------------------

    def write_line(self, address: int, data: bytes) -> CellLocation:
        """Program one line: the Fig. 5(f) write flow."""
        if len(data) != self.line_bytes:
            raise ConfigError(
                f"line must be {self.line_bytes} bytes, got {len(data)}")
        location = self._check_line_address(address)
        levels = self._bytes_to_levels(data)
        transmissions = np.array([
            self.mlc.transmission_for_level(int(level)) for level in levels
        ])
        if self.noise_sigma > 0.0:
            transmissions = np.clip(
                transmissions + self._rng.normal(
                    0.0, self.noise_sigma, transmissions.shape),
                0.0, 1.0,
            )
        key = (location.bank, location.subarray_id, location.subarray_row)
        self._rows[key] = transmissions
        self.stats.writes += 1
        return location

    def read_line(self, address: int) -> bytes:
        """Read one line back: the Fig. 5(f) read flow with loss + gain."""
        location = self._check_line_address(address)
        key = (location.bank, location.subarray_id, location.subarray_row)
        try:
            stored = self._rows[key]
        except KeyError:
            raise AddressError(
                f"address {address:#x} has never been written") from None

        row = location.subarray_row
        # In-array losses between the row and its downstream SOA stage.
        loss_db = ((row % self.lut.soa_interval_rows)
                   * self.params.eo_mr_through_loss_db
                   + self.extra_loss_db)
        received = stored * db_to_linear(-loss_db)
        # Loss-aware gain tuning (Section III.E).
        if self.gain_lut_enabled:
            received = received * db_to_linear(self.lut.gain_db_for_row(row))
        received = np.clip(received, 0.0, 1.0)

        decided = np.array([self.mlc.decide_level(t) for t in received])
        true_levels = np.array([self.mlc.decide_level(t) for t in stored])
        self.stats.reads += 1
        self.stats.cells_read += len(decided)
        self.stats.level_errors += int(np.count_nonzero(decided != true_levels))
        return self._levels_to_bytes(decided)

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------

    def write_blob(self, start_address: int, blob: bytes) -> int:
        """Write an arbitrary-length blob as consecutive lines (padded)."""
        if start_address % self.line_bytes:
            raise AddressError("blob must start line-aligned")
        padded = blob + b"\x00" * (-len(blob) % self.line_bytes)
        lines = len(padded) // self.line_bytes
        for index in range(lines):
            chunk = padded[index * self.line_bytes:(index + 1) * self.line_bytes]
            self.write_line(start_address + index * self.line_bytes, chunk)
        return lines

    def read_blob(self, start_address: int, length: int) -> bytes:
        """Read ``length`` bytes written by :meth:`write_blob`."""
        lines = -(-length // self.line_bytes)
        out = b"".join(
            self.read_line(start_address + index * self.line_bytes)
            for index in range(lines)
        )
        return out[:length]
