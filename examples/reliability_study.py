#!/usr/bin/env python
"""Reliability study: disturb, drift, endurance and WDM feasibility.

Answers the questions an adopter asks after reading the paper:

* can a write pulse thermally disturb the neighbouring cell?  (no — and
  here is the margin),
* how long does a stored level survive transmission drift?  (10+ years at
  4 bits/cell; 5 bits/cell is the risky configuration),
* when does the array wear out, and what does wear leveling cost?
* do 256 wavelengths per bank actually fit a 6 um ring's FSR?

Usage: python examples/reliability_study.py
"""

from repro.arch.endurance import EnduranceModel, StartGapWearLeveler
from repro.device.drift import TEN_YEARS_S, TransmissionDriftModel
from repro.device.mlc import MultiLevelCell
from repro.device.thermal_crosstalk import comet_write_disturb_report
from repro.errors import ConfigError
from repro.photonics.wdm import comet_wavelength_plan, ring_addressability


def disturb_study() -> None:
    report = comet_write_disturb_report()
    print("1. Thermal write disturb (5 mW / 56 ns RESET pulse)")
    print(f"   diffusion length: {report['diffusion_length_m'] * 1e6:.2f} um")
    print(f"   neighbour rise at COMET's {report['comet_pitch_m'] * 1e6:.0f} um"
          f" pitch: {report['comet_neighbor_rise_k']:.2e} K")
    print(f"   steady-state rise at COSMOS's "
          f"{report['cosmos_pitch_m'] * 1e6:.0f} um crossbar pitch: "
          f"{report['cosmos_steady_rise_k']:.0f} K")
    print(f"   -> COMET disturb-free: {report['comet_disturb_free']}\n")


def drift_study() -> None:
    model = TransmissionDriftModel()
    print("2. Transmission drift retention (half-spacing criterion)")
    for bits in (2, 4, 5):
        retention = model.level_retention_s(MultiLevelCell(bits))
        years = retention / (365.25 * 24 * 3600)
        verdict = "OK" if retention >= TEN_YEARS_S else "FAILS 10-year spec"
        shown = f"{years:.1e} years" if years < 1e12 else ">1e12 years"
        print(f"   b={bits}: {shown}  [{verdict}]")
    print("   -> the paper's 4-bit choice holds a drift margin that "
          "5 bits would not\n")


def endurance_study() -> None:
    model = EnduranceModel()
    print("3. Endurance (1e9 SET/RESET cycles per cell)")
    for label, bw in (("per-channel share of a 3 GB/s write stream", 3 / 8),
                      ("worst case: whole stream on one channel", 3.0)):
        print(f"   {label}: {model.lifetime_years(bw):.0f} years")
    leveler = StartGapWearLeveler(rows=512, gap_move_interval=100)
    for _ in range(10_000):
        leveler.record_write()
    print(f"   Start-Gap: efficiency {leveler.leveling_efficiency():.2f} "
          f"at {leveler.write_overhead():.1%} write overhead\n")


def wdm_study() -> None:
    print("4. WDM feasibility (6 um ring, C-band)")
    for wavelengths in (256, 512, 1024):
        try:
            grid = comet_wavelength_plan(wavelengths)
            report = ring_addressability(grid)
            print(f"   {wavelengths:5d} wavelengths: OK at "
                  f"{grid.channel_spacing_m * 1e9:.2f} nm spacing "
                  f"(comb spans {grid.comb_span_m * 1e9:.1f} nm, "
                  f"FSR {report.ring_fsr_m * 1e9:.1f} nm)")
        except ConfigError as error:
            print(f"   {wavelengths:5d} wavelengths: infeasible — {error}")
    print("   -> another reason COMET-4b (256 wavelengths) beats "
          "COMET-1b (1024)")


if __name__ == "__main__":
    disturb_study()
    drift_study()
    endurance_study()
    wdm_study()
