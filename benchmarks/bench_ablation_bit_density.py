"""Ablation — bit density end to end (Fig. 7's choice, carried to Fig. 9).

The paper picks b=4 from the power stacks alone (capacity and line
bandwidth are equal by construction).  This bench carries the three
densities through the full simulator: equal bandwidth, EPB ordered by the
power stacks — confirming the power study is the whole story.

The densities are the registered ``COMET-b1`` / ``COMET-b2`` variant
architectures (b=4 is COMET itself), so the cells are store-addressable
and a ``$REPRO_RESULT_STORE`` makes re-runs incremental.
"""

from repro.sim.engine import EvalTask, evaluate_tasks

VARIANT_OF = {1: "COMET-b1", 2: "COMET-b2", 4: "COMET"}


def bench_ablation_bit_density_end_to_end(benchmark, eval_store):
    def run():
        tasks = {bits: EvalTask(arch, "milc", 4000, 1)
                 for bits, arch in VARIANT_OF.items()}
        lookup = evaluate_tasks(list(tasks.values()), store=eval_store)
        return {bits: lookup[task] for bits, task in tasks.items()}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for bits, stats in sorted(results.items()):
        print(f"  COMET-{bits}b: {stats.bandwidth_gbps:7.2f} GB/s, "
              f"{stats.energy_per_bit_pj:7.1f} pJ/b")

    # Same line size and timings -> same bandwidth across densities.
    bw = [results[b].bandwidth_gbps for b in (1, 2, 4)]
    assert max(bw) / min(bw) < 1.05
    # EPB follows the Fig. 7 power ordering: b=4 cheapest.
    assert results[4].energy_per_bit_pj < results[2].energy_per_bit_pj \
        < results[1].energy_per_bit_pj
