"""Central configuration: every paper parameter in one place.

This module is the single source of truth for the numeric parameters the
paper publishes:

* **Table I** — optical loss and power parameters used for COMET power
  modeling (:class:`OpticalParameters`).
* **Table II** — architectural details of the two photonic memory systems
  (:class:`PhotonicMemoryTimings` instances ``COMET_TIMINGS`` and
  ``COSMOS_TIMINGS``).
* **Section III/IV organization constants** — bank counts, subarray
  geometry for each bit density (:func:`comet_organization`), the COSMOS
  organization of Section IV.B (:func:`cosmos_organization` lives in
  :mod:`repro.baselines.cosmos` but consumes constants from here).

No other module may hard-code one of these numbers; they all import from
here so that a design sweep (e.g. the Fig. 7 bit-density study) can swap a
single dataclass.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict

from .errors import ConfigError

# ---------------------------------------------------------------------------
# Table I — optical loss and power parameters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpticalParameters:
    """Optical loss/power parameters of Table I (plus laser assumptions).

    All losses are positive dB quantities; powers are in watts.
    """

    coupling_loss_db: float = 1.0              # fiber-to-chip coupler [33]
    mr_drop_loss_db: float = 0.5               # passive MR drop [34]
    mr_through_loss_db: float = 0.02           # passive MR through [35]
    eo_mr_drop_loss_db: float = 1.6            # EO-tuned MR drop [36]
    eo_mr_through_loss_db: float = 0.33        # EO-tuned MR through [36]
    propagation_loss_db_per_cm: float = 0.1    # waveguide propagation [37]
    bending_loss_db_per_90deg: float = 0.01    # bend loss [38]
    splitter_loss_db: float = 0.5              # 1x2 Y-junction excess loss
    pcm_switch_loss_db: float = 0.2            # amorphous GST switch [39]
    soa_gain_db: float = 20.0                  # booster SOA gain (Table I)
    intra_soa_gain_db: float = 15.2            # intra-subarray SOA gain [29]
    laser_wall_plug_efficiency: float = 0.20   # 20 %
    eo_tuning_power_w_per_nm: float = 4e-6     # P_EO = 4 uW/nm [25]
    eo_tuning_latency_s: float = 2e-9          # EO MR tuning latency [36]
    thermal_tuning_latency_s: float = 4e-6     # thermal MR tuning latency
    thermal_tuning_power_w_per_nm: float = 2.4e-3  # thermo-optic heater
    max_power_at_gst_cell_w: float = 1e-3      # Table I: 1 mW
    write_power_at_gst_cell_w: float = 5e-3    # Sec III.C: 5 mW (amorphous
                                               # reset programming mode)
    intra_soa_power_w: float = 1.4e-3          # 1.4 mW per active SOA [29]
    intra_soa_output_power_w: float = 1e-3     # 0 dBm output [29]
    pcm_switch_time_s: float = 100e-9          # GST switch transition [39]
    detector_sensitivity_dbm: float = -20.0    # receiver sensitivity floor
    mr_tuning_range_nm: float = 1.0            # resonance shift for on/off

    def __post_init__(self) -> None:
        for name in (
            "coupling_loss_db",
            "mr_drop_loss_db",
            "mr_through_loss_db",
            "eo_mr_drop_loss_db",
            "eo_mr_through_loss_db",
            "propagation_loss_db_per_cm",
            "bending_loss_db_per_90deg",
            "pcm_switch_loss_db",
        ):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")
        if not 0.0 < self.laser_wall_plug_efficiency <= 1.0:
            raise ConfigError("laser wall-plug efficiency must be in (0, 1]")

    @property
    def eo_tuning_power_w(self) -> float:
        """Electrical power to hold one MR shifted by the tuning range."""
        return self.eo_tuning_power_w_per_nm * self.mr_tuning_range_nm


#: Module-level default mirroring Table I exactly.
TABLE_I = OpticalParameters()


# ---------------------------------------------------------------------------
# Table II — architectural details of the photonic memory systems
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PhotonicMemoryTimings:
    """Timing/bus parameters of one photonic memory system (Table II)."""

    name: str
    banks: int
    ranks_per_channel: int
    devices_per_rank: int
    bus_width_bits: int
    burst_length: int
    write_time_ns: float          # max write for COMET; write for COSMOS
    erase_time_ns: float
    read_time_ns: float
    data_burst_time_ns: float
    electrical_interface_delay_ns: float

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.bus_width_bits <= 0 or self.burst_length <= 0:
            raise ConfigError("banks, bus width and burst length must be positive")
        for name in ("write_time_ns", "erase_time_ns", "read_time_ns",
                     "data_burst_time_ns", "electrical_interface_delay_ns"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")

    @property
    def cache_line_bits(self) -> int:
        """Bits moved by one full burst."""
        return self.bus_width_bits * self.burst_length

    @property
    def burst_total_time_ns(self) -> float:
        """Time occupied on the data bus by one full burst."""
        return self.data_burst_time_ns * self.burst_length


#: COMET row of Table II.
COMET_TIMINGS = PhotonicMemoryTimings(
    name="COMET",
    banks=4,
    ranks_per_channel=1,
    devices_per_rank=1,
    bus_width_bits=256,
    burst_length=4,
    write_time_ns=170.0,
    erase_time_ns=210.0,
    read_time_ns=10.0,
    data_burst_time_ns=1.0,
    electrical_interface_delay_ns=105.0,
)

#: COSMOS row of Table II (after the Section IV.B re-modeling).
COSMOS_TIMINGS = PhotonicMemoryTimings(
    name="COSMOS",
    banks=8,
    ranks_per_channel=1,
    devices_per_rank=1,
    bus_width_bits=128,
    burst_length=8,
    write_time_ns=1600.0,
    erase_time_ns=250.0,
    read_time_ns=25.0,
    data_burst_time_ns=1.0,
    electrical_interface_delay_ns=105.0,
)


# ---------------------------------------------------------------------------
# COMET organization per bit density (Section IV.A)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CometOrganizationSpec:
    """The (B x Sr x Mr x Mc x b) tuple of Section IV.A for one bit density."""

    bits_per_cell: int
    banks: int
    subarrays_per_bank: int     # Sr  (Sc = 1 in COMET: Mc = Nc)
    rows_per_subarray: int      # Mr
    cols_per_subarray: int      # Mc

    @property
    def capacity_bits(self) -> int:
        return (self.banks * self.subarrays_per_bank * self.rows_per_subarray
                * self.cols_per_subarray * self.bits_per_cell)


#: Section IV.A: (4 x 4096 x 512 x 1024 x 1), (4 x 4096 x 512 x 512 x 2),
#: (4 x 4096 x 512 x 256 x 4) — all 8 GB.
COMET_ORGANIZATIONS: Dict[int, CometOrganizationSpec] = {
    1: CometOrganizationSpec(1, 4, 4096, 512, 1024),
    2: CometOrganizationSpec(2, 4, 4096, 512, 512),
    4: CometOrganizationSpec(4, 4, 4096, 512, 256),
}


def comet_organization(bits_per_cell: int) -> CometOrganizationSpec:
    """Return the paper's COMET organization for a bit density in {1, 2, 4}."""
    try:
        return COMET_ORGANIZATIONS[bits_per_cell]
    except KeyError:
        raise ConfigError(
            f"COMET bit density must be one of {sorted(COMET_ORGANIZATIONS)}, "
            f"got {bits_per_cell}"
        ) from None


# ---------------------------------------------------------------------------
# Derived constants used by the power/reliability models
# ---------------------------------------------------------------------------

#: Rows an in-array signal can traverse between SOA stages (Section III.E):
#: 15.2 dB SOA gain / 0.33 dB EO-tuned MR through loss -> one SOA array
#: every 46 rows.
SOA_ROW_INTERVAL = 46

#: Mode-division multiplexing degree selected in Section III.C.
MDM_DEGREE = 4

#: Target main-memory capacity of the evaluation (Section IV).
MAIN_MEMORY_CAPACITY_BYTES = 8 * (2 ** 30)

#: Channels making up the 8 GB part.  The paper's per-channel organization
#: (4 x 4096 x 512 x 256 x 4) holds 2^33 bits = 1 GiB, and Eq. (1) carries
#: an explicit ChannelID, so the 8 GB evaluation part is 8 such channels.
MAIN_MEMORY_CHANNELS = 8

#: Capacity of one channel's device.
CHANNEL_CAPACITY_BYTES = MAIN_MEMORY_CAPACITY_BYTES // MAIN_MEMORY_CHANNELS

#: Cache line size used for the Fig. 9 evaluation [bytes]. COMET interleaves
#: one line across the B banks: 4 banks x 256 bits = 128 B.
CACHE_LINE_BYTES = 128


def validate_capacity(spec: CometOrganizationSpec) -> None:
    """Check a COMET organization provides one channel's capacity."""
    if spec.capacity_bits != CHANNEL_CAPACITY_BYTES * 8:
        raise ConfigError(
            f"organization {spec} yields {spec.capacity_bits} bits, expected "
            f"{CHANNEL_CAPACITY_BYTES * 8} per channel"
        )


def table_i_rows() -> Dict[str, str]:
    """Render Table I as printable rows (used by the Table I bench)."""
    p = TABLE_I
    return {
        "Coupling loss": f"{p.coupling_loss_db:g} dB",
        "MR drop loss": f"{p.mr_drop_loss_db:g} dB",
        "MR through loss": f"{p.mr_through_loss_db:g} dB",
        "EO tuned MR drop loss": f"{p.eo_mr_drop_loss_db:g} dB",
        "EO tuned MR through loss": f"{p.eo_mr_through_loss_db:g} dB",
        "Propagation loss": f"{p.propagation_loss_db_per_cm:g} dB/cm",
        "Bending loss": f"{p.bending_loss_db_per_90deg:g} dB/90deg",
        "SOA gain": f"{p.soa_gain_db:g} dB",
        "Laser wall plug efficiency": f"{p.laser_wall_plug_efficiency:.0%}",
        "EO tuning power": f"{p.eo_tuning_power_w_per_nm * 1e6:g} uW/nm",
        "Max. power at GST cell": f"{p.max_power_at_gst_cell_w * 1e3:g} mW",
        "Intra-subarray SOA power": f"{p.intra_soa_power_w * 1e3:g} mW",
    }


def replace(params: OpticalParameters, **updates) -> OpticalParameters:
    """Return a copy of ``params`` with the given fields replaced."""
    return dataclasses.replace(params, **updates)
