"""End-to-end incremental artifact regeneration.

The acceptance invariant of the store-backed registry: a second full
regeneration against a populated store recomputes **zero** simulation
cells and reproduces bit-identical results — for every store-capable
experiment, not just fig9.
"""

import pytest

from repro.exp import EXPERIMENTS
from repro.exp.__main__ import main as exp_main
from repro.sim import engine
from repro.sim.store import ResultStore

#: Small enough for tier-1, large enough that every architecture
#: completes requests on every workload.
NUM_REQUESTS = 150

STORE_CAPABLE = sorted(exp_id for exp_id, e in EXPERIMENTS.items()
                       if e.store_capable)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "results")


class TestRegistryRoundTrip:
    def test_warm_pass_recomputes_nothing_and_is_bit_identical(
            self, store, monkeypatch):
        """Run every store-capable experiment twice against one store:
        the warm pass must perform zero evaluate_cell computations and
        reproduce the cold results exactly."""
        cold = {
            exp_id: EXPERIMENTS[exp_id].run(store=store,
                                            num_requests=NUM_REQUESTS)
            for exp_id in STORE_CAPABLE
        }
        engine.reset_computed_cell_count()
        assert engine.computed_cell_count() == 0

        # Belt and braces on top of the counter: any attempt to compute
        # a cell during the warm pass fails loudly.
        def forbidden(task):
            raise AssertionError(
                f"warm pass recomputed {task.describe()}")

        monkeypatch.setattr(engine, "evaluate_cell", forbidden)
        warm = {
            exp_id: EXPERIMENTS[exp_id].run(store=store,
                                            num_requests=NUM_REQUESTS)
            for exp_id in STORE_CAPABLE
        }
        assert engine.computed_cell_count() == 0

        for exp_id in STORE_CAPABLE:
            cold_result, warm_result = cold[exp_id], warm[exp_id]
            if hasattr(cold_result, "results"):
                assert warm_result.results == cold_result.results, exp_id
            if hasattr(cold_result, "summary"):
                assert warm_result.summary == cold_result.summary, exp_id
            if hasattr(cold_result, "measured"):
                assert warm_result.measured == cold_result.measured, exp_id

    def test_headline_rides_on_fig9_cells(self, store):
        """The headline experiment shares fig9's grid cells: after a
        fig9 pass, headline computes nothing new."""
        EXPERIMENTS["fig9"].run(store=store, num_requests=NUM_REQUESTS)
        engine.reset_computed_cell_count()
        EXPERIMENTS["headline"].run(store=store, num_requests=NUM_REQUESTS)
        assert engine.computed_cell_count() == 0


class TestRunAllCli:
    def test_cold_then_warm_with_expect_no_compute(self, tmp_path,
                                                   capsys):
        args = ["run-all", "fig10", "--store", str(tmp_path / "s"),
                "--num-requests", "150"]
        assert exp_main(args) == 0
        out = capsys.readouterr().out
        assert "run-all summary" in out
        assert exp_main(args + ["--expect-no-compute"]) == 0

    def test_expect_no_compute_fails_cold(self, tmp_path, capsys):
        assert exp_main(["run-all", "fig10", "--store",
                         str(tmp_path / "s"), "--num-requests", "150",
                         "--expect-no-compute"]) == 3
        assert "computed" in capsys.readouterr().err

    def test_unknown_experiment_is_clean_error(self, capsys):
        assert exp_main(["run-all", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_unusable_store_is_clean_error(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        assert exp_main(["run-all", "fig10", "--store",
                         str(blocker)]) == 2
        assert "unusable" in capsys.readouterr().err

    def test_expect_no_compute_reads_the_daemon_counter(self, tmp_path,
                                                        capsys):
        """In --server mode the cells are computed inside the daemon, so
        --expect-no-compute must assert on the daemon's /stats computed
        delta: a cold pass exits 3 even though the *local* engine
        counter never moves, and a warm pass exits 0."""
        import asyncio
        import threading

        from repro.sim.client import EvalClient
        from repro.sim.server import EvalServer

        started = threading.Event()
        box = {}

        def serve():
            async def main():
                server = EvalServer(store=tmp_path / "s", workers=1, port=0)
                await server.start()
                box["address"] = server.http_address
                started.set()
                await server._shutdown.wait()
                await server.stop()
            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(10), "daemon did not start"
        address = box["address"]
        try:
            engine.reset_computed_cell_count()
            args = ["run-all", "fig9", "--server", address,
                    "--num-requests", "150", "--expect-no-compute"]
            assert exp_main(args) == 3
            err = capsys.readouterr().err
            assert "the daemon computed" in err
            # The delta really came from /stats, not the local counter.
            assert engine.computed_cell_count() == 0
            # Warm pass: the daemon serves every cell from its store.
            assert exp_main(args) == 0
        finally:
            EvalClient(address).shutdown()
            thread.join(10)

    def test_expect_no_compute_with_unreachable_server(self, capsys):
        assert exp_main(["run-all", "fig9", "--server",
                         "http://127.0.0.1:1", "--num-requests", "150",
                         "--expect-no-compute"]) == 2
        assert "cannot read server stats" in capsys.readouterr().err

    def test_failing_experiment_reported_not_fatal(self, tmp_path,
                                                   monkeypatch, capsys):
        """One broken experiment must not abort the regeneration: the
        rest still run and the exit code reports the failure."""
        import dataclasses

        from repro.exp import registry

        def explode(**kwargs):
            raise ValueError("synthetic failure")

        broken = dataclasses.replace(registry.EXPERIMENTS["table1"],
                                     runner=explode, printer=explode)
        monkeypatch.setitem(registry.EXPERIMENTS, "table1", broken)
        assert exp_main(["run-all", "table1", "fig10", "--store",
                         str(tmp_path / "s"), "--num-requests",
                         "150"]) == 1
        captured = capsys.readouterr()
        assert "failed experiments: table1" in captured.err
        assert "DOTA" in captured.out or "fig10" in captured.out
