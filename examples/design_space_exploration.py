#!/usr/bin/env python
"""Design-space exploration: reproduce the paper's cross-layer choices.

Walks the three design studies of Section III/IV and prints each decision:

* material selection (Fig. 3): GST vs GSST vs Sb2Se3,
* cell geometry (Fig. 4): width x thickness contrast scan,
* platform choice: Si vs SiN transmission contrast,
* bit density (Fig. 7): power stacks for b = 1, 2, 4.

Usage: python examples/design_space_exploration.py
"""

from repro.arch.power import bit_density_study
from repro.device import CellGeometry, OpticalGstCell
from repro.device.sweep import geometry_sweep, select_design_point
from repro.materials import MATERIAL_NAMES, get_material


def material_study() -> None:
    print("1. Material selection (Fig. 3)")
    for name in MATERIAL_NAMES:
        material = get_material(name)
        print(f"   {name:7s} dn = {material.index_contrast():.2f}, "
              f"dk = {material.extinction_contrast():.3f}, "
              f"FOM = {material.figure_of_merit():.4f}")
    best = max(MATERIAL_NAMES, key=lambda n: get_material(n).figure_of_merit())
    print(f"   -> selected: {best} (paper selects GST)\n")


def geometry_study() -> None:
    print("2. Cell geometry (Fig. 4)")
    gst = get_material("GST")
    points = geometry_sweep(
        gst,
        widths_m=[440e-9, 480e-9, 520e-9],
        thicknesses_m=[10e-9, 20e-9, 30e-9],
    )
    for p in points:
        print(f"   w={p.width_m * 1e9:3.0f} nm t={p.thickness_m * 1e9:2.0f} nm: "
              f"T-contrast {p.transmission_contrast:.3f}, "
              f"A-contrast {p.absorption_contrast:.3f}")
    chosen = select_design_point(points)
    print(f"   -> selected: {chosen.width_m * 1e9:.0f} nm x "
          f"{chosen.thickness_m * 1e9:.0f} nm (paper: 480 nm x 20 nm)\n")


def platform_study() -> None:
    print("3. Platform choice (Si vs SiN, Section III.B)")
    gst = get_material("GST")
    for platform in ("Si", "SiN"):
        cell = OpticalGstCell(gst, CellGeometry(platform=platform))
        print(f"   {platform:3s}: transmission contrast "
              f"{cell.transmission_contrast():.3f}")
    print("   -> Si offers the higher contrast (as the paper argues)\n")


def bit_density_power_study() -> None:
    print("4. Bit density (Fig. 7)")
    for bits, stack in sorted(bit_density_study().items()):
        print(f"   b={bits}: laser {stack.laser_w:5.1f} W + "
              f"SOA {stack.soa_w:5.1f} W = {stack.total_w:5.1f} W")
    print("   -> b=4 minimizes power at equal capacity/bandwidth "
          "(the paper's choice)\n")


if __name__ == "__main__":
    material_study()
    geometry_study()
    platform_study()
    bit_density_power_study()
