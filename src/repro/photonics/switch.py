"""Electrically controlled GST waveguide switch (subarray access gating).

COMET gates each subarray with a GST cell at the waveguide coupler [39]
(Fig. 5(d)): amorphous GST couples the wavelengths into the subarray
(0.2 dB insertion loss), crystalline GST blocks them.  Switching takes
100 ns but happens only on subarray-granularity access changes, and it
removes the splitter-tree laser-power multiplication a passive fan-out
would cost — the trade Section III.C makes explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..units import db_to_linear


class SwitchState(enum.Enum):
    """GST switch states; amorphous couples, crystalline blocks."""

    COUPLING = "amorphous"
    BLOCKING = "crystalline"


@dataclass(frozen=True)
class GstWaveguideSwitch:
    """A 1x1 GST-based subarray access switch."""

    insertion_loss_db: float = TABLE_I.pcm_switch_loss_db
    blocking_extinction_db: float = 25.0
    switch_time_s: float = TABLE_I.pcm_switch_time_s
    switch_energy_j: float = 280e-12   # one amorphization-class pulse

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0.0 or self.blocking_extinction_db <= 0.0:
            raise ConfigError("switch losses must be non-negative/positive")
        if self.switch_time_s < 0.0:
            raise ConfigError("switch time must be non-negative")

    @classmethod
    def from_parameters(cls, params: OpticalParameters = TABLE_I
                        ) -> "GstWaveguideSwitch":
        return cls(
            insertion_loss_db=params.pcm_switch_loss_db,
            switch_time_s=params.pcm_switch_time_s,
        )

    def transmission(self, state: SwitchState) -> float:
        """Power transmission through the switch in the given state."""
        if state is SwitchState.COUPLING:
            return db_to_linear(-self.insertion_loss_db)
        return db_to_linear(-(self.insertion_loss_db + self.blocking_extinction_db))

    def loss_db(self, state: SwitchState) -> float:
        if state is SwitchState.COUPLING:
            return self.insertion_loss_db
        return self.insertion_loss_db + self.blocking_extinction_db

    def is_nonvolatile(self) -> bool:
        """GST switches hold state with zero static power."""
        return True
