"""Fig. 10 — EPB of the DOTA accelerator with each main memory.

DeiT-T and DeiT-B inference traffic through every candidate memory, plus
the electro-optic conversion tax electronic memories pay at the photonic
tensor core's boundary.  The memory-simulation cells route through the
evaluation engine, so ``$REPRO_RESULT_STORE`` makes regeneration
incremental and ``$REPRO_EVAL_SERVER`` answers the grid from a warm
daemon — the same substrate Fig. 9 uses.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from ..accel.dota import DotaResult, dota_case_study
from ..errors import ConfigError, SimulationError
from ..sim.client import SERVER_ENV_VAR
from ..sim.store import ResultStore
# One authoritative copy of the store env-var name: when set,
# ``python -m repro.exp fig10`` only simulates the cells missing from
# the store, exactly like fig9.
from .fig9 import STORE_ENV_VAR
from .report import print_table

#: Paper-reported Fig. 10 ratios (COMET vs other, per model).
PAPER_RATIOS = {
    ("DeiT-T", "3D_DDR4"): 1.3,
    ("DeiT-B", "3D_DDR4"): 2.06,
    ("DeiT-T", "COSMOS"): 2.7,
    ("DeiT-B", "COSMOS"): 1.45,
}


@dataclass
class Fig10Result:
    results: Dict[str, Dict[str, DotaResult]]

    def ratio(self, model: str, other: str) -> float:
        """How much lower COMET's system EPB is than ``other``'s."""
        try:
            per_mem = self.results[model]
        except KeyError:
            raise ConfigError(
                f"unknown model {model!r}; known: {sorted(self.results)}"
            ) from None
        for memory in (other, "COMET"):
            if memory not in per_mem:
                raise ConfigError(
                    f"unknown memory {memory!r} for model {model!r}; "
                    f"known: {sorted(per_mem)}")
        return per_mem[other].system_epb_pj / per_mem["COMET"].system_epb_pj


def run(num_requests: int = 6000,
        store: Optional[Union[str, Path, ResultStore]] = None,
        server: Optional[str] = None,
        workers: Optional[int] = None) -> Fig10Result:
    """Run the Fig. 10 grid.

    ``store`` (a directory path or :class:`ResultStore`) serves cells
    already on disk and checkpoints new ones; ``server`` (an
    evaluation-daemon address) answers them remotely instead, with the
    daemon's store/LRU doing the caching.  Either way the returned
    stats are bit-identical to a cold local run.
    """
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)
    return Fig10Result(results=dota_case_study(
        num_requests=num_requests, store=store, server=server,
        workers=workers))


def main(num_requests: int = 6000,
         store: Optional[Union[str, Path, ResultStore]] = None,
         server: Optional[str] = None) -> Fig10Result:
    if server is None:
        server = os.environ.get(SERVER_ENV_VAR) or None
    if server is not None:
        try:
            result = run(num_requests=num_requests, server=server)
        except (SimulationError, OSError) as error:
            # Transport failures (daemon died, refused socket) must
            # surface as the same clean exit as a server-side error.
            print(f"fig10: evaluation server {server!r} failed: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
        return _print_report(result)
    if store is None:
        store = os.environ.get(STORE_ENV_VAR) or None
    if store is not None and not isinstance(store, ResultStore):
        try:
            store = ResultStore(store)
        except (OSError, SimulationError) as error:
            print(f"fig10: result store {str(store)!r} unusable: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
    result = run(num_requests=num_requests, store=store)
    return _print_report(result)


def _print_report(result: Fig10Result) -> Fig10Result:
    for model, per_mem in result.results.items():
        rows = []
        for memory, res in per_mem.items():
            rows.append([
                memory,
                f"{res.memory_epb_pj:.1f}",
                f"{res.conversion_pj_per_bit:.1f}",
                f"{res.system_epb_pj:.1f}",
            ])
        print_table(
            ["memory", "memory EPB (pJ/b)", "conversion (pJ/b)",
             "system EPB (pJ/b)"],
            rows, title=f"Fig. 10 — DOTA + {model}",
        )
    print("COMET ratios (measured | paper):")
    for (model, other), paper in PAPER_RATIOS.items():
        print(f"  {model} vs {other}: {result.ratio(model, other):5.2f}x "
              f"| {paper:.2f}x")
    print()
    return result


if __name__ == "__main__":
    main()
