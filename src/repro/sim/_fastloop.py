"""Compiled exact-twin scheduler loop for bus/queue-coupled devices.

The shared-bus and global-FIFO recurrences are *irreducibly sequential*:
the bus serializes every burst through ``finish[i-1]`` while bank
conflicts couple requests a few indices apart, and which term binds
alternates every ~2 requests on DRAM traffic.  No prefix-fold
decomposition (``np.cumsum`` / ``np.maximum.accumulate``) covers that
without re-associating float additions — which would move results by an
ulp and break the bit-identity contract the goldens pin.  (The
contention-free per-bank recurrence *does* decompose, which is why the
PR 5 kernel vectorizes it; this module is the fast path for everything
a shared resource couples.)

So the fast path here is an **exact twin**, not a decomposition: the
same IEEE-754 double operations in the same order as the scalar Python
loop, compiled from a few lines of C at first use (``cc`` + ``ctypes``).
CPython float arithmetic *is* C double arithmetic on the host — ``+``,
comparisons, and ``%`` on positive floats (plain ``fmod``) map one to
one — so the compiled loop is bit-identical by construction, with no
re-association anywhere.  Compilation is guarded: contraction is
disabled (``-ffp-contract=off``) so no FMA fuses an add into a rounding
change, and fast-math stays off.

The library is cached on disk keyed by the SHA-256 of the source, so a
process pays the compile once ever (pool workers dlopen the cached
artifact).  Where no C toolchain exists the module reports itself
unavailable and the controller's dispatch falls back to the scalar
recurrence — same results, scalar speed — counted under
``fallback_toolchain``.  ``REPRO_FASTLOOP=0`` forces that fallback
deterministically (tests, benchmarks).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import Optional

import numpy as np

#: Environment switch: ``0`` disables the compiled loop (the controller
#: then counts a toolchain fallback and runs the scalar recurrence).
FASTLOOP_ENV_VAR = "REPRO_FASTLOOP"

#: Override for the shared-library cache directory (useful when the
#: package tree is read-only).
CACHE_ENV_VAR = "REPRO_FASTLOOP_CACHE"

# One routine covers every device class.  ``per_bank`` selects the
# contention-free per-bank-queue recurrence (COMET-class photonic
# parts): a line-for-line transcription of
# MemoryController._recurrence_per_bank in deadline space, with the
# per-bank finish history kept in a flat circular buffer (only the
# entry ``served - bank_queue_depth`` is ever read, so one slot per
# queue position suffices).  It returns 1 when an admission stamp
# would bind service — the same admissibility rule as every other
# tier — and the caller reverts the cell to the global-queue model.
# Otherwise the global-FIFO branch covers the shared-bus loops (DRAM
# with refresh, electrical PCM), the unshared loop (COSMOS, per-bank
# admission fallbacks) and the generic flag combination, transcribed
# from MemoryController._recurrence_refresh_bus with the same branch
# structure the other loops specialize away.  Identical operation
# order is what makes every branch bit-identical, so edits here must
# track controller.py.
_C_SOURCE = r"""
#include <math.h>

int repro_schedule_loop(
    long long n, const long long *bank, const double *array_ns,
    const double *arrivals, const double *turn,
    long long queue_depth, long long banks,
    double burst, int shared_bus, int overlap,
    int has_refresh, double interval, double duration,
    int per_bank, long long bank_queue_depth,
    double *admitted, double *start_out, double *finish,
    double *bank_free, double *bank_busy, double *busy_total,
    double *bank_cum, double *bank_peak, long long *bank_served,
    double *history)
{
    if (per_bank) {
        for (long long i = 0; i < n; i++) {
            long long b = bank[i];
            double arrival = arrivals[i];
            double occupancy = overlap ? array_ns[i]
                                       : array_ns[i] + burst;
            double cum_prev = bank_cum[b];
            double deadline = arrival - cum_prev;
            double peak = bank_peak[b];
            if (deadline > peak) {
                peak = deadline;
                bank_peak[b] = deadline;
            }
            double start = peak + cum_prev;
            double cum_next = cum_prev + occupancy;
            double release = peak + cum_next;
            double fin = overlap ? release + burst : release;
            long long served = bank_served[b];
            long long slot = b * bank_queue_depth
                             + served % bank_queue_depth;
            double adm = arrival;
            if (served >= bank_queue_depth) {
                double stamp = history[slot];
                if (stamp > adm) adm = stamp;
                if (adm > start) return 1;  /* queue binds: revert */
            }
            history[slot] = fin;
            bank_served[b] = served + 1;
            bank_cum[b] = cum_next;
            bank_busy[b] += release - start;
            admitted[i] = adm;
            start_out[i] = start;
            finish[i] = fin;
        }
        double total = 0.0;
        for (long long b = 0; b < banks; b++) total += bank_busy[b];
        *busy_total = total;
        return 0;
    }
    double bus_free = 0.0;
    for (long long i = 0; i < n; i++) {
        double adm = arrivals[i];
        if (i >= queue_depth) {
            double blocked = finish[i - queue_depth];
            if (blocked > adm) adm = blocked;
        }
        long long b = bank[i];
        double start = bank_free[b];
        if (adm > start) start = adm;
        if (has_refresh) {
            double pos = fmod(start, interval);
            if (pos < duration) start = (start - pos) + duration;
        }
        double array_time = array_ns[i];
        double burst_start = start + array_time;
        if (shared_bus) {
            double bus_ready = bus_free + turn[i];
            if (bus_ready > burst_start) burst_start = bus_ready;
            if (has_refresh) {
                double pos = fmod(burst_start, interval);
                if (pos < duration)
                    burst_start = (burst_start - pos) + duration;
            }
        }
        double fin = burst_start + burst;
        if (shared_bus) bus_free = fin;
        double release = fin;
        if (overlap) {
            double array_done = start + array_time;
            release = array_done > burst_start ? array_done : burst_start;
        }
        bank_busy[b] += release - start;
        bank_free[b] = release;
        admitted[i] = adm;
        start_out[i] = start;
        finish[i] = fin;
    }
    double total = 0.0;
    for (long long b = 0; b < banks; b++) total += bank_busy[b];
    *busy_total = total;
    return 0;
}
"""

#: Returned by :func:`schedule_loop` (``per_bank=True``) when an
#: admission stamp would bind service: the cell must revert to the
#: global-queue model, exactly as the numpy kernel's ``None`` and the
#: scalar twin signal.  Distinct from ``None``, which still means "no
#: compiled twin in this process" (missing toolchain / disabled).
ADMISSION_BINDS = object()

#: ``None`` = not probed yet; ``False`` = unavailable this process.
_LIB: Optional[object] = None
_PROBED = False


def _cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "_fastloop_cache"


def _compile(source: str, target: Path) -> bool:
    """Compile the twin into ``target`` (atomic rename); False on any
    toolchain failure."""
    compiler = os.environ.get("CC", "cc")
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=str(target.parent)) as build:
            src = Path(build) / "fastloop.c"
            obj = Path(build) / "fastloop.so"
            src.write_text(source)
            result = subprocess.run(
                [compiler, "-O2", "-fPIC", "-shared",
                 # No contraction, no fast-math: every double op must
                 # round exactly where the Python loop rounds.
                 "-ffp-contract=off", "-fno-fast-math",
                 "-o", str(obj), str(src), "-lm"],
                capture_output=True, timeout=120)
            if result.returncode != 0 or not obj.exists():
                return False
            os.replace(obj, target)    # atomic: racing processes agree
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def _load():
    """dlopen the cached twin, compiling it first if needed."""
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    target = _cache_dir() / f"fastloop-{digest}.so"
    if not target.exists() and not _compile(_C_SOURCE, target):
        return None
    try:
        lib = ctypes.CDLL(str(target))
    except OSError:
        return None
    fn = lib.repro_schedule_loop
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.c_longlong, ctypes.POINTER(ctypes.c_longlong),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double),
        ctypes.c_longlong, ctypes.c_longlong,
        ctypes.c_double, ctypes.c_int, ctypes.c_int,
        ctypes.c_int, ctypes.c_double, ctypes.c_double,
        ctypes.c_int, ctypes.c_longlong,
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double),
        ctypes.POINTER(ctypes.c_longlong), ctypes.POINTER(ctypes.c_double),
    ]
    return fn


#: Serializes the first-use probe: under the thread pool many workers
#: can race into :func:`available` before anyone has compiled/dlopened
#: the twin; the double-checked lock makes exactly one thread probe.
_PROBE_LOCK = threading.Lock()

# Forked children must not inherit a lock a pool thread held mid-probe.
os.register_at_fork(
    after_in_child=lambda: globals().update(
        _PROBE_LOCK=threading.Lock()))


def available() -> bool:
    """True when the compiled twin can serve schedules in this process."""
    global _LIB, _PROBED
    if os.environ.get(FASTLOOP_ENV_VAR, "1") == "0":
        return False
    if not _PROBED:
        with _PROBE_LOCK:
            if not _PROBED:
                _LIB = _load()
                _PROBED = True
    return _LIB is not None


def reset_probe() -> None:
    """Forget the availability probe (tests that flip the environment).

    Holds the probe lock: resetting mid-probe on another thread must
    not let a half-initialized ``_LIB`` slip out as "probed".
    """
    global _LIB, _PROBED
    with _PROBE_LOCK:
        _LIB = None
        _PROBED = False


def _as_double_ptr(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def schedule_loop(
    bank_idx: np.ndarray, array_ns: np.ndarray, arrivals: np.ndarray,
    turn: np.ndarray, queue_depth: int, banks: int, burst: float,
    shared_bus: bool, overlap: bool, has_refresh: bool,
    interval: float, duration: float,
    per_bank: bool = False, bank_queue_depth: int = 1,
):
    """Run the compiled twin; ``None`` when unavailable.

    Returns ``(admitted, start, finish, busy)`` bit-identical to the
    matching ``MemoryController._recurrence_*`` scalar loop.  With
    ``per_bank=True`` the per-bank-queue recurrence runs instead
    (``bank_queue_depth`` is the per-bank admission slice); a binding
    admission stamp returns the :data:`ADMISSION_BINDS` sentinel so the
    caller can revert the cell to the global-queue model, while ``None``
    still means the twin itself is unavailable.
    """
    if not available():
        return None
    n = len(arrivals)
    bank_c = np.ascontiguousarray(bank_idx, dtype=np.int64)
    array_c = np.ascontiguousarray(array_ns, dtype=np.float64)
    arrivals_c = np.ascontiguousarray(arrivals, dtype=np.float64)
    turn_c = np.ascontiguousarray(turn, dtype=np.float64)
    admitted = np.empty(n)
    start = np.empty(n)
    finish = np.empty(n)
    bank_free = np.zeros(banks)
    bank_busy = np.zeros(banks)
    busy_total = ctypes.c_double(0.0)
    qd_b = max(1, int(bank_queue_depth)) if per_bank else 1
    bank_cum = np.zeros(banks if per_bank else 1)
    bank_peak = np.full(banks if per_bank else 1, -np.inf)
    bank_served = np.zeros(banks if per_bank else 1, dtype=np.int64)
    history = np.empty((banks * qd_b) if per_bank else 1)
    rc = _LIB(
        ctypes.c_longlong(n),
        bank_c.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
        _as_double_ptr(array_c), _as_double_ptr(arrivals_c),
        _as_double_ptr(turn_c),
        ctypes.c_longlong(queue_depth), ctypes.c_longlong(banks),
        ctypes.c_double(burst),
        ctypes.c_int(1 if shared_bus else 0),
        ctypes.c_int(1 if overlap else 0),
        ctypes.c_int(1 if has_refresh else 0),
        ctypes.c_double(interval), ctypes.c_double(duration),
        ctypes.c_int(1 if per_bank else 0),
        ctypes.c_longlong(qd_b),
        _as_double_ptr(admitted), _as_double_ptr(start),
        _as_double_ptr(finish), _as_double_ptr(bank_free),
        _as_double_ptr(bank_busy), ctypes.byref(busy_total),
        _as_double_ptr(bank_cum), _as_double_ptr(bank_peak),
        bank_served.ctypes.data_as(ctypes.POINTER(ctypes.c_longlong)),
        _as_double_ptr(history),
    )
    if rc != 0:
        return ADMISSION_BINDS
    return admitted, start, finish, busy_total.value
