"""COMET architecture facade.

Ties the cross-layer pieces into one object: material -> cell -> MLC ->
programmer -> organization -> address map -> power stack -> timings.
This is the object examples and the simulator factory consume.
"""

from __future__ import annotations

from ..config import (
    CHANNEL_CAPACITY_BYTES,
    COMET_TIMINGS,
    MAIN_MEMORY_CHANNELS,
    OpticalParameters,
    PhotonicMemoryTimings,
    TABLE_I,
)
from ..device.cell import OpticalGstCell
from ..device.mlc import MultiLevelCell
from ..device.programming import CellProgrammer, ProgrammingMode
from ..errors import ConfigError
from ..materials.database import get_material
from .address import AddressMapper
from .lut import GainLUT
from .organization import MemoryOrganization
from .power import CometPowerModel, PowerBreakdown
from .timing import DerivedTimings, derive_comet_timings


class CometArchitecture:
    """A fully configured COMET main memory instance."""

    def __init__(
        self,
        bits_per_cell: int = 4,
        material_name: str = "GST",
        params: OpticalParameters = TABLE_I,
        timings: PhotonicMemoryTimings = COMET_TIMINGS,
        channels: int = MAIN_MEMORY_CHANNELS,
    ) -> None:
        self.params = params
        self.timings = timings
        self.channels = channels
        self.material = get_material(material_name)
        self.cell = OpticalGstCell(self.material)
        self.mlc = MultiLevelCell.for_cell(self.cell, bits_per_cell)
        self.programmer = CellProgrammer(self.cell)
        self.organization = MemoryOrganization.comet(bits_per_cell)
        self.mapper = AddressMapper(self.organization, channels=channels)
        self.lut = GainLUT(
            rows_per_subarray=self.organization.rows_per_subarray,
            bits_per_cell=bits_per_cell,
            params=params,
        )
        self.power_model = CometPowerModel(self.organization, params=params)
        if self.organization.capacity_bytes != CHANNEL_CAPACITY_BYTES:
            raise ConfigError(
                f"organization capacity {self.organization.capacity_bytes} "
                f"differs from the per-channel {CHANNEL_CAPACITY_BYTES}"
            )

    # -- conveniences ---------------------------------------------------

    @property
    def bits_per_cell(self) -> int:
        return self.organization.bits_per_cell

    @property
    def capacity_bytes(self) -> int:
        """Full part capacity across all channels."""
        return self.organization.capacity_bytes * self.channels

    def power_breakdown(self) -> PowerBreakdown:
        """The Fig. 7 power stack of this instance."""
        return self.power_model.breakdown(
            name=f"COMET-{self.bits_per_cell}b"
        )

    def derived_timings(self) -> DerivedTimings:
        """Device-derived timing set (validates Table II)."""
        return derive_comet_timings(self.programmer, self.mlc, self.params)

    def reset_energy_pj(self, mode: ProgrammingMode) -> float:
        """Reset energy of the cell in pJ (Section III.B case studies)."""
        return self.programmer.reset_energy_j(mode) * 1e12

    def describe(self) -> str:
        org = self.organization
        return (
            f"COMET-{self.bits_per_cell}b {org.describe()}: "
            f"{org.capacity_bytes / 2**30:.0f} GiB, "
            f"{org.wavelengths_required} wavelengths/bank, "
            f"{self.lut.paper_entry_count} LUT entries, "
            f"{self.power_breakdown().total_w:.1f} W operational"
        )
