"""Lorentz oscillator model and the exact-anchor fit."""

import numpy as np
import pytest

from repro.errors import MaterialError
from repro.materials.lorentz import LorentzOscillator, fit_single_oscillator


class TestOscillator:
    def test_validates_parameters(self):
        with pytest.raises(MaterialError):
            LorentzOscillator(1.0, 1.0, -2.0, 1.0)
        with pytest.raises(MaterialError):
            LorentzOscillator(1.0, 1.0, 2.0, 0.0)
        with pytest.raises(MaterialError):
            LorentzOscillator(1.0, -1.0, 2.0, 1.0)

    def test_permittivity_is_complex_with_positive_imag(self):
        osc = LorentzOscillator(5.0, 10.0, 2.5, 1.0)
        eps = osc.permittivity(1550e-9)
        assert eps.imag > 0.0  # absorptive, causal sign convention

    def test_nk_scalar_and_array(self):
        osc = LorentzOscillator(5.0, 10.0, 2.5, 1.0)
        n, k = osc.nk(1550e-9)
        assert isinstance(n, float) and isinstance(k, float)
        wl = np.linspace(1530e-9, 1565e-9, 5)
        n_arr, k_arr = osc.nk(wl)
        assert n_arr.shape == wl.shape
        assert np.all(k_arr > 0.0)

    def test_normal_dispersion_below_resonance(self):
        """n decreases with wavelength on the red side of the resonance."""
        osc = LorentzOscillator(5.0, 10.0, 2.5, 1.0)
        n_blue = osc.refractive_index(1530e-9)
        n_red = osc.refractive_index(1565e-9)
        assert n_blue > n_red

    def test_rejects_bad_wavelength_array(self):
        osc = LorentzOscillator(5.0, 10.0, 2.5, 1.0)
        with pytest.raises(MaterialError):
            osc.nk(np.array([1550e-9, -1.0]))


class TestFit:
    def test_exact_at_anchor(self):
        osc = fit_single_oscillator(6.11, 0.83, 1550e-9, 1.8, 1.2)
        n, k = osc.nk(1550e-9)
        assert n == pytest.approx(6.11, rel=1e-6)
        assert k == pytest.approx(0.83, rel=1e-6)

    def test_low_loss_material_fits(self):
        osc = fit_single_oscillator(3.285, 1e-4, 1550e-9, 2.9, 0.8)
        n, k = osc.nk(1550e-9)
        assert n == pytest.approx(3.285, rel=1e-6)
        assert k == pytest.approx(1e-4, rel=1e-3)

    def test_zero_kappa_gets_floor(self):
        osc = fit_single_oscillator(3.0, 0.0, 1550e-9, 2.5, 1.0)
        _, k = osc.nk(1550e-9)
        assert 0.0 < k < 1e-5

    def test_resonance_must_exceed_anchor_energy(self):
        with pytest.raises(MaterialError):
            fit_single_oscillator(3.0, 0.1, 1550e-9, 0.5, 1.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(MaterialError):
            fit_single_oscillator(-1.0, 0.1, 1550e-9, 2.5, 1.0)
        with pytest.raises(MaterialError):
            fit_single_oscillator(3.0, -0.1, 1550e-9, 2.5, 1.0)

    def test_smooth_over_c_band(self):
        """The fitted dispersion varies by <2 % across the C-band."""
        osc = fit_single_oscillator(6.11, 0.83, 1550e-9, 1.8, 1.2)
        wl = np.linspace(1530e-9, 1565e-9, 16)
        n, _ = osc.nk(wl)
        assert (n.max() - n.min()) / n.mean() < 0.02
