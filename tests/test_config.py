"""Central configuration (Tables I/II, organizations, capacity)."""

import dataclasses

import pytest

from repro import config
from repro.errors import ConfigError


class TestTableI:
    def test_paper_values(self):
        p = config.TABLE_I
        assert p.coupling_loss_db == 1.0
        assert p.mr_drop_loss_db == 0.5
        assert p.mr_through_loss_db == 0.02
        assert p.eo_mr_drop_loss_db == 1.6
        assert p.eo_mr_through_loss_db == 0.33
        assert p.propagation_loss_db_per_cm == 0.1
        assert p.bending_loss_db_per_90deg == 0.01
        assert p.laser_wall_plug_efficiency == 0.20
        assert p.eo_tuning_power_w_per_nm == pytest.approx(4e-6)
        assert p.max_power_at_gst_cell_w == pytest.approx(1e-3)
        assert p.intra_soa_power_w == pytest.approx(1.4e-3)

    def test_rejects_negative_loss(self):
        with pytest.raises(ConfigError):
            config.OpticalParameters(coupling_loss_db=-1.0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            config.OpticalParameters(laser_wall_plug_efficiency=0.0)

    def test_replace_produces_new_instance(self):
        new = config.replace(config.TABLE_I, coupling_loss_db=2.0)
        assert new.coupling_loss_db == 2.0
        assert config.TABLE_I.coupling_loss_db == 1.0

    def test_table_rows_render(self):
        rows = config.table_i_rows()
        assert rows["Coupling loss"] == "1 dB"
        assert rows["Laser wall plug efficiency"] == "20%"
        assert len(rows) == 12


class TestTableII:
    def test_comet_row(self):
        t = config.COMET_TIMINGS
        assert (t.banks, t.bus_width_bits, t.burst_length) == (4, 256, 4)
        assert t.write_time_ns == 170.0
        assert t.erase_time_ns == 210.0
        assert t.read_time_ns == 10.0
        assert t.electrical_interface_delay_ns == 105.0

    def test_cosmos_row(self):
        t = config.COSMOS_TIMINGS
        assert (t.banks, t.bus_width_bits, t.burst_length) == (8, 128, 8)
        assert t.write_time_ns == 1600.0
        assert t.erase_time_ns == 250.0
        assert t.read_time_ns == 25.0

    def test_cache_line_is_128_bytes_for_both(self):
        assert config.COMET_TIMINGS.cache_line_bits == 1024
        assert config.COSMOS_TIMINGS.cache_line_bits == 1024

    def test_burst_total_time(self):
        assert config.COMET_TIMINGS.burst_total_time_ns == pytest.approx(4.0)
        assert config.COSMOS_TIMINGS.burst_total_time_ns == pytest.approx(8.0)

    def test_rejects_zero_banks(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(config.COMET_TIMINGS, banks=0)


class TestOrganizations:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_all_bit_densities_have_channel_capacity(self, bits):
        spec = config.comet_organization(bits)
        config.validate_capacity(spec)  # must not raise

    def test_paper_tuples(self):
        spec = config.comet_organization(4)
        assert (spec.banks, spec.subarrays_per_bank, spec.rows_per_subarray,
                spec.cols_per_subarray) == (4, 4096, 512, 256)
        spec1 = config.comet_organization(1)
        assert spec1.cols_per_subarray == 1024
        spec2 = config.comet_organization(2)
        assert spec2.cols_per_subarray == 512

    def test_unknown_bit_density(self):
        with pytest.raises(ConfigError):
            config.comet_organization(3)

    def test_total_part_capacity_is_8gb(self):
        per_channel = config.CHANNEL_CAPACITY_BYTES
        assert per_channel * config.MAIN_MEMORY_CHANNELS \
            == config.MAIN_MEMORY_CAPACITY_BYTES
        assert config.MAIN_MEMORY_CAPACITY_BYTES == 8 * 2**30

    def test_soa_interval_constant(self):
        assert config.SOA_ROW_INTERVAL == 46

    def test_mdm_degree(self):
        assert config.MDM_DEGREE == 4
