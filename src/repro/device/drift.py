"""Transmission drift and retention of OPCM multi-level cells.

Amorphous (and partially amorphous) PCM relaxes structurally over time,
shifting the refractive index — the optical analogue of the resistance
drift that limits *electrical* PCM bit density (Section I).  The
conclusion claims the designed cell's 16 levels "with 6 % spacing ...
makes COMET tolerant to transmission drift"; this module makes that claim
checkable, and shows why 5 bits/cell (which [17] demonstrates physically)
is the riskier choice.

The standard empirical law is logarithmic: the stored transmission
shifts as

    dT(t) = nu * (1 - fc) * log10(1 + t / tau0)

where ``nu`` is the drift coefficient per decade and the ``(1 - fc)``
factor captures that fully crystalline material does not drift (only the
amorphous phase relaxes).  A level is lost when its shift reaches half
the level spacing; retention is the time that takes for the worst level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError
from .mlc import MultiLevelCell

#: Ten years, the usual NVM retention spec, in seconds.
TEN_YEARS_S = 10 * 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class TransmissionDriftModel:
    """Logarithmic transmission drift of a partially amorphous cell.

    ``nu_per_decade`` is the worst-case (fully amorphous) transmission
    shift per decade of time; optical GST measurements put it at the
    sub-percent level — far below electrical resistance-drift exponents,
    which is the core reason OPCM supports more levels than EPCM.
    """

    nu_per_decade: float = 0.002
    tau0_s: float = 1.0

    def __post_init__(self) -> None:
        if self.nu_per_decade < 0.0:
            raise ConfigError("drift coefficient must be non-negative")
        if self.tau0_s <= 0.0:
            raise ConfigError("drift onset time must be positive")

    def transmission_shift(
        self, crystalline_fraction: float, elapsed_s: float
    ) -> float:
        """Magnitude of the transmission shift after ``elapsed_s``."""
        if not 0.0 <= crystalline_fraction <= 1.0:
            raise ConfigError("crystalline fraction must be in [0, 1]")
        if elapsed_s < 0.0:
            raise ConfigError("elapsed time must be non-negative")
        decades = math.log10(1.0 + elapsed_s / self.tau0_s)
        return self.nu_per_decade * (1.0 - crystalline_fraction) * decades

    def level_retention_s(
        self, mlc: MultiLevelCell, crystalline_fraction: float = 0.0
    ) -> float:
        """Time until a level drifts half the spacing (decision flip).

        The worst case is the most amorphous stored level
        (``crystalline_fraction = 0``).
        """
        budget = mlc.level_spacing / 2.0
        effective_nu = self.nu_per_decade * (1.0 - crystalline_fraction)
        if effective_nu == 0.0:
            return math.inf
        decades = budget / effective_nu
        # Guard against overflow for very tolerant level maps.
        if decades > 300.0:
            return math.inf
        return self.tau0_s * (10.0 ** decades - 1.0)

    def retention_meets_spec(
        self, mlc: MultiLevelCell, spec_s: float = TEN_YEARS_S
    ) -> bool:
        """Does the worst-case level survive the retention spec?"""
        return self.level_retention_s(mlc) >= spec_s

    def max_bits_for_retention(
        self, spec_s: float = TEN_YEARS_S, max_bits: int = 6
    ) -> int:
        """Largest bit density whose level map meets the retention spec."""
        best = 0
        for bits in range(1, max_bits + 1):
            if self.retention_meets_spec(MultiLevelCell(bits), spec_s):
                best = bits
        return best
