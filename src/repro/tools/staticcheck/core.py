"""Checker framework: findings, parsed modules, pragmas, the runner.

Pragmas are ordinary comments:

``# staticcheck: allow[checker-a, checker-b]``
    Suppress those checkers' findings on this line (same-line comment)
    or on the next line (a comment on its own line).  ``allow[*]``
    suppresses every checker.

``# staticcheck: guarded-by[_SOME_LOCK]`` /
``# staticcheck: guarded-by[_SOME_LOCK, reads]``
    Declares the module-level attribute(s) assigned on this (or the
    next) line as part of the lock-discipline registry: every mutation
    — and with ``reads``, every read — must happen inside a
    ``with _SOME_LOCK:`` block or a ``register_at_fork`` reinit path.
    The default (writes-only) is the double-checked idiom: lock-free
    reads, locked writes.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*(?P<kind>allow|guarded-by)\[(?P<body>[^\]]*)\]")


@dataclass(frozen=True)
class Finding:
    """One verified violation, pointing at a file:line with a fix hint."""

    checker: str
    path: str
    line: int
    message: str
    hint: str = ""
    severity: str = "error"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def describe(self) -> str:
        text = f"{self.path}:{self.line}: {self.severity}: " \
               f"[{self.checker}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class GuardDecl:
    """A ``guarded-by`` pragma before name resolution: the declaring
    line, the lock name, and whether reads are covered too."""

    line: int
    lock: str
    reads: bool


class Module:
    """A parsed source file plus its pragma annotations."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.tree = ast.parse(source, filename=str(path))
        #: line -> frozenset of checker names allowed ("*" = all).
        self.allow: Dict[int, frozenset] = {}
        self.guards: List[GuardDecl] = []
        self._parse_pragmas()

    def _parse_pragmas(self) -> None:
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError):
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            line, col = tok.start
            own_line = not tok.line[:col].strip()
            names = [part.strip()
                     for part in match.group("body").split(",")
                     if part.strip()]
            # A comment on its own line annotates the next line; an
            # inline comment annotates its own.
            target = line + 1 if own_line else line
            if match.group("kind") == "allow":
                merged = self.allow.get(target, frozenset()) | set(names)
                self.allow[target] = merged
            else:
                reads = "reads" in names[1:]
                if names:
                    self.guards.append(
                        GuardDecl(line=target, lock=names[0], reads=reads))

    def allows(self, checker: str, line: int) -> bool:
        names = self.allow.get(line)
        return bool(names) and (checker in names or "*" in names)


class Project:
    """Every parsed module, plus cross-module lookups."""

    def __init__(self, root: Path, modules: Sequence[Module]):
        self.root = root
        self.modules = list(modules)
        self._by_rel = {m.rel: m for m in self.modules}

    def matching(self, *suffixes: str) -> List[Module]:
        return [m for m in self.modules
                if any(m.rel.endswith(s) for s in suffixes)]

    def module(self, rel: str) -> Optional[Module]:
        return self._by_rel.get(rel)

    def dataclass_fields(self, class_name: str) -> Optional[List[str]]:
        """Ordered field names of the first ``@dataclass`` named
        ``class_name`` anywhere in the project; None when absent."""
        for mod in self.modules:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                if node.name != class_name:
                    continue
                if not _is_dataclass(node):
                    continue
                names = []
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) \
                            and isinstance(stmt.target, ast.Name) \
                            and not _is_classvar(stmt.annotation):
                        names.append(stmt.target.id)
                return names
        return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    target = annotation.value if isinstance(annotation, ast.Subscript) \
        else annotation
    return dotted_name(target) in ("ClassVar", "typing.ClassVar")


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for Attribute/Name chains, '' for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class Checker:
    """Base class: subclasses override one (or both) hooks."""

    #: Unique identifier — pragma allow-lists and --select/--ignore
    #: refer to checkers by this name.
    name = ""
    description = ""

    def check_module(self, module: Module,
                     project: Project) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


@dataclass
class RunResult:
    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    checkers: Tuple[str, ...] = ()


_SKIP_DIRS = {"__pycache__", ".git", "_fastloop_cache"}


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS or part.startswith(".")
                   for part in candidate.parts):
                continue
            files.append(candidate)
    return files


def load_project(root: Path, paths: Optional[Sequence[Path]] = None,
                 ) -> Tuple[Project, List[Finding]]:
    """Parse every .py under ``paths`` (default: ``root/src``).

    Unparseable files become ``parse`` findings instead of aborting the
    run — a syntax error must fail CI with a location, not a traceback.
    """
    root = root.resolve()
    if paths is None:
        paths = [root / "src"]
    modules: List[Module] = []
    errors: List[Finding] = []
    for file in _collect_files([Path(p) for p in paths]):
        file = file.resolve()
        try:
            rel = file.relative_to(root).as_posix()
        except ValueError:
            rel = file.as_posix()
        source = file.read_text()
        try:
            modules.append(Module(file, rel, source))
        except SyntaxError as exc:
            errors.append(Finding(
                checker="parse", path=rel, line=exc.lineno or 1,
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error so the analyzers can run"))
    return Project(root, modules), errors


def run_checks(root: Path, checkers: Sequence[Checker],
               paths: Optional[Sequence[Path]] = None,
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> RunResult:
    """Run ``checkers`` over the tree; pragma suppression applied here
    so individual checkers never reimplement it."""
    selected = list(checkers)
    if select is not None:
        wanted = set(select)
        selected = [c for c in selected if c.name in wanted]
    if ignore is not None:
        dropped = set(ignore)
        selected = [c for c in selected if c.name not in dropped]

    project, findings = load_project(root, paths)
    for checker in selected:
        raw: List[Finding] = []
        raw.extend(checker.check_project(project))
        for module in project.modules:
            raw.extend(checker.check_module(module, project))
        for finding in raw:
            module = project.module(finding.path)
            if module is not None \
                    and module.allows(finding.checker, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.message))
    return RunResult(findings=findings,
                     files_scanned=len(project.modules),
                     checkers=tuple(c.name for c in selected))
