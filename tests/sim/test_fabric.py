"""Distributed sweep fabric: partitioning, dispatch, failure
re-dispatch, and the audited store merge.

The acceptance pin lives here: a fabric run across two in-process
daemons with one killed mid-sweep still converges, and its results —
and the merged daemon stores — are bit-identical to a serial
:func:`run_sweep` of the same spec.
"""

import asyncio
import json
import time

import pytest

from repro.errors import SimulationError
from repro.sim import engine
from repro.sim.engine import EvalTask, evaluate_cell
from repro.sim.fabric import (federate_stats_async, partition_index,
                              partition_tasks, run_fabric_async)
from repro.sim.server import EvalServer
from repro.sim.store import ResultStore, task_digest
from repro.sim.sweep import SweepSpec, run_sweep

#: Small but non-trivial grid: 8 cells, cheap cells, both partitions
#: of a two-host fleet non-empty (pinned below, not assumed).
SPEC = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                 workloads=("gcc", "lbm", "mcf", "milc"),
                 num_requests=(300,), seeds=(7,), queue_depths=(None,))


def run_fleet(scenario, count=2, tmp_path=None, **server_kwargs):
    """Start ``count`` fresh daemons (each with its own store when
    ``tmp_path`` is given), run the async scenario, always stop them."""
    async def wrapper():
        servers = []
        for index in range(count):
            kwargs = dict(server_kwargs)
            if tmp_path is not None:
                kwargs["store"] = ResultStore(tmp_path / f"daemon{index}")
            server = EvalServer(port=0, **kwargs)
            await server.start()
            servers.append(server)
        try:
            return await scenario(servers)
        finally:
            for server in servers:
                await server.stop()
    return asyncio.run(wrapper())


def addresses(servers):
    return [f"http://127.0.0.1:{server.port}" for server in servers]


class TestPartitioning:
    def test_partition_is_disjoint_cover(self):
        tasks = SPEC.tasks()
        for hosts in (1, 2, 3, 5):
            parts = partition_tasks(tasks, hosts)
            flat = [task for part in parts for task in part]
            # Every cell lands in exactly one partition...
            assert sorted(flat, key=task_digest) \
                == sorted(tasks, key=task_digest)
            # ...the one its digest prefix names.
            for index, part in enumerate(parts):
                for task in part:
                    assert partition_index(task, hosts) == index

    def test_partition_is_deterministic_across_calls(self):
        tasks = SPEC.tasks()
        first = partition_tasks(tasks, 3)
        assert partition_tasks(list(reversed(tasks)), 3) \
            == [list(reversed(part)) for part in first]

    def test_two_host_fleet_has_both_partitions_populated(self):
        # The killed-host test below only exercises re-dispatch if the
        # victim actually owns cells; pin that property of SPEC here so
        # a spec edit cannot silently hollow the test out.
        parts = partition_tasks(SPEC.tasks(), 2)
        assert all(part for part in parts)

    def test_zero_partitions_rejected(self):
        with pytest.raises(SimulationError):
            partition_tasks(SPEC.tasks(), 0)


class TestFabricDispatch:
    def test_matches_serial_run_sweep_bit_identical(self, tmp_path):
        local = ResultStore(tmp_path / "local")

        async def scenario(servers):
            return await run_fabric_async(SPEC, addresses(servers),
                                          store=local)
        result = run_fleet(scenario, tmp_path=tmp_path)
        serial = run_sweep(SPEC)
        # Dataclass eq: every field of every cell, including the full
        # per-request latency lists, bit-for-bit.
        assert result.results == serial.results
        assert result.completed == SPEC.num_cells
        assert result.store_hits == 0
        assert sum(result.per_host.values()) == result.completed
        assert not result.dead_hosts

    def test_local_store_write_through_enables_warm_resume(self, tmp_path):
        local = ResultStore(tmp_path / "local")

        async def scenario(servers):
            first = await run_fabric_async(SPEC, addresses(servers),
                                           store=local)
            warm = await run_fabric_async(SPEC, addresses(servers),
                                          store=local)
            return first, warm
        first, warm = run_fleet(scenario, tmp_path=tmp_path)
        assert warm.completed == 0
        assert warm.store_hits == SPEC.num_cells
        assert warm.results == first.results

    def test_killed_host_redispatches_and_stays_bit_identical(
            self, tmp_path, monkeypatch):
        """The acceptance pin: kill one daemon mid-sweep; the fabric
        re-dispatches its unfinished partition to the survivor and the
        final results are still bit-identical to a serial run."""
        real = engine.evaluate_cell

        def delayed(task):
            time.sleep(0.15)     # long enough for the kill to land
            return real(task)    # mid-run, not before or after
        monkeypatch.setattr(engine, "evaluate_cell", delayed)
        local = ResultStore(tmp_path / "local")

        async def scenario(servers):
            survivor, victim = servers

            async def kill_after_first_compute():
                while victim.stats_snapshot()["computed"] < 1:
                    await asyncio.sleep(0.01)
                await victim.stop()

            killer = asyncio.ensure_future(kill_after_first_compute())
            try:
                return await run_fabric_async(
                    SPEC, addresses(servers), store=local,
                    window=1, retries=0, backoff=0.01, cell_attempts=4)
            finally:
                killer.cancel()
        result = run_fleet(scenario, tmp_path=tmp_path, workers=1)
        monkeypatch.setattr(engine, "evaluate_cell", real)
        serial = run_sweep(SPEC)
        assert result.results == serial.results
        assert len(result.dead_hosts) == 1
        assert result.redispatched >= 1
        # The survivor absorbed the whole grid (minus what the victim
        # finished before dying).
        assert result.completed >= SPEC.num_cells - 1

    def test_whole_fleet_dead_raises_structured_error(self, tmp_path):
        local = ResultStore(tmp_path / "local")

        async def scenario(servers):
            victim = servers[0]
            address = f"http://127.0.0.1:{victim.port}"
            await victim.stop()
            with pytest.raises(SimulationError):
                await run_fabric_async(SPEC, [address], store=local,
                                       retries=0, backoff=0.01,
                                       cell_attempts=2)
        run_fleet(scenario, count=1)

    def test_cell_attempt_budget_exhaustion_fails_the_run(
            self, monkeypatch):
        def broken(task):
            raise SimulationError("injected compute failure")
        monkeypatch.setattr(engine, "evaluate_cell", broken)

        async def scenario(servers):
            with pytest.raises(SimulationError, match="attempts"):
                await run_fabric_async(SPEC, addresses(servers),
                                       retries=0, backoff=0.0,
                                       cell_attempts=2)
        run_fleet(scenario, workers=1)

    def test_federated_stats_tolerates_unreachable_host(self, tmp_path):
        async def scenario(servers):
            live = addresses(servers)[0]
            dead = servers[1]
            dead_address = f"http://127.0.0.1:{dead.port}"
            await run_fabric_async(SPEC, [live])
            await dead.stop()
            return await federate_stats_async(
                [live, dead_address], retries=0, backoff=0.01)
        report = run_fleet(scenario, count=2)
        assert report["reachable"] == 1
        assert report["unreachable"] == 1
        assert report["totals"]["computed"] == SPEC.num_cells
        assert "error" in list(report["hosts"].values())[1]


TASK = EvalTask("EPCM-MM", "gcc", 300, 7)
OTHER = EvalTask("EPCM-MM", "mcf", 300, 7)


class TestStoreMerge:
    def test_merge_copies_new_entries_bit_identical(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        stats = evaluate_cell(TASK)
        source.put(TASK, stats)
        dest = ResultStore(tmp_path / "dst")
        report = dest.merge_from(source)
        assert len(report.merged) == 1 and not report.conflicts
        assert dest.get(TASK) == stats
        again = dest.merge_from(source)
        assert again.already_present == 1 and not again.merged

    def test_merge_upgrades_archival_entries(self, tmp_path):
        stats = evaluate_cell(TASK)
        archival = ResultStore(tmp_path / "arch")
        archival.put(TASK, stats, latencies=False)
        full = ResultStore(tmp_path / "full")
        full.put(TASK, stats, latencies=True)
        dest = ResultStore(tmp_path / "dst")
        dest.merge_from(archival)
        report = dest.merge_from(full)
        assert len(report.upgraded) == 1
        # The richer entry won: per-request latencies restored exactly.
        assert dest.get(TASK) == stats

    def test_merge_never_downgrades_to_archival(self, tmp_path):
        stats = evaluate_cell(TASK)
        full = ResultStore(tmp_path / "full")
        full.put(TASK, stats, latencies=True)
        archival = ResultStore(tmp_path / "arch")
        archival.put(TASK, stats, latencies=False)
        dest = ResultStore(tmp_path / "dst")
        dest.merge_from(full)
        report = dest.merge_from(archival)
        assert report.already_present == 1 and not report.upgraded
        assert dest.get(TASK) == stats

    def test_merge_detects_digest_collision_conflicts(self, tmp_path):
        stats = evaluate_cell(TASK)
        source = ResultStore(tmp_path / "src")
        source.put(TASK, stats)
        dest = ResultStore(tmp_path / "dst")
        dest.put(TASK, stats)
        # Tamper the destination payload in place: same digest, a
        # different stats payload — what divergent simulator builds
        # sharing a RESULTS_VERSION would produce.
        path = dest.path_for(TASK)
        entry = json.loads(path.read_text())
        entry["stats"]["num_reads"] = entry["stats"]["num_reads"] + 1
        path.write_text(json.dumps(entry))
        report = dest.merge_from(source)
        assert report.conflicts == [task_digest(TASK)]
        assert not report.merged and not report.replaced_torn
        # The conflicting entry was left exactly as it was, not
        # clobbered by the source's version.
        assert json.loads(path.read_text()) == entry

    def test_merge_replaces_torn_destination_entries(self, tmp_path):
        stats = evaluate_cell(TASK)
        source = ResultStore(tmp_path / "src")
        source.put(TASK, stats)
        dest = ResultStore(tmp_path / "dst")
        dest.put(TASK, stats)
        dest.path_for(TASK).write_text('{"torn')
        report = dest.merge_from(source)
        assert len(report.replaced_torn) == 1
        assert dest.get(TASK) == stats

    def test_merge_skips_torn_source_entries(self, tmp_path):
        stats = evaluate_cell(TASK)
        source = ResultStore(tmp_path / "src")
        source.put(TASK, stats)
        source.put(OTHER, evaluate_cell(OTHER))
        source.path_for(OTHER).write_text('{"torn')
        dest = ResultStore(tmp_path / "dst")
        report = dest.merge_from(source)
        assert len(report.merged) == 1
        assert len(report.skipped_unreadable) == 1
        assert dest.get(TASK) == stats and dest.get(OTHER) is None

    def test_dry_run_writes_nothing(self, tmp_path):
        source = ResultStore(tmp_path / "src")
        source.put(TASK, evaluate_cell(TASK))
        dest = ResultStore(tmp_path / "dst")
        report = dest.merge_from(source, dry_run=True)
        assert report.dry_run and len(report.merged) == 1
        assert len(dest) == 0

    def test_merged_daemon_stores_pass_warm_no_compute(self, tmp_path):
        """The write-back half of the acceptance pin: after a fabric
        run, merging the daemons' stores yields a store a serial sweep
        reads entirely warm, bit-identical to a cold serial run."""
        async def scenario(servers):
            return await run_fabric_async(SPEC, addresses(servers))
        result = run_fleet(scenario, tmp_path=tmp_path)
        merged = ResultStore(tmp_path / "merged")
        for index in range(2):
            report = merged.merge_from(tmp_path / f"daemon{index}")
            assert not report.conflicts
        assert len(merged) == SPEC.num_cells
        warm = run_sweep(SPEC, store=merged, resume=True)
        assert warm.computed == 0
        assert warm.results == result.results == run_sweep(SPEC).results

    def test_merge_stores_cli_reports_conflicts_nonzero(self, tmp_path,
                                                        capsys):
        from repro.sim.__main__ import merge_main
        stats = evaluate_cell(TASK)
        source = ResultStore(tmp_path / "src")
        source.put(TASK, stats)
        dest = ResultStore(tmp_path / "dst")
        dest.put(TASK, stats)
        assert merge_main(["--into", str(tmp_path / "dst"),
                           str(tmp_path / "src")]) == 0
        path = dest.path_for(TASK)
        entry = json.loads(path.read_text())
        entry["stats"]["num_reads"] += 1
        path.write_text(json.dumps(entry))
        assert merge_main(["--into", str(tmp_path / "dst"),
                           str(tmp_path / "src")]) == 1
        assert "conflict" in capsys.readouterr().err.lower()
