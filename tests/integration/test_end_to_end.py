"""Cross-module integration: the paper's headline claims, end to end.

These tests run the same pipelines as the benchmarks (at reduced trace
sizes) and assert the *shape* results the paper reports.  They are the
strongest statement the reproduction makes: material model -> device ->
architecture -> simulator all have to cooperate for these to pass.
"""

import pytest

from repro.exp.fig9 import run as run_fig9
from repro.exp.fig10 import run as run_fig10
from repro.sim.factory import ARCHITECTURE_NAMES


@pytest.fixture(scope="module")
def fig9():
    return run_fig9(num_requests=4000)


class TestFig9Headlines:
    def test_comet_has_highest_bandwidth(self, fig9):
        comet_bw = fig9.summary["COMET"]["bandwidth_gbps"]
        for arch in ARCHITECTURE_NAMES:
            if arch != "COMET":
                assert comet_bw > fig9.summary[arch]["bandwidth_gbps"]

    def test_bandwidth_vs_cosmos_near_paper(self, fig9):
        """Paper: 5.1x (Sec. IV.C) to 7.1x (abstract)."""
        assert 3.5 <= fig9.bw_ratio("COSMOS") <= 10.0

    def test_epb_vs_cosmos_near_paper(self, fig9):
        """Paper: 12.9x (Sec. IV.C) to 15.1x (abstract)."""
        assert 9.0 <= fig9.epb_ratio("COSMOS") <= 25.0

    def test_latency_advantage_over_cosmos(self, fig9):
        """Paper: 3x lower; we accept any clear (>2x) advantage."""
        assert fig9.latency_ratio("COSMOS") > 2.0

    def test_bw_per_epb_vs_cosmos_near_paper(self, fig9):
        """Paper: 65.8x."""
        assert 40.0 <= fig9.bw_per_epb_ratio("COSMOS") <= 200.0

    def test_2d_ddr3_is_worst_dram(self, fig9):
        """Paper ordering: 2D_DDR3 trails every other DRAM in bandwidth."""
        ddr3 = fig9.summary["2D_DDR3"]["bandwidth_gbps"]
        for arch in ("2D_DDR4", "3D_DDR3", "3D_DDR4"):
            assert fig9.summary[arch]["bandwidth_gbps"] > ddr3

    def test_3d_ddr4_is_best_electronic(self, fig9):
        best = fig9.summary["3D_DDR4"]
        for arch in ("2D_DDR3", "2D_DDR4", "3D_DDR3", "EPCM-MM"):
            assert best["bandwidth_gbps"] \
                >= fig9.summary[arch]["bandwidth_gbps"]
            assert best["epb_pj"] <= fig9.summary[arch]["epb_pj"]

    def test_3d_and_pcm_beat_photonics_on_epb(self, fig9):
        """Section IV.C: the 3D/PCM electronic parts outperform both
        photonic systems on raw EPB."""
        for electronic in ("3D_DDR3", "3D_DDR4", "EPCM-MM"):
            for photonic in ("COMET", "COSMOS"):
                assert fig9.summary[electronic]["epb_pj"] \
                    < fig9.summary[photonic]["epb_pj"]

    def test_comet_epb_far_below_cosmos(self, fig9):
        assert fig9.summary["COMET"]["epb_pj"] * 5 \
            < fig9.summary["COSMOS"]["epb_pj"]


class TestFig10Headlines:
    @pytest.fixture(scope="class")
    def fig10(self):
        return run_fig10(num_requests=2500)

    def test_comet_wins_both_models(self, fig10):
        for model in ("DeiT-T", "DeiT-B"):
            per_mem = fig10.results[model]
            comet = per_mem["COMET"].system_epb_pj
            for memory, result in per_mem.items():
                if memory != "COMET":
                    assert result.system_epb_pj > comet

    def test_ratios_in_paper_band(self, fig10):
        """Paper: 1.3-2.06x vs 3D_DDR4; 1.45-2.7x vs COSMOS."""
        for model in ("DeiT-T", "DeiT-B"):
            assert 1.05 <= fig10.ratio(model, "3D_DDR4") <= 3.0
            assert 1.2 <= fig10.ratio(model, "COSMOS") <= 40.0


class TestDeterminism:
    def test_fig9_reproducible(self):
        a = run_fig9(num_requests=800)
        b = run_fig9(num_requests=800)
        assert a.summary["COMET"]["bandwidth_gbps"] \
            == pytest.approx(b.summary["COMET"]["bandwidth_gbps"], rel=1e-12)
