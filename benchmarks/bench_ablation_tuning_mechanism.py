"""Ablation — electro-optic versus thermal microring tuning.

Section II.B's core circuit-level decision: thermal tuning is us-scale and
would "severely increase the latency and reduce achievable bandwidth";
COMET pays 0.31 dB extra through loss for ns-scale EO tuning.  This bench
swaps the access mechanism and measures what the paper only argues.
"""

import dataclasses

from repro.config import TABLE_I
from repro.photonics.ring import RingTuningModel, TuningMechanism
from repro.sim import MainMemorySimulator
from repro.sim.factory import build_comet_device


def bench_ablation_eo_vs_thermal_tuning(benchmark):
    eo = RingTuningModel.from_parameters(TuningMechanism.ELECTRO_OPTIC)
    thermal = RingTuningModel.from_parameters(TuningMechanism.THERMAL)

    def run():
        base = build_comet_device()
        # Thermal access control replaces the 2 ns EO step of every access
        # with the us-scale thermal settle (reads and writes alike).
        extra_ns = (thermal.latency_s - eo.latency_s) * 1e9
        slow = dataclasses.replace(
            base,
            name="COMET-thermal",
            read_occupancy_ns=base.read_occupancy_ns + extra_ns,
            write_occupancy_ns=base.write_occupancy_ns + extra_ns,
        )
        fast_stats = MainMemorySimulator(base).run_workload("milc", 4000)
        slow_stats = MainMemorySimulator(slow).run_workload("milc", 4000)
        return fast_stats, slow_stats

    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  EO tuning:      {fast.bandwidth_gbps:7.2f} GB/s, "
          f"{fast.avg_latency_ns:8.1f} ns")
    print(f"  thermal tuning: {slow.bandwidth_gbps:7.2f} GB/s, "
          f"{slow.avg_latency_ns:8.1f} ns")

    # The paper's argument, quantified: thermal tuning cripples both
    # bandwidth and latency by an order of magnitude or more.
    assert fast.bandwidth_gbps > 10 * slow.bandwidth_gbps
    assert slow.avg_latency_ns > 5 * fast.avg_latency_ns
    # The price of EO tuning is only ~0.3 dB per traversal.
    assert eo.through_loss_db - thermal.through_loss_db < 0.35
