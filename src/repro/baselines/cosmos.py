"""COSMOS baseline: the re-modeled photonic crossbar memory (Section IV.B).

COSMOS [20] stores OPCM cells at bare waveguide crossings.  The paper keeps
its crossbar structure but corrects the design assumptions so readouts are
actually possible:

* **Energy delivery** — the GST cells of [17] need 5 mW / 50–150 ns pulses
  (250–750 pJ), not the 0.5 mW COSMOS assumed; timings are stretched
  instead of power raised (Table II: write 1.6 us, erase 250 ns).
* **Bit density** — the −18 dB write crosstalk shifts neighbours by ~8 %
  crystalline fraction, so the 16-level (4-bit) cell is reduced to 4
  asymmetric levels (0.99 / 0.90 / 0.81 / 0.72 transmission, 9 % spacing):
  2 bits per cell.  Organization becomes (16 x 16384 x 16384 x 2) with
  512 x 32 subarrays on both axes.
* **Loss management** — worst-case 1.4 dB per crystalline-ish cell in the
  32-cell path means 6 SOA arrays per subarray plus dedicated passive
  in/out ports, and PCM row-access switches (borrowed from COMET) to avoid
  splitter-tree laser blow-up.

The power model mirrors :class:`repro.arch.power.CometPowerModel` but adds
what the crossbar forces on COSMOS: simultaneous row *and* column access
wavelengths at 5 mW, and a concurrent erase/rewrite optical stream — the
subtractive read flow keeps one alive whenever the memory is active.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..arch.organization import MemoryOrganization
from ..arch.power import PowerBreakdown
from ..config import COSMOS_TIMINGS, OpticalParameters, PhotonicMemoryTimings, TABLE_I
from ..errors import ConfigError
from ..photonics.laser import LaserSource
from ..photonics.losses import LossBudget

#: The 4 asymmetric transmission levels selected in Section IV.B.
COSMOS_LEVELS: Tuple[float, float, float, float] = (0.99, 0.90, 0.81, 0.72)

#: Worst-case per-cell in-path loss (transmission level 0.72 -> 1.4 dB).
COSMOS_WORST_CELL_LOSS_DB = -10.0 * math.log10(COSMOS_LEVELS[-1])

#: SOA arrays per subarray (row + column loss compensation, Section IV.B).
COSMOS_SOA_ARRAYS_PER_SUBARRAY = 6

#: Cell write pulse: 5 mW for 150 ns -> 750 pJ upper bound from [17].
COSMOS_WRITE_PULSE_POWER_W = 5e-3
COSMOS_WRITE_PULSE_ENERGY_J = 750e-12


@dataclass(frozen=True)
class CosmosPowerModel:
    """Operational power stack of the re-modeled COSMOS."""

    organization: MemoryOrganization
    params: OpticalParameters = TABLE_I
    cell_power_w: float = COSMOS_WRITE_PULSE_POWER_W
    link_length_cm: float = 2.0
    link_bends: int = 4
    #: MDM degree of the (generously lossless) COSMOS links.
    mdm_degree: int = 16

    def access_path_budget(self) -> LossBudget:
        """Laser-to-subarray-input budget (dedicated ports, PCM switches)."""
        p = self.params
        budget = LossBudget("cosmos-laser-to-subarray")
        budget.add("coupling", p.coupling_loss_db)
        budget.add("propagation", p.propagation_loss_db_per_cm,
                   self.link_length_cm)
        budget.add("bending", p.bending_loss_db_per_90deg, self.link_bends)
        budget.add("PCM row-access switch", p.pcm_switch_loss_db)
        budget.add("subarray in-port MR drop", p.mr_drop_loss_db)
        budget.add("subarray out-port MR drop", p.mr_drop_loss_db)
        return budget

    # -- components ------------------------------------------------------

    def laser_power_w(self) -> float:
        """Wall-plug laser power.

        The crossbar write needs the row *and* column wavelengths present
        simultaneously (Fig. 1(a)), so each bank drives
        ``Mr + Mc`` wavelengths at the cell power; the subtractive read
        flow additionally keeps an erase/rewrite stream of ``Mc``
        wavelengths alive concurrently with reads.
        """
        org = self.organization
        budget = self.access_path_budget()
        per_wavelength = budget.required_launch_power_w(self.cell_power_w)
        active_wavelengths = (org.rows_per_subarray + org.cols_per_subarray
                              + org.cols_per_subarray)
        laser = LaserSource(
            wall_plug_efficiency=self.params.laser_wall_plug_efficiency,
            max_optical_power_per_channel_w=1.0,
        )
        total_optical = per_wavelength * active_wavelengths * org.banks
        return laser.electrical_power_w(total_optical)

    def soa_power_w(self) -> float:
        """6 SOA arrays x Mc SOAs per accessed subarray, per bank."""
        org = self.organization
        soas_per_subarray = (COSMOS_SOA_ARRAYS_PER_SUBARRAY
                             * org.cols_per_subarray)
        return soas_per_subarray * org.banks * self.params.intra_soa_power_w

    def tuning_power_w(self) -> float:
        """Port-MR bias (passive rings hold no tuning power)."""
        return 0.0

    def breakdown(self, name: str = "COSMOS") -> PowerBreakdown:
        return PowerBreakdown(
            name=name,
            laser_w=self.laser_power_w(),
            soa_w=self.soa_power_w(),
            tuning_w=self.tuning_power_w(),
        )


class CosmosArchitecture:
    """The re-modeled COSMOS instance used in the Fig. 8/9 comparisons."""

    def __init__(
        self,
        params: OpticalParameters = TABLE_I,
        timings: PhotonicMemoryTimings = COSMOS_TIMINGS,
        subtractive_read: bool = True,
    ) -> None:
        self.params = params
        self.timings = timings
        self.subtractive_read = subtractive_read
        self.organization = MemoryOrganization.cosmos()
        self.power_model = CosmosPowerModel(self.organization, params=params)

    @property
    def bits_per_cell(self) -> int:
        return self.organization.bits_per_cell

    @property
    def capacity_bytes(self) -> int:
        return self.organization.capacity_bytes

    def level_spacing(self) -> float:
        """Transmission spacing of the asymmetric level set (9 %)."""
        gaps = [COSMOS_LEVELS[i] - COSMOS_LEVELS[i + 1]
                for i in range(len(COSMOS_LEVELS) - 1)]
        if max(gaps) - min(gaps) > 1e-9:
            raise ConfigError("COSMOS level set must be equally spaced")
        return gaps[0]

    def effective_read_occupancy_ns(self) -> float:
        """Bank occupancy of one read.

        With the subtractive flow a read is: subarray read, row erase,
        subarray read again (the subtraction happens at the controller).
        """
        t = self.timings
        if not self.subtractive_read:
            return t.read_time_ns
        return 2.0 * t.read_time_ns + t.erase_time_ns

    def effective_write_occupancy_ns(self) -> float:
        """Bank occupancy of one write: erase then program."""
        t = self.timings
        return t.erase_time_ns + t.write_time_ns

    def write_energy_per_line_j(self) -> float:
        """Optical pulse energy to write one line (erase + program)."""
        cells = self.timings.cache_line_bits // self.bits_per_cell
        return 2.0 * cells * COSMOS_WRITE_PULSE_ENERGY_J

    def power_breakdown(self) -> PowerBreakdown:
        return self.power_model.breakdown()

    def describe(self) -> str:
        org = self.organization
        return (f"COSMOS {org.describe()}: {org.capacity_bytes / 2**30:.0f} GiB/"
                f"device, {len(COSMOS_LEVELS)} levels/cell, "
                f"{self.power_breakdown().total_w:.1f} W operational")


def cosmos_power_breakdown(params: OpticalParameters = TABLE_I) -> PowerBreakdown:
    """Convenience: the Fig. 8 COSMOS power stack."""
    return CosmosArchitecture(params=params).power_breakdown()
