"""Device models and the controller's scheduling semantics."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim.controller import MemoryController
from repro.sim.devices import (
    EnergyModel,
    MemoryDeviceModel,
    RefreshSpec,
    RowBufferTiming,
)
from repro.sim.request import MemRequest, OpType


def simple_device(**overrides):
    base = dict(
        name="test",
        line_bytes=128,
        banks=2,
        data_burst_ns=4.0,
        interface_delay_ns=10.0,
        read_occupancy_ns=10.0,
        write_occupancy_ns=100.0,
        shared_bus=False,
        energy=EnergyModel(read_energy_j=1e-9, write_energy_j=5e-9),
    )
    base.update(overrides)
    return MemoryDeviceModel(**base)


def read_at(t, address=0):
    return MemRequest(address=address, op=OpType.READ, arrival_ns=t)


def write_at(t, address=0):
    return MemRequest(address=address, op=OpType.WRITE, arrival_ns=t)


class TestDeviceValidation:
    def test_needs_timing_definition(self):
        with pytest.raises(ConfigError):
            simple_device(read_occupancy_ns=None, write_occupancy_ns=None)

    def test_rejects_double_definition(self):
        with pytest.raises(ConfigError):
            simple_device(row_buffer=RowBufferTiming(10, 10, 10, 10, 4096))

    def test_refresh_validation(self):
        with pytest.raises(ConfigError):
            RefreshSpec(interval_ns=100.0, duration_ns=100.0)

    def test_bank_mapping_line_interleave(self):
        device = simple_device()
        assert device.bank_of(read_at(0.0, address=0)) == 0
        assert device.bank_of(read_at(0.0, address=128)) == 1
        assert device.bank_of(read_at(0.0, address=256)) == 0

    def test_bank_mapping_row_interleave(self):
        device = simple_device(
            read_occupancy_ns=None, write_occupancy_ns=None,
            row_buffer=RowBufferTiming(10, 10, 10, 10, 4096))
        assert device.bank_of(read_at(0.0, address=0)) == 0
        assert device.bank_of(read_at(0.0, address=4096)) == 1


class TestControllerScheduling:
    def test_single_read_latency(self):
        controller = MemoryController(simple_device())
        stats = controller.run([read_at(0.0)])
        # 10 (array) + 4 (burst) + 10 (interface)
        assert stats.latencies_ns[0] == pytest.approx(24.0)

    def test_same_bank_serializes(self):
        controller = MemoryController(simple_device())
        stats = controller.run([read_at(0.0, 0), read_at(0.0, 256)])
        assert stats.latencies_ns[1] > stats.latencies_ns[0]

    def test_different_banks_parallel(self):
        controller = MemoryController(simple_device())
        stats = controller.run([read_at(0.0, 0), read_at(0.0, 128)])
        assert stats.latencies_ns[0] == pytest.approx(stats.latencies_ns[1])

    def test_shared_bus_serializes_bursts(self):
        controller = MemoryController(simple_device(shared_bus=True))
        stats = controller.run([read_at(0.0, 0), read_at(0.0, 128)])
        assert stats.latencies_ns[1] == pytest.approx(
            stats.latencies_ns[0] + 4.0)

    def test_bus_turnaround_penalty(self):
        # Fast writes so the shared-bus turnaround is the binding delay.
        with_ta = simple_device(shared_bus=True, bus_turnaround_ns=6.0,
                                write_occupancy_ns=10.0)
        without_ta = simple_device(shared_bus=True, write_occupancy_ns=10.0)
        def requests():
            return [read_at(0.0, 0), write_at(0.0, 128)]
        latency_ta = MemoryController(with_ta).run(requests()).latencies_ns[1]
        latency_plain = MemoryController(without_ta).run(
            requests()).latencies_ns[1]
        assert latency_ta == pytest.approx(latency_plain + 6.0)

    def test_writes_slower_than_reads(self):
        controller = MemoryController(simple_device())
        stats = controller.run([write_at(0.0)])
        assert stats.latencies_ns[0] == pytest.approx(114.0)

    def test_queue_throttling_stretches_time(self):
        device = simple_device()
        burst = [read_at(0.0, 0) for _ in range(10)]
        deep = MemoryController(device, queue_depth=10).run(burst)
        shallow = MemoryController(device, queue_depth=1).run(
            [read_at(0.0, 0) for _ in range(10)])
        # Same service capacity, but the shallow queue bounds latency.
        assert max(shallow.latencies_ns) < max(deep.latencies_ns)

    def test_requests_must_be_sorted(self):
        controller = MemoryController(simple_device())
        with pytest.raises(SimulationError):
            controller.run([read_at(10.0), read_at(0.0)])

    def test_empty_stream_rejected(self):
        with pytest.raises(SimulationError):
            MemoryController(simple_device()).run([])

    def test_burst_overlap_frees_bank_early(self):
        overlap = simple_device(burst_overlaps_array=True)
        serial = simple_device(burst_overlaps_array=False)
        requests = [read_at(0.0, 0), read_at(0.0, 256)]
        t_overlap = MemoryController(overlap).run(
            [read_at(0.0, 0), read_at(0.0, 256)]).latencies_ns[1]
        t_serial = MemoryController(serial).run(requests).latencies_ns[1]
        assert t_overlap < t_serial


class TestRowBufferAndRefresh:
    def make_dram(self):
        return MemoryDeviceModel(
            name="dram",
            line_bytes=128,
            banks=2,
            data_burst_ns=10.0,
            interface_delay_ns=0.0,
            row_buffer=RowBufferTiming(
                t_rcd_ns=15.0, t_rp_ns=15.0, t_cas_ns=15.0, t_wr_ns=15.0,
                row_size_bytes=4096),
            refresh=RefreshSpec(interval_ns=7800.0, duration_ns=260.0,
                                energy_j=1e-9),
            shared_bus=True,
            energy=EnergyModel(background_power_w=1.0,
                               read_energy_j=1e-9, write_energy_j=1e-9),
        )

    def test_row_hit_faster_than_miss(self):
        controller = MemoryController(self.make_dram())
        stats = controller.run([read_at(300.0, 0), read_at(600.0, 128)])
        assert stats.row_hits == 1
        assert stats.row_misses == 1
        assert stats.latencies_ns[1] < stats.latencies_ns[0]

    def test_refresh_blocks_start(self):
        controller = MemoryController(self.make_dram())
        # Arrives inside the first refresh window [0, 260).
        stats = controller.run([read_at(100.0, 0)])
        assert stats.latencies_ns[0] > 160.0  # pushed past the window

    def test_refresh_energy_counted(self):
        controller = MemoryController(self.make_dram())
        trace = [read_at(float(t), 0) for t in range(0, 20000, 500)]
        stats = controller.run(trace)
        assert stats.refresh_count >= 2
        assert stats.refresh_energy_j == pytest.approx(
            stats.refresh_count * 1e-9)


class TestEnergyAccounting:
    def test_op_energy_summed(self):
        controller = MemoryController(simple_device())
        stats = controller.run([read_at(0.0, 0), write_at(50.0, 128)])
        assert stats.op_energy_j == pytest.approx(6e-9)

    def test_active_energy_gated_by_busy_fraction(self):
        device = simple_device(
            energy=EnergyModel(active_power_w=10.0))
        controller = MemoryController(device)
        stats = controller.run([read_at(0.0)])
        # busy 14 ns of 24 ns total across 2 banks -> active = 7 ns.
        assert stats.active_time_ns == pytest.approx(7.0)
        assert stats.active_energy_j == pytest.approx(10.0 * 7e-9)
