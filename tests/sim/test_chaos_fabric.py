"""Fault injection against real daemon subprocesses.

The tentpole acceptance pin lives here: a fabric run under a *seeded*
chaos schedule — at least one SIGKILL + rejoin and one mid-run host
join, with the victim and the injection points drawn from the seed —
still produces results bit-identical to a serial :func:`run_sweep`.
The in-process membership scenarios are in
``test_fabric_membership.py``; these tests pay for subprocesses to get
the failure modes mocks cannot fake: SIGKILLed sockets, SIGSTOPped
(wedged-but-listening) processes, and severed TCP transports.
"""

import threading

import pytest

from repro.sim.chaos import Blackhole, ChaosDaemon, ChaosSchedule
from repro.sim.fabric import HostFileMembership, run_fabric
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec, run_sweep

#: 16 cells: enough runway for a kill, a ~1 s subprocess restart, a
#: re-admission and a join to all land mid-run at chaos pacing.
SPEC16 = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                   workloads=("gcc", "lbm", "mcf", "milc"),
                   num_requests=(300,), seeds=(7, 11),
                   queue_depths=(None,))

#: 8 cells for the single-fault scenarios.
SPEC8 = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                  workloads=("gcc", "lbm", "mcf", "milc"),
                  num_requests=(300,), seeds=(7,), queue_depths=(None,))

#: No client retries and a fast prober: fault verdicts land within a
#: probe tick of the injection instead of stretching the test.
FABRIC = dict(window=1, retries=0, backoff=0.05, cell_attempts=8,
              probe_interval=0.1, probe_timeout=0.5, timeout=60.0)


def test_seeded_kill_rejoin_and_midrun_join_bit_identical(tmp_path):
    """The acceptance pin.  ChaosSchedule.seeded draws a victim, a
    SIGKILL point, its restart and a join point from the seed; the
    fabric must absorb all of it and match a serial run bit for bit,
    with the rejoin and the join both visible in provenance."""
    schedule = ChaosSchedule.seeded(seed=1234,
                                    num_cells=SPEC16.num_cells,
                                    num_daemons=2)
    hostfile = tmp_path / "hosts.txt"
    progress = []
    daemons = []
    spare = None
    try:
        daemons = [ChaosDaemon(cell_delay=0.3,
                               store=str(tmp_path / f"daemon{index}"))
                   for index in range(2)]
        spare = ChaosDaemon(cell_delay=0.3,
                            store=str(tmp_path / "spare"))
        hostfile.write_text("".join(d.address + "\n" for d in daemons))

        def join_spare(_target):
            hostfile.write_text("".join(
                d.address + "\n" for d in (*daemons, spare)))

        schedule.run_in_thread(
            progress=lambda: len(progress),
            actions={"kill": lambda t: daemons[t].kill(),
                     "restart": lambda t: daemons[t].restart(),
                     "join": join_spare})
        local = ResultStore(tmp_path / "local")
        result = run_fabric(
            SPEC16, membership=HostFileMembership(hostfile), store=local,
            on_result=lambda task, stats: progress.append(task), **FABRIC)
        schedule.stop()    # surfaces any failed injection
    finally:
        for daemon in (*daemons, *(d for d in [spare] if d)):
            daemon.close()
    # Every scheduled fault actually fired mid-run.
    assert [event.kind for event in schedule.fired] \
        == [event.kind for event in schedule.events]
    victim = daemons[schedule.events[0].target]
    assert victim.address in result.readmitted
    assert spare.address in result.joined
    assert result.results == run_sweep(SPEC16).results
    assert result.completed + result.store_hits == SPEC16.num_cells
    assert sum(result.per_host.values()) == result.completed
    # The reborn victim finished the run as a live member.
    assert victim.address not in result.dead_hosts


def test_sigstop_makes_host_suspect_then_recovers(tmp_path):
    """A wedged-but-listening daemon (SIGSTOP: the kernel still accepts
    TCP on its behalf) must go suspect on a probe timeout, hold new
    dispatches, and come straight back on SIGCONT — without ever being
    declared dead."""
    progress = []
    events = []
    daemons = []
    try:
        daemons = [ChaosDaemon(cell_delay=0.15) for _ in range(2)]
        victim = daemons[1]
        thawed = threading.Event()

        def on_membership(address, old, new, reason):
            events.append((address, old, new))
            if address == victim.address and new == "suspect" \
                    and not thawed.is_set():
                thawed.set()
                victim.sigcont()

        def freeze():
            while not progress:
                thawed.wait(0.01)
            victim.sigstop()

        freezer = threading.Thread(target=freeze, daemon=True)
        freezer.start()
        result = run_fabric(
            SPEC8, [d.address for d in daemons],
            on_result=lambda task, stats: progress.append(task),
            on_membership=on_membership, **FABRIC)
        freezer.join(timeout=10)
    finally:
        for daemon in daemons:
            daemon.close()
    assert (victim.address, "alive", "suspect") in events
    assert (victim.address, "suspect", "alive") in events
    assert not result.dead_hosts and not result.readmitted
    assert result.results == run_sweep(SPEC8).results


def test_blackhole_transport_fault_then_heal_readmits(tmp_path):
    """A severed transport with a perfectly healthy daemon behind it:
    the fabric declares the host dead on the transport failure,
    re-dispatches its queue, then re-admits it once the network heals —
    the network twin of the SIGKILL+restart arc."""
    progress = []
    events = []
    direct = backend = hole = None
    try:
        direct = ChaosDaemon(cell_delay=0.15)
        backend = ChaosDaemon(cell_delay=0.15)
        hole = Blackhole(backend.port)
        healed = threading.Event()

        def on_membership(address, old, new, reason):
            events.append((address, old, new))
            if address == hole.address and new == "dead" \
                    and not healed.is_set():
                healed.set()
                hole.heal()

        def sever():
            while not progress:
                healed.wait(0.01)
            hole.engage()

        severer = threading.Thread(target=sever, daemon=True)
        severer.start()
        result = run_fabric(
            SPEC8, [direct.address, hole.address],
            on_result=lambda task, stats: progress.append(task),
            on_membership=on_membership, **FABRIC)
        severer.join(timeout=10)
    finally:
        for resource in (hole, direct, backend):
            if resource is not None:
                resource.close()
    assert hole.address in result.readmitted
    assert (hole.address, "dead", "rejoining") in events
    assert result.results == run_sweep(SPEC8).results
    assert sum(result.per_host.values()) == result.completed \
        == SPEC8.num_cells


def test_seeded_schedule_is_deterministic():
    first = ChaosSchedule.seeded(seed=99, num_cells=40, num_daemons=3)
    second = ChaosSchedule.seeded(seed=99, num_cells=40, num_daemons=3)
    assert first.events == second.events
    assert {event.kind for event in first.events} \
        == {"kill", "restart", "join"}
    different = ChaosSchedule.seeded(seed=100, num_cells=40, num_daemons=3)
    # Not a guarantee for every seed pair, but pinned for these: the
    # seed actually steers the schedule.
    assert different.events != first.events


def test_chaos_daemon_restart_keeps_port_and_store(tmp_path):
    with ChaosDaemon(store=str(tmp_path / "store")) as daemon:
        port = daemon.port
        assert daemon.ping()
        daemon.kill()
        assert not daemon.ping()
        daemon.restart()
        assert daemon.port == port
        assert daemon.ping()
        assert daemon.stats()["store"]


def test_blackhole_passthrough_engage_heal_cycle():
    with ChaosDaemon() as daemon, Blackhole(daemon.port) as hole:
        from repro.sim.client import EvalClient
        proxied = EvalClient(hole.address, timeout=5.0, retries=0)
        assert proxied.ping()
        hole.engage()
        assert not proxied.ping()
        hole.heal()
        assert proxied.ping()
