"""Property tests for the multi-programmed and phased workload generators.

The invariants the evaluation relies on must hold for *any* seed, not
just the canonical one: arrival monotonicity, address alignment and
bounds, the advertised read mix, program interleaving in the mixes, and
the intensity contrast between phases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.tracegen import (
    MIX_REGION_BYTES,
    MIXED_WORKLOADS,
    PHASED_WORKLOADS,
    SPEC_WORKLOADS,
    WORKLOADS,
    generate_trace_arrays,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)

N = 1600
SETTINGS = dict(max_examples=12, deadline=None)


class TestUniversalInvariants:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_canonical_seed_invariants(self, name):
        trace = generate_trace_arrays(name, N, seed=1)
        assert len(trace) == N
        assert np.all(np.diff(trace.arrivals_ns) >= 0.0)
        assert np.all(trace.arrivals_ns >= 0.0)
        assert np.all(trace.addresses % trace.line_bytes == 0)
        assert np.all(trace.addresses >= 0)

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_mixed_arrivals_sorted_any_seed(self, seed):
        trace = generate_trace_arrays("mix_mcf_lbm", N, seed=seed)
        assert np.all(np.diff(trace.arrivals_ns) >= 0.0)

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_bursty_arrivals_sorted_any_seed(self, seed):
        trace = generate_trace_arrays("bursty", N, seed=seed)
        assert np.all(np.diff(trace.arrivals_ns) >= 0.0)


class TestMixedWorkloads:
    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_programs_stay_in_their_regions(self, seed):
        mix = MIXED_WORKLOADS["mix_libquantum_omnetpp"]
        trace = generate_trace_arrays(mix.name, N, seed=seed)
        regions = trace.addresses // MIX_REGION_BYTES
        assert np.array_equal(np.unique(regions), np.unique(trace.thread_ids))
        for index, component in enumerate(mix.components):
            mask = trace.thread_ids == index
            offsets = trace.addresses[mask] - index * MIX_REGION_BYTES
            assert np.all(offsets >= 0)
            assert np.all(offsets < component.working_set_bytes)

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_both_programs_interleave(self, seed):
        trace = generate_trace_arrays("mix_mcf_lbm", N, seed=seed)
        counts = np.bincount(trace.thread_ids, minlength=2)
        # Even split by construction (+/- the remainder request).
        assert abs(int(counts[0]) - int(counts[1])) <= 1
        # Programs actually interleave in time, not concatenate: the
        # first half of the merged trace contains both.
        assert len(np.unique(trace.thread_ids[: N // 2])) == 2

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_read_fraction_blends_components(self, seed):
        mix = MIXED_WORKLOADS["mix_mcf_lbm"]
        trace = generate_trace_arrays(mix.name, N, seed=seed)
        measured = float(trace.is_read.mean())
        assert measured == pytest.approx(mix.read_fraction, abs=0.05)

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_mix_intensity_exceeds_sparser_program(self, seed):
        """Adding a program always densifies the sparser one's traffic.

        The components contribute N/2 requests each, so the merged span
        is set by the slower program: the mean merged gap lands near
        half that program's inter-arrival — strictly below it.
        """
        trace = generate_trace_arrays("mix_gcc_bwaves", N, seed=seed)
        mean_gap = float(np.diff(trace.arrivals_ns).mean())
        sparser = max(SPEC_WORKLOADS["gcc"].mean_interarrival_ns,
                      SPEC_WORKLOADS["bwaves"].mean_interarrival_ns)
        assert mean_gap < sparser


class TestPhasedWorkloads:
    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_burst_phases_are_denser(self, seed):
        workload = PHASED_WORKLOADS["bursty"]
        trace = generate_trace_arrays("bursty", N, seed=seed)
        phase_of = workload.phase_index(N)
        gaps = np.diff(trace.arrivals_ns)
        burst_gaps = gaps[phase_of[1:] == 0]
        lull_gaps = gaps[phase_of[1:] == 1]
        # 16x nominal intensity contrast; demand at least 4x measured.
        assert burst_gaps.mean() * 4.0 < lull_gaps.mean()

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_checkpoint_dump_is_write_heavy_and_sequential(self, seed):
        workload = PHASED_WORKLOADS["checkpoint"]
        count = 2560   # covers one full compute phase + one full dump
        trace = generate_trace_arrays("checkpoint", count, seed=seed)
        phase_of = workload.phase_index(count)
        dump = phase_of == 1
        compute = phase_of == 0
        assert float(trace.is_read[dump].mean()) < 0.2
        assert float(trace.is_read[compute].mean()) > 0.8
        # The dump streams: most consecutive dump addresses are +1 line.
        lines = trace.addresses // trace.line_bytes
        dump_pairs = dump[1:] & dump[:-1]
        steps = (lines[1:] - lines[:-1])[dump_pairs]
        assert float((steps == 1).mean()) > 0.7

    @given(seed=seeds)
    @settings(**SETTINGS)
    def test_phased_read_fraction_matches_blend(self, seed):
        workload = PHASED_WORKLOADS["checkpoint"]
        trace = generate_trace_arrays("checkpoint", N, seed=seed)
        phase_fracs = np.array([p.read_fraction for p in workload.phases])
        expected = float(phase_fracs[workload.phase_index(N)].mean())
        assert float(trace.is_read.mean()) == pytest.approx(
            expected, abs=0.05)

    def test_phase_index_cycles(self):
        workload = PHASED_WORKLOADS["bursty"]
        phase_of = workload.phase_index(3 * 1024)
        assert phase_of[0] == 0
        assert phase_of[512] == 1
        assert phase_of[1024] == 0       # pattern repeats
        assert set(np.unique(phase_of)) == {0, 1}


class TestDeterminism:
    @pytest.mark.parametrize("name", ["mix_mcf_lbm", "bursty", "checkpoint"])
    def test_same_seed_same_trace(self, name):
        a = generate_trace_arrays(name, 900, seed=11)
        b = generate_trace_arrays(name, 900, seed=11)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.arrivals_ns, b.arrivals_ns)
        assert np.array_equal(a.is_read, b.is_read)

    @pytest.mark.parametrize("name", ["mix_mcf_lbm", "bursty", "checkpoint"])
    def test_different_seed_different_trace(self, name):
        a = generate_trace_arrays(name, 900, seed=1)
        b = generate_trace_arrays(name, 900, seed=2)
        assert not np.array_equal(a.addresses, b.addresses)
