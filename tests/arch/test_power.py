"""COMET power model (Figs. 7/8 components)."""

import pytest

from repro.arch.organization import MemoryOrganization
from repro.arch.power import CometPowerModel, PowerBreakdown, bit_density_study
from repro.config import TABLE_I, replace
from repro.errors import ConfigError


class TestComponents:
    def test_soa_power_formula(self):
        """(B * Mr * Mc / 46) * 1.4 mW, Section III.E verbatim."""
        org = MemoryOrganization.comet(4)
        model = CometPowerModel(org)
        expected = -(-4 * 512 * 256 // 46) * 1.4e-3
        assert model.soa_power_w() == pytest.approx(expected, rel=1e-6)

    def test_tuning_power_formula(self):
        """B * 2 * Mc * P_EO, Section III.E."""
        org = MemoryOrganization.comet(4)
        model = CometPowerModel(org)
        assert model.tuning_power_w() == pytest.approx(
            4 * 2 * 256 * TABLE_I.eo_tuning_power_w)

    def test_laser_power_includes_wall_plug(self):
        org = MemoryOrganization.comet(4)
        model = CometPowerModel(org)
        budget = model.laser_path_budget()
        optical = (model.bank_input_power_w / budget.transmission
                   * org.wavelengths_required * org.banks)
        assert model.laser_power_w() == pytest.approx(
            optical / TABLE_I.laser_wall_plug_efficiency)

    def test_breakdown_total(self):
        model = CometPowerModel(MemoryOrganization.comet(4))
        stack = model.breakdown()
        assert stack.total_w == pytest.approx(
            stack.laser_w + stack.soa_w + stack.tuning_w)

    def test_write_power_mode_costs_more_laser(self):
        org = MemoryOrganization.comet(4)
        read_mode = CometPowerModel(org, bank_input_power_w=1e-3)
        write_mode = CometPowerModel(org, bank_input_power_w=5e-3)
        assert write_mode.laser_power_w() == pytest.approx(
            5 * read_mode.laser_power_w())

    def test_validation(self):
        with pytest.raises(ConfigError):
            CometPowerModel(MemoryOrganization.comet(4),
                            bank_input_power_w=0.0)


class TestFig7Study:
    def test_power_halves_per_density_step(self):
        """Fig. 7's shape: b=1 -> b=2 -> b=4 roughly halves total power."""
        stacks = bit_density_study()
        assert stacks[1].total_w / stacks[2].total_w == pytest.approx(2.0, rel=0.05)
        assert stacks[2].total_w / stacks[4].total_w == pytest.approx(2.0, rel=0.05)

    def test_b4_selected_as_lowest(self):
        stacks = bit_density_study()
        assert min(stacks.values(), key=lambda s: s.total_w) is stacks[4]

    def test_soa_dominates_stack(self):
        """With Table I values the SOA mesh is the largest component."""
        stacks = bit_density_study()
        for stack in stacks.values():
            assert stack.soa_w > stack.laser_w > stack.tuning_w

    def test_parameter_sensitivity(self):
        """Halving SOA power must drop the stack accordingly (ablation)."""
        cheap_soa = replace(TABLE_I, intra_soa_power_w=0.7e-3)
        base = CometPowerModel(MemoryOrganization.comet(4)).breakdown()
        cheap = CometPowerModel(MemoryOrganization.comet(4),
                                params=cheap_soa).breakdown()
        assert cheap.soa_w == pytest.approx(base.soa_w / 2)
        assert cheap.laser_w == pytest.approx(base.laser_w)


class TestBreakdownDataclass:
    def test_as_dict(self):
        stack = PowerBreakdown("X", 1.0, 2.0, 0.5)
        d = stack.as_dict()
        assert d["total"] == pytest.approx(3.5)
        assert set(d) == {"laser", "soa", "tuning", "interface", "total"}
