"""Fig. 4 — optical absorption / transmission contrast vs cell geometry.

Scans GST film thickness and waveguide width for the 2 um cell, reporting
both contrasts, and re-derives the paper's selected star: a ~480 nm-wide,
20 nm-thick film where both contrasts are jointly maximized under the
thermal thickness cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..device.sweep import (
    GeometrySweepPoint,
    geometry_sweep,
    select_design_point,
)
from ..materials import get_material
from .report import print_table


@dataclass
class Fig4Result:
    points: List[GeometrySweepPoint]
    selected: GeometrySweepPoint

    @property
    def selected_thickness_nm(self) -> float:
        return self.selected.thickness_m * 1e9

    @property
    def selected_width_nm(self) -> float:
        return self.selected.width_m * 1e9


def run(widths_nm=(400, 480, 560), thicknesses_nm=(10, 15, 20, 25, 30)) -> Fig4Result:
    """Run the geometry scan (trimmed grid by default for speed)."""
    material = get_material("GST")
    points = geometry_sweep(
        material,
        widths_m=[w * 1e-9 for w in widths_nm],
        thicknesses_m=[t * 1e-9 for t in thicknesses_nm],
    )
    return Fig4Result(points=points, selected=select_design_point(points))


def main() -> Fig4Result:
    result = run()
    rows = []
    for p in result.points:
        star = "*" if p is result.selected else ""
        rows.append([
            f"{p.width_m * 1e9:.0f}", f"{p.thickness_m * 1e9:.0f}",
            f"{p.transmission_contrast:.3f}", f"{p.absorption_contrast:.3f}",
            star,
        ])
    print_table(
        ["width (nm)", "thickness (nm)", "T contrast", "A contrast", "sel"],
        rows, title="Fig. 4 — contrast vs geometry (paper star: 480 nm / 20 nm)",
    )
    return result


if __name__ == "__main__":
    main()
