"""Command-line runner (python -m repro.sim)."""

import json
import tempfile

import pytest

from repro.errors import SimulationError
from repro.sim.__main__ import build_parser, main
from repro.sim.trace import TraceWriter
from repro.sim.tracegen import generate_trace


class TestParser:
    def test_requires_arch(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--workload", "mcf"])

    def test_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--arch", "COMET"])

    def test_workload_and_trace_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--arch", "COMET", "--workload", "mcf", "--trace", "x"])


class TestRuns:
    def test_synthetic_workload_run(self, capsys):
        code = main(["--arch", "COMET", "--workload", "gcc",
                     "--requests", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out
        assert "COMET" in out

    def test_trace_file_run(self, capsys):
        trace = generate_trace("mcf", 500)
        with tempfile.NamedTemporaryFile("w+", suffix=".nvt",
                                         delete=False) as handle:
            path = handle.name
        TraceWriter(path).write(trace)
        code = main(["--arch", "2D_DDR3", "--trace", path])
        assert code == 0
        out = capsys.readouterr().out
        assert "row hit rate" in out

    def test_gated_vs_dram_output_fields(self, capsys):
        main(["--arch", "EPCM-MM", "--workload", "omnetpp",
              "--requests", "500"])
        out = capsys.readouterr().out
        assert "EPB" in out and "p95" in out


class TestGridMode:
    def test_grid_all_architectures(self, capsys):
        code = main(["--arch", "ALL", "--grid", "--requests", "400",
                     "--workloads", "gcc,bursty", "--workers", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "7 architectures x 2 workloads" in out
        assert "COMET" in out and "2D_DDR3" in out

    def test_all_requires_grid(self):
        with pytest.raises(SystemExit):
            main(["--arch", "ALL", "--workload", "mcf"])

    def test_grid_options_rejected_without_grid(self):
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf", "--workers", "4"])
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf",
                  "--workloads", "all"])

    def test_grid_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--grid", "--workloads", "mcf,bogus"])

    def test_new_workloads_run(self, capsys):
        code = main(["--arch", "EPCM-MM", "--workload", "checkpoint",
                     "--requests", "600"])
        assert code == 0
        assert "checkpoint" in capsys.readouterr().out


class TestStoreAndExport:
    GRID = ["--arch", "EPCM-MM", "--grid", "--workloads", "gcc,bursty",
            "--requests", "300"]

    def test_store_then_resume_serves_cached_cells(self, capsys, tmp_path):
        store_dir = str(tmp_path / "grid-store")
        assert main(self.GRID + ["--store", store_dir]) == 0
        cold = capsys.readouterr().out
        assert "0 cached, 2 computed" in cold

        assert main(self.GRID + ["--store", store_dir, "--resume"]) == 0
        warm = capsys.readouterr().out
        assert "2 cached, 0 computed" in warm
        # Identical table modulo the store provenance line.
        def strip(out):
            return [line for line in out.splitlines()
                    if not line.startswith("store")]
        assert strip(warm) == strip(cold)

    def test_export_csv_to_file(self, capsys, tmp_path):
        path = tmp_path / "rows.csv"
        code = main(self.GRID + ["--export", "csv",
                                 "--export-path", str(path)])
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3      # header + 2 cells
        assert lines[0].startswith("architecture,workload,num_requests")

    def test_export_json_to_stdout_is_pure(self, capsys):
        """Exporting to stdout keeps it machine-readable: the whole
        stream parses as JSON, the table goes to stderr."""
        code = main(self.GRID + ["--export", "json"])
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert [row["workload"] for row in payload] == ["gcc", "bursty"]
        assert "BW (GB/s)" in captured.err

    def test_cell_failure_reports_resume_hint(self, capsys, tmp_path,
                                              monkeypatch):
        """A runtime cell failure is not a usage error: exit 1, the
        annotated cell message, and the --resume pointer."""
        from repro.sim import engine as engine_mod

        def explode(task):
            raise SimulationError("device model diverged")

        monkeypatch.setattr(engine_mod, "evaluate_cell", explode)
        code = main(self.GRID + ["--store", str(tmp_path / "s")])
        assert code == 1
        err = capsys.readouterr().err
        assert "usage:" not in err
        assert "EPCM-MM x gcc" in err
        assert "rerun with --resume" in err

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(self.GRID + ["--resume"])

    def test_unwritable_export_path_fails_before_the_sweep(
            self, capsys, tmp_path, monkeypatch):
        """A bad --export-path must be rejected up front, not after the
        whole grid has been computed and is about to be discarded."""
        from repro.sim import sweep as sweep_mod

        def never(*args, **kwargs):
            pytest.fail("sweep ran despite unwritable export path")

        monkeypatch.setattr(sweep_mod, "run_sweep", never)
        with pytest.raises(SystemExit):
            main(self.GRID + ["--export", "csv", "--export-path",
                              str(tmp_path / "missing" / "out.csv")])
        assert "cannot write --export-path" in capsys.readouterr().err

    def test_failed_run_preserves_existing_export(self, tmp_path,
                                                  monkeypatch):
        """An interrupted/failed sweep must not truncate yesterday's
        export file, and must not leave temp litter behind."""
        from repro.sim import sweep as sweep_mod
        target = tmp_path / "fig9.csv"
        target.write_text("yesterday's rows\n")

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(sweep_mod, "run_sweep", interrupted)
        code = main(self.GRID + ["--export", "csv",
                                 "--export-path", str(target)])
        assert code == 130
        assert target.read_text() == "yesterday's rows\n"
        assert list(tmp_path.iterdir()) == [target]   # no temp litter

    def test_export_path_requires_export(self):
        with pytest.raises(SystemExit):
            main(self.GRID + ["--export-path", "out.csv"])

    def test_export_path_directory_rejected_up_front(self, capsys,
                                                     tmp_path, monkeypatch):
        from repro.sim import sweep as sweep_mod

        def never(*args, **kwargs):
            pytest.fail("sweep ran despite directory export path")

        monkeypatch.setattr(sweep_mod, "run_sweep", never)
        with pytest.raises(SystemExit):
            main(self.GRID + ["--export", "csv",
                              "--export-path", str(tmp_path)])
        assert "is a directory" in capsys.readouterr().err

    def test_bad_workers_is_a_usage_error_not_a_runtime_one(
            self, capsys, tmp_path):
        """Argument problems must not print the misleading
        'rerun with --resume' runtime hint."""
        with pytest.raises(SystemExit):
            main(self.GRID + ["--workers", "-1",
                              "--store", str(tmp_path / "s")])
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "--resume to continue" not in err

    def test_disk_failure_mid_sweep_reports_resume_hint(
            self, capsys, tmp_path, monkeypatch):
        """An OSError from checkpointing (disk full) gets the same
        friendly runtime-error + resume message as a cell failure."""
        from repro.sim.store import ResultStore

        def full_disk(self, task, stats, latencies=True):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(ResultStore, "put", full_disk)
        code = main(self.GRID + ["--store", str(tmp_path / "s")])
        assert code == 1
        err = capsys.readouterr().err
        assert "No space left" in err
        assert "rerun with --resume" in err

    def test_unusable_store_path_is_a_clean_error(self, capsys, tmp_path):
        """A file in the store's place errors like any bad argument,
        not a raw OSError traceback."""
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SystemExit):
            main(self.GRID + ["--store", str(blocker)])
        assert "unusable" in capsys.readouterr().err

    def test_interrupt_exits_gracefully(self, capsys, tmp_path,
                                        monkeypatch):
        from repro.sim import sweep as sweep_mod

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(sweep_mod, "run_sweep", interrupted)
        code = main(self.GRID + ["--store", str(tmp_path / "s")])
        assert code == 130
        err = capsys.readouterr().err
        assert "rerun with --resume" in err

    def test_store_and_export_require_grid(self):
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf",
                  "--store", "somewhere"])
        with pytest.raises(SystemExit):
            main(["--arch", "COMET", "--workload", "mcf",
                  "--export", "csv"])
