"""Bench Table II — configurations and device-derived timing validation."""

import pytest

from repro.exp.table2 import run as run_table2


def bench_table2_timing_derivation(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    # Table II values are wired through unchanged.
    assert result.comet.read_time_ns == 10.0
    assert result.cosmos.write_time_ns == 1600.0
    # Both systems move 128 B lines.
    assert result.comet.cache_line_bits == result.cosmos.cache_line_bits == 1024

    # Our device/circuit stack re-derives COMET's timings to ~20 %.
    derived = result.derived
    assert derived.read_time_ns == pytest.approx(10.0, rel=0.05)
    assert derived.max_write_time_ns <= 170.0
    assert derived.max_write_time_ns >= 0.7 * 170.0
    assert derived.erase_time_ns == pytest.approx(210.0, rel=0.15)
