"""Trace-driven main-memory simulator (the NVMain 2.0 substitute).

The paper evaluates every architecture with a heavily modified NVMain 2.0
[30].  This package provides the equivalent: a trace-driven, bank-accurate
FCFS/FR-FCFS-lite memory simulator with row-buffer DRAM timing, refresh,
data-bus contention, per-operation + static energy accounting, and the
bandwidth / latency / EPB statistics Fig. 9 plots.

Key entry points:

* :func:`repro.sim.factory.build_device` — device model for any Fig. 9
  architecture name ("COMET", "COSMOS", "EPCM-MM", "2D_DDR3", ...).
* :func:`repro.sim.factory.build_workload` — any named workload preset
  (the SPEC eight, multi-programmed ``mix_*`` pairs, ``bursty``,
  ``checkpoint``).
* :class:`repro.sim.simulator.MainMemorySimulator` — runs a request list.
* :func:`repro.sim.engine.run_evaluation` — the (architecture x
  workload) grid, fanned out over worker processes with a deterministic
  serial fallback.
* :mod:`repro.sim.tracegen` — deterministic vectorized workload
  generators and the per-(workload, n, seed) trace cache.
* :mod:`repro.sim.trace` — NVMain-format trace reader/writer.
* :class:`repro.sim.store.ResultStore` — persistent content-addressed
  result store (device/workload fingerprints invalidate stale cells).
* :func:`repro.sim.sweep.run_sweep` — resumable sharded parameter
  sweeps (arch x workload x n x seed x queue depth) with incremental
  checkpointing and CSV/JSON export.
* :class:`repro.sim.server.EvalServer` /
  :class:`repro.sim.client.EvalClient` — the async evaluation daemon
  (HTTP + line protocol, store read-through, request coalescing) and
  its sync/async clients (``python -m repro.sim serve / query``).
* :func:`repro.sim.fabric.run_fabric` — distributed sweeps across an
  *elastic* fleet of daemons (digest-prefix partitioning, work
  stealing, failure re-dispatch, health-checked membership with
  mid-run join and re-admission) with audited store merging
  (``python -m repro.sim fabric / merge-stores``);
  :mod:`repro.sim.chaos` is the fault-injection harness that proves
  the churn story against real subprocess daemons.
"""

from .request import MemRequest, OpType
from .trace import TraceReader, TraceWriter, parse_trace_line, format_trace_line
from .tracegen import (
    MIXED_WORKLOADS,
    MixedWorkload,
    PHASED_WORKLOADS,
    Phase,
    PhasedWorkload,
    SPEC_WORKLOADS,
    SyntheticWorkload,
    TraceArrays,
    WORKLOAD_NAMES,
    WORKLOADS,
    cached_trace_arrays,
    generate_trace,
    generate_trace_arrays,
)
from .devices import (
    MemoryDeviceModel,
    RowBufferTiming,
    RefreshSpec,
    EnergyModel,
)
from .stats import SimStats
from .controller import MemoryController, QUEUE_DEPTH_PER_CHANNEL
from .factory import build_device, build_workload, ARCHITECTURE_NAMES
from .engine import (EvalTask, evaluate_cell, evaluate_tasks, grid_tasks,
                     run_evaluation, task_from_dict, task_to_dict)
from .store import MergeReport, ResultStore, task_digest
from .sweep import SweepResult, SweepSpec, run_sweep, write_csv, write_json
from .simulator import MainMemorySimulator, summarize
from .server import EvalServer
from .client import (AsyncEvalClient, EvalClient, SERVER_ENV_VAR,
                     TransportError, evaluate_tasks_remote)
from .fabric import (FabricResult, HostFileMembership, MembershipEndpoint,
                     MembershipSource, StaticMembership, announce_join,
                     federate_stats, membership_counters, partition_tasks,
                     reset_membership_counters, run_fabric, run_fabric_async)

__all__ = [
    "MemRequest",
    "OpType",
    "TraceReader",
    "TraceWriter",
    "parse_trace_line",
    "format_trace_line",
    "SyntheticWorkload",
    "MixedWorkload",
    "PhasedWorkload",
    "Phase",
    "TraceArrays",
    "SPEC_WORKLOADS",
    "MIXED_WORKLOADS",
    "PHASED_WORKLOADS",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "generate_trace",
    "generate_trace_arrays",
    "cached_trace_arrays",
    "MemoryDeviceModel",
    "RowBufferTiming",
    "RefreshSpec",
    "EnergyModel",
    "SimStats",
    "MemoryController",
    "QUEUE_DEPTH_PER_CHANNEL",
    "MainMemorySimulator",
    "summarize",
    "EvalTask",
    "evaluate_cell",
    "evaluate_tasks",
    "grid_tasks",
    "run_evaluation",
    "task_from_dict",
    "task_to_dict",
    "ResultStore",
    "MergeReport",
    "task_digest",
    "EvalServer",
    "EvalClient",
    "AsyncEvalClient",
    "TransportError",
    "SERVER_ENV_VAR",
    "evaluate_tasks_remote",
    "FabricResult",
    "run_fabric",
    "run_fabric_async",
    "federate_stats",
    "partition_tasks",
    "MembershipSource",
    "StaticMembership",
    "HostFileMembership",
    "MembershipEndpoint",
    "announce_join",
    "membership_counters",
    "reset_membership_counters",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "write_csv",
    "write_json",
    "build_device",
    "build_workload",
    "ARCHITECTURE_NAMES",
]
