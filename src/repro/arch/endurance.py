"""PCM write endurance and wear leveling for the COMET array.

Section I motivates PCM over FRAM/RRAM partly on endurance; any real PCM
main memory still has to manage the ~1e8–1e9 SET/RESET cycle budget per
cell.  This module provides the standard architecture-level machinery:

* :class:`EnduranceModel` — device lifetime from cell endurance, write
  bandwidth and the write distribution's skew;
* :class:`StartGapWearLeveler` — the classic Start-Gap scheme (Qureshi et
  al.) adapted to COMET's line-per-subarray-row layout: a gap line
  rotates through each subarray, remapping logical rows so hot lines
  migrate across the physical array.

Together they answer the adopter's question the paper doesn't: how long
does an 8 GB COMET part last under the Fig. 9 write loads?
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AddressError, ConfigError
from .organization import MemoryOrganization

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class EnduranceModel:
    """Lifetime arithmetic for a line-addressed PCM array."""

    cell_endurance_cycles: float = 1e9     # optical GST SET/RESET budget
    organization: MemoryOrganization = None

    def __post_init__(self) -> None:
        if self.cell_endurance_cycles <= 0.0:
            raise ConfigError("endurance must be positive")
        if self.organization is None:
            object.__setattr__(self, "organization",
                               MemoryOrganization.comet(4))

    @property
    def total_lines(self) -> int:
        org = self.organization
        return org.banks * org.rows_per_bank * org.col_subarrays

    def lifetime_years(
        self,
        write_bandwidth_gbps: float,
        leveling_efficiency: float = 1.0,
    ) -> float:
        """Years until the first cell exhausts its endurance.

        ``leveling_efficiency`` is the fraction of ideal wear spreading
        achieved (1.0 = perfectly uniform writes; 1/total_lines = one hot
        line takes everything).
        """
        if write_bandwidth_gbps <= 0.0:
            raise ConfigError("write bandwidth must be positive")
        if not 0.0 < leveling_efficiency <= 1.0:
            raise ConfigError("leveling efficiency must be in (0, 1]")
        line_bits = self.organization.row_bits
        writes_per_s = write_bandwidth_gbps * 8e9 / line_bits
        total_line_writes = (self.total_lines * self.cell_endurance_cycles
                             * leveling_efficiency)
        return total_line_writes / writes_per_s / SECONDS_PER_YEAR

    def hot_line_lifetime_years(self, writes_per_s_to_line: float) -> float:
        """Unleveled lifetime of a single hot line."""
        if writes_per_s_to_line <= 0.0:
            raise ConfigError("write rate must be positive")
        return (self.cell_endurance_cycles / writes_per_s_to_line
                / SECONDS_PER_YEAR)


class StartGapWearLeveler:
    """Start-Gap remapping over one subarray's rows.

    One spare (gap) row per subarray; every ``gap_move_interval`` writes
    the gap swaps with its neighbour, rotating the logical-to-physical row
    map by one position per full lap.  Lookup is O(1) arithmetic — exactly
    why Start-Gap is the standard PCM scheme.
    """

    def __init__(self, rows: int, gap_move_interval: int = 100) -> None:
        if rows < 2:
            raise ConfigError("need at least two rows to level")
        if gap_move_interval < 1:
            raise ConfigError("gap move interval must be positive")
        self.rows = rows                  # logical rows
        self.physical_rows = rows + 1     # + the gap row
        self.gap_move_interval = gap_move_interval
        # Explicit permutation (O(1) moves via an inverse map); the gap
        # starts at the spare physical slot.
        self._to_physical = list(range(rows))
        self._at_slot = list(range(rows)) + [None]   # physical -> logical
        self._gap = rows
        self._writes_since_move = 0
        self.total_writes = 0
        self.gap_moves = 0

    # -- mapping -----------------------------------------------------------

    def physical_row(self, logical_row: int) -> int:
        """Logical row -> physical row under the current permutation."""
        if not 0 <= logical_row < self.rows:
            raise AddressError(f"logical row {logical_row} out of range")
        return self._to_physical[logical_row]

    # -- write stream ----------------------------------------------------------

    def record_write(self) -> None:
        """Account one line write; move the gap when the interval elapses."""
        self.total_writes += 1
        self._writes_since_move += 1
        if self._writes_since_move >= self.gap_move_interval:
            self._writes_since_move = 0
            self._move_gap()

    def _move_gap(self) -> None:
        """Swap the gap with its predecessor slot (one line copy)."""
        self.gap_moves += 1
        source = (self._gap - 1) % self.physical_rows
        logical = self._at_slot[source]
        # Copy the row living at `source` into the gap slot.
        self._at_slot[self._gap] = logical
        self._at_slot[source] = None
        if logical is not None:
            self._to_physical[logical] = self._gap
        self._gap = source

    # -- quality metrics --------------------------------------------------------

    def mapping_is_bijective(self) -> bool:
        """Every logical row maps to a distinct non-gap physical row."""
        mapped = {self.physical_row(row) for row in range(self.rows)}
        return len(mapped) == self.rows and self._gap not in mapped

    def write_overhead(self) -> float:
        """Extra writes caused by gap movement (one copy per move)."""
        if self.total_writes == 0:
            return 0.0
        return self.gap_moves / self.total_writes

    def leveling_efficiency(self, hot_fraction: float = 1.0) -> float:
        """Long-run wear-spreading efficiency estimate.

        The uniform share of the traffic (``1 - hot_fraction``) is already
        perfectly spread and needs no remapping, so it contributes at
        efficiency 1; only the hot share is discounted by the rotation's
        imperfect spread (``1 - 1/physical_rows``) and the gap-copy write
        overhead.  Limits: ``hot_fraction -> 0`` gives 1.0 (uniform
        traffic wears evenly with or without Start-Gap);
        ``hot_fraction = 1`` gives ``spread * (1 - overhead)`` (a single
        hot line smeared over all physical rows at the copy cost).
        """
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigError("hot fraction must be in [0, 1]")
        spread = 1.0 - 1.0 / self.physical_rows
        hot_term = spread * (1.0 - self.write_overhead())
        return 1.0 - hot_fraction * (1.0 - hot_term)
