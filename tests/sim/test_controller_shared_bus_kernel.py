"""Micro-traces pinning the shared-bus kernel's semantics by hand.

Every expected number below is worked out on paper from the documented
recurrence — admission against the global FIFO, bank binding, the
refresh push on the start time, the bus-ready serialization with
read/write turnaround, the *second* refresh push after the bus wait
and the overlap bank-release rule — and asserted step by step against
all three tiers (``run_fast``, ``run``, ``run_reference``).  The
values use small power-of-two-friendly floats, so every intermediate
is exactly representable and the comparisons are ``==``, not approx.

The second half unit-tests the fallback triggers one by one: a missing
toolchain (``REPRO_FASTLOOP=0``), a fast-path-ineligible device
(``allow_fast_path=False``) and the per-bank admission revert.
"""

from dataclasses import replace

import numpy as np

from repro.sim import _fastloop
from repro.sim import controller as controller_mod
from repro.sim.controller import MemoryController
from repro.sim.devices import (EnergyModel, MemoryDeviceModel, RefreshSpec)
from repro.sim.tracegen import TraceArrays


def _bus_device(**overrides):
    """A two-bank shared-bus device with human-sized timings."""
    fields = dict(
        name="micro-bus",
        line_bytes=64,
        banks=2,
        data_burst_ns=10.0,
        interface_delay_ns=5.0,
        read_occupancy_ns=20.0,
        write_occupancy_ns=30.0,
        shared_bus=True,
        bus_turnaround_ns=4.0,
        burst_overlaps_array=False,
        energy=EnergyModel(read_energy_j=1e-9, write_energy_j=2e-9),
    )
    fields.update(overrides)
    return MemoryDeviceModel(**fields)


def _trace(addresses, is_read, arrivals):
    return TraceArrays(
        name="micro",
        addresses=np.asarray(addresses, dtype=np.int64),
        is_read=np.asarray(is_read, dtype=bool),
        arrivals_ns=np.asarray(arrivals, dtype=np.float64),
        line_bytes=64,
    )


def _all_tiers(controller, trace):
    """Run all three tiers; assert fast == scalar completely and the
    oracle bit-for-bit on the schedule; return the fast stats."""
    fast = controller.run_arrays(trace, workload_name="micro", fast=True)
    scalar = controller.run_arrays(trace, workload_name="micro", fast=False)
    assert fast.to_dict() == scalar.to_dict()
    reference = controller.run_reference(trace.to_requests(), "micro")
    assert fast.latencies_ns == reference.latencies_ns
    assert fast.sim_time_ns == reference.sim_time_ns
    assert fast.busy_time_ns == reference.busy_time_ns
    assert fast.refresh_count == reference.refresh_count
    return fast


class TestHandComputedSchedules:
    """The expected values are derived step by step in the comments."""

    def test_refresh_straddling_bus_trace(self):
        """Refresh windows [0,15) and [100,115) with a shared bus.

        qd=8 (never blocks).  Latency = finish + interface(5) - admitted.

        r0 bank0 R arr 0:  start 0 -> refresh push to 15; burst_start
           15+20=35 (bus free); finish 45.                 latency 50
        r1 bank1 W arr 5:  start 5 -> push 15; array done 45, but bus
           ready 45+4(turnaround)=49 -> burst at 49; finish 59.
                                                           latency 59
        r2 bank0 W arr 10: bank0 free 45; no refresh; burst 75 > bus
           59; finish 85.                                  latency 80
        r3 bank1 R arr 12: bank1 free 59; burst candidate 79 < bus
           85+4=89 -> 89; finish 99.                       latency 92
        r4 bank0 R arr 20: bank0 free 85; burst candidate 105 lands in
           the second refresh window -> *post-bus* push to 115; finish
           125.                                            latency 110
        """
        device = _bus_device(
            refresh=RefreshSpec(interval_ns=100.0, duration_ns=15.0))
        controller = MemoryController(device, queue_depth=8)
        trace = _trace(addresses=[0, 64, 0, 64, 0],
                       is_read=[True, False, False, True, True],
                       arrivals=[0.0, 5.0, 10.0, 12.0, 20.0])
        before = controller_mod.kernel_counters()["fast_shared_bus"]
        stats = _all_tiers(controller, trace)
        assert stats.latencies_ns == [50.0, 59.0, 80.0, 92.0, 110.0]
        # busy: bank0 (45-15)+(85-45)+(125-85)=110, bank1 (59-15)+(99-59)=84
        assert stats.busy_time_ns == 194.0
        assert stats.sim_time_ns == 130.0          # completion 130 - admit 0
        assert stats.refresh_count == 1            # int(130 // 100)
        # Three runs: fast tier once, scalar and oracle don't dispatch.
        assert controller_mod.kernel_counters()["fast_shared_bus"] \
            == before + 1

    def test_queue_blocking_on_the_bus(self):
        """qd=1: every request waits for its predecessor's finish.

        r0 bank0 R arr 0: start 0, burst 20, finish 30.    latency 35
        r1 bank1 R arr 2: admitted max(2, finish[0]=30)=30; burst 50;
           finish 60.                                      latency 35
        r2 bank0 W arr 4: admitted 60; bus ready 60+4=64 < burst 90;
           finish 100.                                     latency 45
        """
        controller = MemoryController(_bus_device(), queue_depth=1)
        trace = _trace(addresses=[0, 64, 0],
                       is_read=[True, True, False],
                       arrivals=[0.0, 2.0, 4.0])
        stats = _all_tiers(controller, trace)
        assert stats.latencies_ns == [35.0, 35.0, 45.0]
        assert stats.busy_time_ns == 100.0     # bank0 30+40, bank1 30

    def test_overlap_releases_bank_at_burst_start(self):
        """burst_overlaps_array=True on a bus: the bank frees when the
        burst *starts* (max(array done, burst start)), while the bus
        still serializes finishes.

        Single bank, two reads at arr 0:
        r0: start 0, burst_start 20, finish 30, bank freed at 20.
        r1: start 20 (not 30!), burst candidate 40 > bus 30 -> 40,
            finish 50, bank freed at 40.
        """
        device = _bus_device(banks=1, bus_turnaround_ns=0.0,
                             burst_overlaps_array=True)
        controller = MemoryController(device, queue_depth=8)
        trace = _trace(addresses=[0, 0], is_read=[True, True],
                       arrivals=[0.0, 0.0])
        stats = _all_tiers(controller, trace)
        assert stats.latencies_ns == [35.0, 55.0]
        assert stats.busy_time_ns == 40.0      # (20-0) + (40-20)

    def test_turnaround_only_charged_on_direction_flips(self):
        """Back-to-back same-direction bursts pay no turnaround: with a
        saturated single bank the bus is the bottleneck only when the
        direction flips.

        Single bank, R R W at arr 0, turnaround 4:
        r0: start 0, burst 20, finish 30.
        r1: start 30, burst candidate 50 > bus 30+0 -> 50, finish 60.
        r2: start 60, burst candidate 90 > bus 60+4=64 -> 90, finish
            100 — the flip penalty is absorbed by the array time.
        Then W R with an idle-free bus where it is NOT absorbed is
        r1 of test_refresh_straddling_bus_trace above.
        """
        controller = MemoryController(_bus_device(banks=1), queue_depth=8)
        trace = _trace(addresses=[0, 0, 0],
                       is_read=[True, True, False],
                       arrivals=[0.0, 0.0, 0.0])
        stats = _all_tiers(controller, trace)
        assert stats.latencies_ns == [35.0, 65.0, 105.0]


class TestFallbackTriggers:
    def test_missing_toolchain_falls_back_identically(self, monkeypatch):
        """REPRO_FASTLOOP=0 -> the compiled twin reports unavailable,
        the cell takes the scalar recurrence under run_fast, counts one
        toolchain fallback, and the numbers do not move."""
        device = _bus_device(
            refresh=RefreshSpec(interval_ns=100.0, duration_ns=15.0))
        controller = MemoryController(device, queue_depth=8)
        trace = _trace(addresses=[0, 64, 0, 64, 0],
                       is_read=[True, False, False, True, True],
                       arrivals=[0.0, 5.0, 10.0, 12.0, 20.0])
        monkeypatch.setenv(_fastloop.FASTLOOP_ENV_VAR, "0")
        assert not _fastloop.available()
        counters = controller_mod.kernel_counters()
        stats = controller.run_arrays(trace, workload_name="micro",
                                      fast=True)
        assert stats.latencies_ns == [50.0, 59.0, 80.0, 92.0, 110.0]
        after = controller_mod.kernel_counters()
        assert after["fallback_toolchain"] \
            == counters["fallback_toolchain"] + 1
        assert after["fast_shared_bus"] == counters["fast_shared_bus"]
        monkeypatch.delenv(_fastloop.FASTLOOP_ENV_VAR)
        assert _fastloop.available()

    def test_ineligible_device_falls_back_identically(self):
        """allow_fast_path=False pins the scalar recurrence and counts
        a device fallback — same numbers again."""
        device = replace(
            _bus_device(refresh=RefreshSpec(interval_ns=100.0,
                                            duration_ns=15.0)),
            allow_fast_path=False)
        assert device.fast_path_class is None
        controller = MemoryController(device, queue_depth=8)
        trace = _trace(addresses=[0, 64, 0, 64, 0],
                       is_read=[True, False, False, True, True],
                       arrivals=[0.0, 5.0, 10.0, 12.0, 20.0])
        counters = controller_mod.kernel_counters()
        stats = controller.run_arrays(trace, workload_name="micro",
                                      fast=True)
        assert stats.latencies_ns == [50.0, 59.0, 80.0, 92.0, 110.0]
        after = controller_mod.kernel_counters()
        assert after["fallback_device"] == counters["fallback_device"] + 1
        assert after["fast_shared_bus"] == counters["fast_shared_bus"]

    def test_admission_revert_reroutes_to_global_queue_kernel(self):
        """A per-bank-queue device whose admission stamps bind (tiny
        queue) reverts to the global-queue schedule: one admission
        revert plus one global-queue kernel dispatch."""
        device = MemoryDeviceModel(
            name="micro-perbank",
            line_bytes=64,
            banks=2,
            data_burst_ns=10.0,
            interface_delay_ns=5.0,
            read_occupancy_ns=20.0,
            write_occupancy_ns=30.0,
            shared_bus=False,
            per_bank_queues=True,
            # Overlap frees the bank before the burst finishes, so a
            # depth-1 queue's admission stamp (previous *finish*) lands
            # strictly after the next chain start — the binding case.
            burst_overlaps_array=True,
            energy=EnergyModel(read_energy_j=1e-9, write_energy_j=2e-9),
        )
        assert device.fast_path_class == "per_bank"
        controller = MemoryController(device, queue_depth=1)
        # All three requests hit bank 0 back to back.
        trace = _trace(addresses=[0, 128, 256], is_read=[True, True, True],
                       arrivals=[0.0, 0.0, 0.0])
        counters = controller_mod.kernel_counters()
        fast = controller.run_arrays(trace, workload_name="micro",
                                     fast=True)
        scalar = controller.run_arrays(trace, workload_name="micro",
                                       fast=False)
        assert fast.to_dict() == scalar.to_dict()
        after = controller_mod.kernel_counters()
        assert after["fallback_admission"] \
            == counters["fallback_admission"] + 1
        assert after["fast_global_queue"] \
            == counters["fast_global_queue"] + 1
