"""WDM/MDM link model."""

import pytest

from repro.errors import ConfigError
from repro.photonics.links import WdmMdmLink


class TestCounts:
    def test_access_mr_count_formula(self):
        """Section III.E: 2 x B x Nc rings."""
        link = WdmMdmLink(num_wavelengths=256, mdm_degree=4)
        assert link.access_mr_count == 2 * 4 * 256

    def test_aggregate_bandwidth(self):
        link = WdmMdmLink(num_wavelengths=64, mdm_degree=4,
                          channel_rate_gbps=10.0)
        assert link.aggregate_bandwidth_gbps == pytest.approx(2560.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            WdmMdmLink(num_wavelengths=0)
        with pytest.raises(ConfigError):
            WdmMdmLink(num_wavelengths=8, mdm_degree=0)


class TestModeLosses:
    def test_higher_modes_leak_more(self):
        """Section III.C: higher-order MDM modes are leakier."""
        link = WdmMdmLink(num_wavelengths=8, mdm_degree=4)
        losses = [link.mode_loss_db(m) for m in range(4)]
        assert all(b > a for a, b in zip(losses, losses[1:]))

    def test_mode_order_bounds(self):
        link = WdmMdmLink(num_wavelengths=8, mdm_degree=4)
        with pytest.raises(ConfigError):
            link.mode_loss_db(4)

    def test_worst_mode_budget_is_largest(self):
        link = WdmMdmLink(num_wavelengths=8, mdm_degree=4)
        budgets = link.per_mode_budgets()
        assert budgets[-1].total_db == pytest.approx(
            link.worst_mode_budget().total_db)
        assert budgets[-1].total_db > budgets[0].total_db


class TestLaserPower:
    def test_power_scales_with_wavelengths(self):
        small = WdmMdmLink(num_wavelengths=8).laser_wall_plug_power_w(1e-3)
        large = WdmMdmLink(num_wavelengths=64).laser_wall_plug_power_w(1e-3)
        assert large > 6 * small

    def test_mdm4_overhead_is_modest(self):
        """The paper caps MDM at 4 because higher degrees blow the budget."""
        link4 = WdmMdmLink(num_wavelengths=16, mdm_degree=4)
        link8 = WdmMdmLink(num_wavelengths=16, mdm_degree=8)
        p4 = link4.laser_wall_plug_power_w(1e-3)
        p8 = link8.laser_wall_plug_power_w(1e-3)
        # Doubling modes more than doubles power (leakier high modes).
        assert p8 > 2.0 * p4

    def test_target_power_validation(self):
        link = WdmMdmLink(num_wavelengths=8)
        with pytest.raises(ConfigError):
            link.laser_wall_plug_power_w(0.0)
