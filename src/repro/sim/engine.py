"""Parallel evaluation engine: the (architecture x workload) grid runner.

The Fig. 9 evaluation — every architecture against every workload — is
embarrassingly parallel across grid cells, and each cell repeats two
expensive setups: generating the workload trace and building the device
model.  The engine removes both:

* **Per-process caches** — devices are built once per architecture and
  traces generated once per ``(workload, n, seed)`` (write-locked
  column arrays, shared read-only between cells).
* **Pool fan-out** — with ``workers > 1`` the grid is mapped over a
  persistent worker pool chosen by the ``pool`` argument (or the
  ``REPRO_POOL`` environment variable): ``"threads"``, ``"fork"`` or
  ``"serial"``.  The default resolves to **threads** whenever the
  compiled scheduler twin is available — every kernel class now runs
  in :mod:`._fastloop`, which releases the GIL for the whole
  recurrence, so threads share the device/controller/trace caches
  directly, pay no fork latency, ship results without pickling, and
  need no shared-memory trace plane at all.  Where the twin is
  unavailable (``REPRO_FASTLOOP=0``, no C toolchain) the default
  falls back to the fork pool, whose workers run the scalar/numpy
  tiers outside the parent's GIL.  Either pool survives across
  ``evaluate_tasks`` / ``run_evaluation`` / sweep calls (and server
  requests riding them); both are torn down on process exit, on
  :func:`shutdown_worker_pool`, and by :func:`clear_device_caches`.
  Results come back in task order, so the output is deterministic and
  bit-identical to the serial path regardless of pool kind, worker
  count or scheduling.
* **Zero-copy trace plane (fork pool only)** — before fanning out,
  the parent publishes each distinct ``(workload, n, seed)`` trace
  into shared memory and ships workers a tiny
  :class:`~repro.sim.tracegen.TraceDescriptor` per task instead of
  having every worker regenerate (or unpickle) the column arrays;
  workers attach each segment once and share the physical pages.
  Where shared memory is unavailable the descriptor is ``None`` and
  workers regenerate locally — identical results.  The thread pool
  bypasses the plane entirely: threads read the parent's trace cache.
* **Serial fallback** — ``workers=1`` (the default) runs the same cells
  in-process; if a pool cannot be created (restricted sandboxes), the
  engine degrades to serial rather than failing.

``REPRO_EVAL_WORKERS`` sets the default worker count; the controller's
fast-path scheduler kernel (:meth:`MemoryController.run_arrays`) is the
per-cell hot path.  :func:`profile_snapshot` exposes per-phase wall
times (trace fetch vs simulation vs store I/O) and
:func:`pool_profile_snapshot` per-pool fan-out timings for
``--profile``.  Fork workers return their dispatch-counter and
profile deltas with each result and the parent merges them, so the
kernel hit rate and phase times report the whole grid under every
pool kind.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import threading
import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, List,
                    Optional, Sequence, Tuple)

from ..errors import ReproError, SimulationError, TraceError
from . import _fastloop
from .controller import (QUEUE_DEPTH_PER_CHANNEL, MemoryController,
                         kernel_counters, merge_kernel_counters)
from .factory import ARCHITECTURE_NAMES, build_device, known_architectures
from .stats import SimStats
from .tracegen import (SPEC_WORKLOADS, TraceDescriptor, attach_trace_arrays,
                       cached_trace_arrays, clear_trace_plane, get_workload,
                       share_trace_arrays)

if TYPE_CHECKING:   # avoid a runtime cycle: store imports EvalTask
    from .devices import MemoryDeviceModel
    from .store import ResultStore

#: Environment override for the default worker count.
WORKERS_ENV_VAR = "REPRO_EVAL_WORKERS"

#: Environment override for the executor kind: ``threads``, ``fork``
#: or ``serial`` (anything unset/empty resolves automatically — see
#: :func:`resolve_pool`).
POOL_ENV_VAR = "REPRO_POOL"

#: The executor kinds :func:`resolve_pool` accepts.
POOL_MODES: Tuple[str, ...] = ("threads", "fork", "serial")

#: Set to ``0`` to disable the shared-memory trace plane (fork workers
#: then regenerate traces locally, the pre-plane behaviour).  The
#: thread pool never uses the plane.
TRACE_PLANE_ENV_VAR = "REPRO_TRACE_PLANE"

# staticcheck: guarded-by[_CACHE_LOCK]
_DEVICE_CACHE: Dict[str, "MemoryDeviceModel"] = {}
# staticcheck: guarded-by[_CACHE_LOCK]
_CONTROLLER_CACHE: Dict[Tuple[str, Optional[int]], MemoryController] = {}

#: Guards the device/controller cache build: under the thread pool many
#: cells race to memoize the same architecture; double-checked locking
#: makes exactly one thread build (models are immutable once built, so
#: lock-free reads stay safe).
_CACHE_LOCK = threading.Lock()

#: The persistent fork worker pool: (pool, worker count).  Lazily built
#: by the first fork fan-out, reused by every later one with the same
#: size.
_WORKER_POOL: Optional[Tuple[Any, int]] = None

#: The persistent thread pool: (ThreadPoolExecutor, worker count).
_THREAD_POOL: Optional[Tuple[Any, int]] = None

#: Per-phase wall-clock accumulators for ``--profile``.  Thread-safe
#: (pool threads accumulate concurrently); fork workers accumulate in
#: their own process and return per-cell deltas the parent merges, so
#: the totals cover the whole grid under every pool kind (summed across
#: workers, they can exceed wall-clock).
# staticcheck: guarded-by[_PROFILE_LOCK, reads]
_PROFILE = {"trace_s": 0.0, "simulate_s": 0.0, "store_s": 0.0}
_PROFILE_LOCK = threading.Lock()

#: Per-pool fan-out accounting for ``--profile``: cells mapped and
#: wall-clock spent inside :func:`_map_tasks`, keyed by resolved pool
#: mode — one run with ``REPRO_POOL=fork`` and one with ``threads``
#: print side by side.
# staticcheck: guarded-by[_PROFILE_LOCK, reads]
_POOL_PROFILE: Dict[str, Dict[str, float]] = {}


def profile_snapshot() -> Dict[str, float]:
    """Copy of the per-phase wall-time accumulators (seconds)."""
    with _PROFILE_LOCK:
        return dict(_PROFILE)


def pool_profile_snapshot() -> Dict[str, Dict[str, float]]:
    """Per-pool fan-out accounting: ``{mode: {runs, cells, wall_s}}``."""
    with _PROFILE_LOCK:
        return {mode: dict(entry) for mode, entry in _POOL_PROFILE.items()}


def reset_profile() -> None:
    """Zero the per-phase and per-pool accumulators."""
    with _PROFILE_LOCK:
        for key in _PROFILE:
            _PROFILE[key] = 0.0
        _POOL_PROFILE.clear()


def _profile_add(key: str, seconds: float) -> None:
    with _PROFILE_LOCK:
        _PROFILE[key] = _PROFILE.get(key, 0.0) + seconds


def _note_pool_run(mode: str, cells: int, wall_s: float) -> None:
    with _PROFILE_LOCK:
        entry = _POOL_PROFILE.setdefault(
            mode, {"runs": 0, "cells": 0, "wall_s": 0.0})
        entry["runs"] += 1
        entry["cells"] += cells
        entry["wall_s"] += wall_s

#: ``on_result`` callback type: called with each (task, stats) pair as
#: soon as the cell completes, in task order (incremental checkpointing).
ResultCallback = Callable[["EvalTask", SimStats], None]

#: Process-wide count of grid cells actually *computed* by the engine
#: (store hits never increment it).  Counted in the parent as results
#: arrive, so it is accurate under process fan-out too; this is what the
#: zero-recompute pinning tests and ``run-all --expect-no-compute``
#: read.
_COMPUTED_CELLS = 0  # staticcheck: guarded-by[_COMPUTED_LOCK, reads]
_COMPUTED_LOCK = threading.Lock()


def computed_cell_count() -> int:
    """Cells computed by this process's engine since import (or the last
    :func:`reset_computed_cell_count`)."""
    with _COMPUTED_LOCK:
        return _COMPUTED_CELLS


def reset_computed_cell_count() -> None:
    """Zero the computed-cell counter (tests, warm-pass assertions)."""
    global _COMPUTED_CELLS
    with _COMPUTED_LOCK:
        _COMPUTED_CELLS = 0


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: a workload trace run against one architecture.

    ``queue_depth`` optionally overrides the controller's transaction
    queue (``None`` keeps the per-channel default) — the sweep axis the
    queue-depth ablation explores.
    """

    architecture: str
    workload: str
    num_requests: int
    seed: int
    queue_depth: Optional[int] = None

    def describe(self) -> str:
        """Human-readable cell label for error messages and logs."""
        label = (f"{self.architecture} x {self.workload}, "
                 f"n={self.num_requests}, seed={self.seed}")
        if self.queue_depth is not None:
            label += f", queue_depth={self.queue_depth}"
        return label


#: Wire-format field names of one :class:`EvalTask`, in dataclass order.
TASK_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(EvalTask))


def task_to_dict(task: EvalTask) -> Dict[str, Any]:
    """JSON-serializable dict of one task (inverse of
    :func:`task_from_dict`)."""
    return dataclasses.asdict(task)


def _require_int(payload: Dict[str, Any], key: str, default: int) -> int:
    """Fetch an integer field from an untrusted payload.

    ``bool`` is an ``int`` subclass in Python, but ``"seed": true`` on
    the wire is a client bug, not a seed of 1 — reject it explicitly.
    """
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimulationError(f"task field {key!r} must be an integer, "
                              f"got {value!r}")
    return value


def task_from_dict(payload: Any) -> EvalTask:
    """Validated :class:`EvalTask` from an untrusted wire payload.

    This is the trust boundary of the evaluation service: every field is
    type- and range-checked so malformed queries surface as structured
    ``SimulationError`` messages (the server's 4xx path) instead of a
    worker traceback mid-compute.  ``num_requests`` defaults to 20000 and
    ``seed`` to 1, matching :func:`run_evaluation`; re-encoding the same
    task (dict round trip, any key order) yields an equal task and
    therefore the same store digest.
    """
    if not isinstance(payload, dict):
        raise SimulationError(
            f"task must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(TASK_FIELDS))
    if unknown:
        raise SimulationError(
            f"unknown task fields {unknown}; known: {list(TASK_FIELDS)}")
    architecture = payload.get("architecture")
    if not isinstance(architecture, str):
        raise SimulationError("task field 'architecture' must be a string")
    if architecture not in known_architectures():
        raise SimulationError(
            f"unknown architecture {architecture!r}; "
            f"known: {known_architectures()}")
    workload = payload.get("workload")
    if not isinstance(workload, str):
        raise SimulationError("task field 'workload' must be a string")
    try:
        get_workload(workload)
    except TraceError as error:
        raise SimulationError(str(error)) from None
    num_requests = _require_int(payload, "num_requests", 20_000)
    if num_requests < 1:
        raise SimulationError("task field 'num_requests' must be >= 1")
    seed = _require_int(payload, "seed", 1)
    if not 0 <= seed < 2 ** 32:
        # numpy's RandomState range; catching it here keeps it a 4xx
        # validation error instead of a mid-compute worker failure.
        raise SimulationError(
            "task field 'seed' must be in [0, 2**32)")
    queue_depth = payload.get("queue_depth")
    if queue_depth is not None:
        if isinstance(queue_depth, bool) or not isinstance(queue_depth, int):
            raise SimulationError(
                f"task field 'queue_depth' must be an integer or null, "
                f"got {queue_depth!r}")
        if queue_depth < 1:
            raise SimulationError("task field 'queue_depth' must be >= 1")
    return EvalTask(architecture, workload, num_requests, seed, queue_depth)


def device_for(architecture: str):
    """Per-process memoized device model, shared across every consumer
    (controllers at any queue depth, store fingerprinting).  The build
    is the costly part — COMET's involves the mode-solver stack."""
    device = _DEVICE_CACHE.get(architecture)
    if device is None:
        with _CACHE_LOCK:
            device = _DEVICE_CACHE.get(architecture)
            if device is None:
                device = build_device(architecture)
                _DEVICE_CACHE[architecture] = device
    return device


def clear_device_caches() -> None:
    """Drop every cache a model edit could leave stale.

    Clears the memoized devices and controllers (so the next use
    rebuilds from the current definitions), the per-process trace cache
    *and* the shared-memory trace plane (detaching every mapped segment
    and unlinking the ones this process published — a long-lived server
    must not leak ``/dev/shm`` segments across model edits), and shuts
    the persistent worker pool down (forked workers hold the same
    memoized state being invalidated here).

    For in-process model edits with a result store in play, call
    :func:`repro.sim.store.clear_fingerprint_cache` instead — it clears
    these caches *and* the memoized fingerprints/digests derived from
    them; clearing only here would leave the store addressing results
    computed under the old model.
    """
    # Under the lock: a concurrent device_for() build must not land its
    # double-checked insert between the two clears and survive with a
    # stale model.
    with _CACHE_LOCK:
        _DEVICE_CACHE.clear()
        _CONTROLLER_CACHE.clear()
    cached_trace_arrays.cache_clear()
    _ADOPTED_TRACES.clear()
    clear_trace_plane()
    shutdown_worker_pool()


def shutdown_worker_pool() -> None:
    """Terminate the persistent pools — fork and thread alike (the next
    fan-out rebuilds whichever it needs)."""
    global _WORKER_POOL, _THREAD_POOL
    if _WORKER_POOL is not None:
        pool, _size = _WORKER_POOL
        _WORKER_POOL = None
        try:
            pool.terminate()
            pool.join()
        except (OSError, ValueError):
            pass
    if _THREAD_POOL is not None:
        executor, _size = _THREAD_POOL
        _THREAD_POOL = None
        try:
            executor.shutdown(wait=True, cancel_futures=True)
        except (OSError, RuntimeError, TypeError):
            # ``cancel_futures`` needs 3.9+; older interpreters retry
            # the plain shutdown.
            try:
                executor.shutdown(wait=True)
            except (OSError, RuntimeError):
                pass


def _ensure_worker_pool(workers: int):
    """The persistent fork pool, built on first use and reused while the
    requested size matches; ``None`` where pools cannot be created."""
    global _WORKER_POOL
    if _WORKER_POOL is not None:
        pool, size = _WORKER_POOL
        if size == workers:
            return pool
        shutdown_worker_pool()
    try:
        import multiprocessing

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        pool = context.Pool(processes=workers)
    except (ImportError, OSError, PermissionError):
        # Restricted environments (no /dev/shm, no fork): the caller
        # degrades to the serial path — identical results, no fan-out.
        return None
    _WORKER_POOL = (pool, workers)
    return pool


def _ensure_thread_pool(workers: int):
    """The persistent thread pool, mirroring :func:`_ensure_worker_pool`
    (rebuilt only when the requested size changes)."""
    global _THREAD_POOL
    if _THREAD_POOL is not None:
        executor, size = _THREAD_POOL
        if size == workers:
            return executor
        shutdown_worker_pool()
    from concurrent.futures import ThreadPoolExecutor

    executor = ThreadPoolExecutor(max_workers=workers,
                                  thread_name_prefix="repro-eval")
    _THREAD_POOL = (executor, workers)
    return executor


def resolve_pool(pool: Optional[str] = None) -> str:
    """Normalize the executor kind: argument > ``REPRO_POOL`` > auto.

    Auto resolves to ``threads`` when the compiled scheduler twin is
    available in this process — every kernel class then runs outside
    the GIL, so threads scale with none of fork's costs — and to
    ``fork`` otherwise (the scalar/numpy tiers hold the GIL, so only
    processes parallelize them).
    """
    if pool is None:
        pool = os.environ.get(POOL_ENV_VAR) or None
    if pool is None or pool == "auto":
        return "threads" if _fastloop.available() else "fork"
    if pool not in POOL_MODES:
        raise SimulationError(
            f"unknown pool mode {pool!r}; known: {list(POOL_MODES)} "
            f"(or 'auto')")
    return pool


atexit.register(shutdown_worker_pool)

# A fork while another thread holds one of the engine locks would leave
# the child's copy locked forever (only the forking thread survives).
# The fork pool is created from the main thread, so hand the child
# fresh locks instead of inheriting snapshotted ones.
os.register_at_fork(
    after_in_child=lambda: globals().update(
        _CACHE_LOCK=threading.Lock(), _PROFILE_LOCK=threading.Lock(),
        _COMPUTED_LOCK=threading.Lock()))


def controller_for(architecture: str,
                   queue_depth: Optional[int] = None) -> MemoryController:
    """Per-process memoized controller over the shared device model.
    ``queue_depth`` overrides the per-channel default transaction queue
    (distinct depths share one device build)."""
    key = (architecture, queue_depth)
    controller = _CONTROLLER_CACHE.get(key)
    if controller is None:
        device = device_for(architecture)
        with _CACHE_LOCK:
            controller = _CONTROLLER_CACHE.get(key)
            if controller is None:
                controller = MemoryController(
                    device,
                    queue_depth=(queue_depth if queue_depth is not None
                                 else QUEUE_DEPTH_PER_CHANNEL
                                 * device.channels),
                )
                _CONTROLLER_CACHE[key] = controller
    return controller


#: Traces this process adopted from the trace plane, by (workload, n,
#: seed): :func:`evaluate_cell` consults this before generating, which
#: is how pool workers reach the shared pages *without* the descriptor
#: threading through ``evaluate_cell``'s call signature (monkeypatched
#: and legacy single-argument implementations keep working).
_ADOPTED_TRACES: Dict[Tuple[str, int, int], Any] = {}


def adopt_trace_descriptor(descriptor: TraceDescriptor) -> None:
    """Attach a published trace and serve it to later
    :func:`evaluate_cell` calls for its (workload, n, seed).

    Bounded like the plane itself: adopted references beyond the
    publisher's segment cap are dropped FIFO so a persistent pool
    worker serving many distinct traces doesn't pin stale mappings."""
    if descriptor.key not in _ADOPTED_TRACES:
        from .tracegen import MAX_OWNED_SEGMENTS

        while len(_ADOPTED_TRACES) >= MAX_OWNED_SEGMENTS:
            del _ADOPTED_TRACES[next(iter(_ADOPTED_TRACES))]
        _ADOPTED_TRACES[descriptor.key] = attach_trace_arrays(descriptor)


def evaluate_cell(task: EvalTask,
                  descriptor: Optional[TraceDescriptor] = None) -> SimStats:
    """Run one grid cell; the unit of work the pool distributes.

    ``descriptor`` names a shared-memory publication of the cell's
    trace: the columns are mapped zero-copy instead of generated.
    Without one, traces previously adopted via
    :func:`adopt_trace_descriptor` (the fan-out path) are used, then
    the per-process generation cache.
    """
    t0 = time.perf_counter()
    if descriptor is not None:
        trace = attach_trace_arrays(descriptor)
    else:
        trace = _ADOPTED_TRACES.get(
            (task.workload, task.num_requests, task.seed))
        if trace is None:
            trace = cached_trace_arrays(task.workload, task.num_requests,
                                        task.seed)
    t1 = time.perf_counter()
    stats = controller_for(task.architecture, task.queue_depth).run_arrays(
        trace, workload_name=task.workload)
    t2 = time.perf_counter()
    _profile_add("trace_s", t1 - t0)
    _profile_add("simulate_s", t2 - t1)
    return stats


def evaluate_cell_checked(task: EvalTask) -> SimStats:
    """``evaluate_cell`` with the failing cell annotated on error.

    Without this, an exception raised inside a pool worker surfaces as
    a bare multiprocessing traceback with no indication of which
    (architecture, workload) cell died — and the unexpected kinds
    (ValueError, numpy errors) are exactly the ones that need the cell
    label most.  The re-raised error is a plain one-argument
    ``SimulationError``, so it pickles cleanly back through the pool.

    Module-level (hence picklable) on purpose: this is the unit of work
    both the grid pool and the evaluation server's executors submit —
    always with the single-argument call, so replacement
    ``evaluate_cell`` implementations (tests, instrumentation) never
    see the trace-plane plumbing.
    """
    try:
        return evaluate_cell(task)
    except Exception as error:
        detail = str(error) if isinstance(error, ReproError) \
            else f"{type(error).__name__}: {error}"
        raise SimulationError(
            f"grid cell ({task.describe()}) failed: {detail}") from error


#: Backwards-compatible alias (pre-server name).
_evaluate_cell_checked = evaluate_cell_checked


def evaluate_cell_with_counters(
        task: EvalTask) -> Tuple[SimStats, Dict[str, int]]:
    """``evaluate_cell_checked`` plus this cell's dispatch-counter delta.

    The unit of work process-pool executors submit (the evaluation
    server's): the worker's counters never reach the parent on their
    own, so the delta rides back with the result for the parent to
    :func:`~repro.sim.controller.merge_kernel_counters` — that is what
    keeps ``/stats.kernel`` accurate for ``workers > 1``.  Exact even
    with several cells in flight per worker, because pool workers are
    single-threaded."""
    before = kernel_counters()
    stats = evaluate_cell_checked(task)
    delta = {
        key: value - before.get(key, 0)
        for key, value in kernel_counters().items()
        if value != before.get(key, 0)
    }
    return stats, delta


def _evaluate_cell_indexed(
    payload: Tuple[int, EvalTask, Optional[TraceDescriptor]]
) -> Tuple[int, SimStats, Dict[str, int], Dict[str, float]]:
    """Fork-pool payload carrying the task's position (so the parent can
    checkpoint completions the moment they arrive, out of order, while
    still returning results in task order) and the task's trace-plane
    descriptor (adopted before evaluation, not threaded through the
    ``evaluate_cell`` signature).

    Alongside the stats, the worker returns this cell's dispatch-counter
    and profile *deltas* (before/after snapshots — exact, since pool
    workers are single-threaded): counters otherwise accumulate only in
    the worker process and the parent's ``kernel_dispatch_summary`` and
    ``--profile`` phases would under-report every fanned-out cell."""
    index, task, descriptor = payload
    if descriptor is not None:
        adopt_trace_descriptor(descriptor)
    counters_before = kernel_counters()
    profile_before = profile_snapshot()
    stats = _evaluate_cell_checked(task)
    counter_delta = {
        key: value - counters_before.get(key, 0)
        for key, value in kernel_counters().items()
        if value != counters_before.get(key, 0)
    }
    profile_delta = {
        key: value - profile_before.get(key, 0.0)
        for key, value in profile_snapshot().items()
        if value != profile_before.get(key, 0.0)
    }
    return index, stats, counter_delta, profile_delta


def _resolve_workers(workers: Optional[int]) -> int:
    """Validate and normalize the worker count.

    ``0`` explicitly means "one worker per available CPU" (it used to be
    silently coerced to 1); negative counts are rejected.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            workers = int(raw)
        except ValueError:
            raise SimulationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise SimulationError("worker count must be non-negative")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _map_tasks(tasks: Sequence[EvalTask], workers: int, chunksize: int,
               on_result: Optional[ResultCallback] = None,
               pool: Optional[str] = None) -> List[SimStats]:
    """Map cells over the resolved worker pool (threads, fork or
    serial), falling back to serial execution where no pool can exist.

    The returned list is in task order; ``on_result`` fires for each
    cell as soon as its stats arrive — in *completion* order under a
    pool, so callers (the result store, the sweep runner) checkpoint
    every finished cell immediately and an interruption loses nothing
    already computed.  ``on_result`` always runs in the calling thread,
    whatever the pool kind.  Worker failures re-raise as
    ``SimulationError`` annotated with the failing cell.
    """
    def count_computed() -> None:
        global _COMPUTED_CELLS
        with _COMPUTED_LOCK:
            _COMPUTED_CELLS += 1

    def serial() -> List[SimStats]:
        collected = []
        for task in tasks:
            stats = _evaluate_cell_checked(task)
            count_computed()
            if on_result is not None:
                on_result(task, stats)
            collected.append(stats)
        return collected

    mode = resolve_pool(pool)
    t_fanout = time.perf_counter()
    try:
        if workers <= 1 or len(tasks) <= 1 or mode == "serial":
            mode = "serial"
            return serial()
        if mode == "threads":
            return _map_tasks_threads(tasks, workers, on_result,
                                      count_computed)
        result = _map_tasks_fork(tasks, workers, chunksize, on_result,
                                 count_computed)
        if result is None:
            # Restricted environments (no /dev/shm, no fork): degrade
            # to the serial path — identical results, just no fan-out.
            # Only pool *creation* is guarded; cell failures propagate
            # annotated.
            mode = "serial"
            return serial()
        return result
    finally:
        _note_pool_run(mode, len(tasks), time.perf_counter() - t_fanout)


def _map_tasks_threads(tasks: Sequence[EvalTask], workers: int,
                       on_result: Optional[ResultCallback],
                       count_computed: Callable[[], None]
                       ) -> List[SimStats]:
    """Thread fan-out: the compiled twin releases the GIL for the whole
    recurrence, so threads scale with zero fork latency, no result
    pickling, shared device/controller caches — and no shared-memory
    trace plane: each distinct trace is generated (or found cached)
    once in this thread, then every worker reads the same arrays."""
    for key in dict.fromkeys((task.workload, task.num_requests, task.seed)
                             for task in tasks):
        cached_trace_arrays(*key)
    executor = _ensure_thread_pool(workers)
    from concurrent.futures import as_completed

    slots: List[Optional[SimStats]] = [None] * len(tasks)
    futures = {executor.submit(_evaluate_cell_checked, task): index
               for index, task in enumerate(tasks)}
    try:
        for future in as_completed(futures):
            index = futures[future]
            stats = future.result()
            count_computed()
            if on_result is not None:
                on_result(tasks[index], stats)
            slots[index] = stats
    except BaseException:
        # One cell failed (annotated) or the caller interrupted: stop
        # feeding the pool, let in-flight cells finish, keep the pool.
        for future in futures:
            future.cancel()
        raise
    return slots


def _map_tasks_fork(tasks: Sequence[EvalTask], workers: int,
                    chunksize: int, on_result: Optional[ResultCallback],
                    count_computed: Callable[[], None]
                    ) -> Optional[List[SimStats]]:
    """Fork fan-out over the persistent process pool; ``None`` when no
    pool can be created (the caller degrades to serial)."""
    pool = _ensure_worker_pool(workers)
    if pool is None:
        return None
    # Publish each distinct trace once; workers get a descriptor and
    # attach the shared pages instead of regenerating the columns.
    descriptors: Dict[Tuple[str, int, int], Optional[TraceDescriptor]] = {}
    if os.environ.get(TRACE_PLANE_ENV_VAR, "1") != "0":
        for task in tasks:
            key = (task.workload, task.num_requests, task.seed)
            if key not in descriptors:
                descriptors[key] = share_trace_arrays(*key)
    payloads = [
        (index, task,
         descriptors.get((task.workload, task.num_requests, task.seed)))
        for index, task in enumerate(tasks)
    ]
    slots: List[Optional[SimStats]] = [None] * len(tasks)
    try:
        for index, stats, counter_delta, profile_delta \
                in pool.imap_unordered(
                    _evaluate_cell_indexed, payloads, chunksize=chunksize):
            # Workers count dispatches and phase times in their own
            # process; merging the per-cell deltas keeps --profile and
            # /stats.kernel accurate for workers > 1.
            if counter_delta:
                merge_kernel_counters(counter_delta)
            for key, value in profile_delta.items():
                _profile_add(key, value)
            count_computed()
            if on_result is not None:
                on_result(tasks[index], stats)
            slots[index] = stats
    except ReproError:
        raise    # a cell failed; the pool itself is still healthy
    except Exception:
        # The pool transport broke (worker killed, pipe torn): discard
        # it so the next fan-out starts from a fresh pool.
        shutdown_worker_pool()
        raise
    return slots


def grid_tasks(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
) -> List[EvalTask]:
    """The validated (architecture x workload) grid as a task list.

    Workload-major order: one chunk covers every architecture for one
    workload, so each worker generates (or receives via fork) each trace
    at most once.  Shared by :func:`run_evaluation` and remote grid
    consumers (the evaluation client's Fig. 9 path), so both expand the
    same grid to the same tasks in the same order.
    """
    workload_names = list(workloads) if workloads is not None \
        else sorted(SPEC_WORKLOADS)
    if not workload_names:
        raise SimulationError("need at least one workload")
    architectures = list(architectures)
    if not architectures:
        raise SimulationError("need at least one architecture")
    for name in workload_names:
        try:
            get_workload(name)
        except TraceError as error:
            raise SimulationError(str(error)) from None
    return [
        EvalTask(arch, workload, num_requests, seed)
        for workload in workload_names
        for arch in architectures
    ]


def run_evaluation(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
    workers: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    resume: bool = True,
    pool: Optional[str] = None,
) -> Dict[str, Dict[str, SimStats]]:
    """The full Fig. 9 grid: every architecture on every workload.

    Returns ``results[arch][workload] -> SimStats``.  ``workers`` > 1
    fans the grid out over that many pool workers (``0`` = one per
    CPU); ``pool`` picks the executor kind (:func:`resolve_pool` —
    threads by default when the compiled twin is available); the
    result is identical to the serial run for the same arguments.

    With a :class:`repro.sim.store.ResultStore`, every computed cell is
    checkpointed to disk as soon as it completes; when ``resume`` is
    true, cells whose digest is already in the store are served from it
    instead of being recomputed (``resume=False`` recomputes and
    overwrites).  Stored results are bit-identical to computed ones.
    """
    architectures = list(architectures)
    tasks = grid_tasks(architectures, workloads, num_requests, seed)
    lookup = evaluate_tasks(tasks, workers=workers, store=store,
                            resume=resume,
                            chunksize=max(len(architectures), 1),
                            pool=pool)

    results: Dict[str, Dict[str, SimStats]] = {
        arch: {} for arch in architectures
    }
    for task in tasks:
        results[task.architecture][task.workload] = lookup[task]
    return results


def evaluate_tasks(
    tasks: Sequence[EvalTask],
    workers: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    resume: bool = True,
    chunksize: int = 1,
    on_result: Optional[ResultCallback] = None,
    store_latencies: bool = True,
    pool: Optional[str] = None,
) -> Dict[EvalTask, SimStats]:
    """Evaluate an arbitrary task list with store read-through/write-back.

    The shared core of :func:`run_evaluation` and the sweep runner:
    store hits (when ``resume``) skip :func:`evaluate_cell` entirely,
    misses are fanned out over ``workers`` pool workers (executor kind
    per ``pool`` / :func:`resolve_pool`) and written back to the store
    the moment each result arrives.  ``on_result`` fires for every
    *computed* cell (after the store write), letting callers log
    progress or checkpoint additional state.  ``store_latencies=False``
    writes archival entries without the bulky per-request samples —
    percentile queries still work through the store's fixed-bin latency
    histograms.
    """
    cached: Dict[EvalTask, SimStats] = {}
    if store is not None and resume:
        t0 = time.perf_counter()
        cached = {task: hit for task, hit in store.get_many(tasks).items()
                  if hit is not None}
        _profile_add("store_s", time.perf_counter() - t0)
    missing = [task for task in tasks if task not in cached]

    def checkpoint(task: EvalTask, stats: SimStats) -> None:
        if store is not None:
            t0 = time.perf_counter()
            store.put(task, stats, latencies=store_latencies)
            _profile_add("store_s", time.perf_counter() - t0)
        if on_result is not None:
            on_result(task, stats)

    computed = _map_tasks(missing, _resolve_workers(workers),
                          chunksize=max(chunksize, 1),
                          on_result=checkpoint, pool=pool)
    results = dict(cached)
    results.update(zip(missing, computed))
    return results
