"""OPCM cell optical response (the Fig. 4 substrate)."""

import numpy as np
import pytest

from repro.device import CellGeometry, OpticalGstCell
from repro.errors import ConfigError, MaterialError


class TestResponse:
    def test_t_a_r_sum_to_one(self, gst_cell):
        for fc in (0.0, 0.3, 0.7, 1.0):
            resp = gst_cell.response(fc)
            total = resp.transmission + resp.absorption + resp.reflection
            assert total == pytest.approx(1.0, abs=1e-9)

    def test_transmission_decreases_with_fraction(self, gst_cell):
        fractions = np.linspace(0.0, 1.0, 9)
        values = [gst_cell.transmission(fc) for fc in fractions]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_absorption_increases_with_fraction(self, gst_cell):
        assert gst_cell.absorption(1.0) > gst_cell.absorption(0.5) \
            > gst_cell.absorption(0.0)

    def test_fraction_bounds(self, gst_cell):
        with pytest.raises(MaterialError):
            gst_cell.response(1.5)


class TestSelectedGeometryContrast:
    def test_paper_contrast_at_design_point(self, gst_cell):
        """The selected 480 nm x 20 nm x 2 um cell reaches ~90-96 %
        transmission and absorption contrast (paper: ~95-96 %)."""
        assert 0.85 <= gst_cell.transmission_contrast() <= 0.99
        assert 0.85 <= gst_cell.absorption_contrast() <= 0.99

    def test_amorphous_state_is_transparent(self, gst_cell):
        assert gst_cell.transmission(0.0) > 0.9

    def test_crystalline_state_is_opaque(self, gst_cell):
        assert gst_cell.transmission(1.0) < 0.05


class TestLevelInversion:
    def test_inversion_roundtrip(self, gst_cell):
        for target in (0.1, 0.4, 0.8):
            fc = gst_cell.fc_for_transmission(target)
            assert gst_cell.transmission(fc) == pytest.approx(target, abs=0.02)

    def test_out_of_range_target_rejected(self, gst_cell):
        with pytest.raises(MaterialError):
            gst_cell.fc_for_transmission(0.999)
        with pytest.raises(MaterialError):
            gst_cell.fc_for_transmission(0.001)

    def test_inversion_monotone(self, gst_cell):
        targets = np.linspace(0.1, 0.9, 9)
        fractions = [gst_cell.fc_for_transmission(t) for t in targets]
        assert all(b < a for a, b in zip(fractions, fractions[1:]))


class TestWavelengthDependence:
    def test_loss_decreases_across_c_band(self, gst_cell):
        """Section III.B: loss drops from 1530 nm to 1565 nm."""
        loss_blue = gst_cell.loss_db_per_mm(0.0, 1530e-9)
        loss_red = gst_cell.loss_db_per_mm(0.0, 1565e-9)
        assert loss_blue > loss_red > 0.0

    def test_contrast_variation_small(self, gst_cell):
        """Section III.B: <~2 % contrast variation across the C-band
        (paper reports 1.4 %)."""
        assert gst_cell.c_band_contrast_variation(points=4) < 0.03


class TestGeometryEffects:
    def test_thicker_film_more_contrast(self, gst):
        thin = OpticalGstCell(gst, CellGeometry(pcm_thickness_m=10e-9))
        thick = OpticalGstCell(gst, CellGeometry(pcm_thickness_m=30e-9))
        assert thick.absorption_contrast() > thin.absorption_contrast()

    def test_longer_cell_more_absorption(self, gst):
        short = OpticalGstCell(gst, CellGeometry(cell_length_m=1e-6))
        long_cell = OpticalGstCell(gst, CellGeometry(cell_length_m=3e-6))
        assert long_cell.absorption(1.0) > short.absorption(1.0)

    def test_geometry_validation(self):
        with pytest.raises(ConfigError):
            CellGeometry(pcm_thickness_m=0.0)
        with pytest.raises(ConfigError):
            CellGeometry(platform="InP")
