"""COMET reproduction: cross-layer optical phase-change main memory.

A full-stack Python reproduction of "COMET: A Cross-Layer Optimized
Optical Phase Change Main Memory Architecture" (DATE 2024):

* :mod:`repro.materials` — PCM optical/thermal models (Lorentz + effective
  medium).
* :mod:`repro.photonics` — waveguide mode solver, rings, SOAs, lasers,
  loss budgets, crossbar crosstalk.
* :mod:`repro.device` — GST cell optics, transient heat, crystallization
  kinetics, multi-level programming.
* :mod:`repro.arch` — COMET organization, Eq. (1)-(6) address mapping,
  gain LUT, power stacks, timing derivation.
* :mod:`repro.baselines` — COSMOS, EPCM-MM, 2D/3D DDR3/DDR4.
* :mod:`repro.sim` — the NVMain-substitute trace-driven memory simulator.
* :mod:`repro.accel` — the DOTA photonic-accelerator case study.
* :mod:`repro.exp` — one runner per paper table/figure
  (``python -m repro.exp fig9``).

Quickstart::

    from repro.arch import CometArchitecture
    arch = CometArchitecture()
    print(arch.describe())
"""

from . import config
from .arch import CometArchitecture
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["config", "CometArchitecture", "ReproError", "__version__"]
