"""Itemized optical loss budgets.

Every laser-power number in the paper follows from "the various losses the
signal will experience on its way to and from the OPCM arrays"
(Section III.E).  :class:`LossBudget` makes those calculations auditable:
each contribution is a named :class:`LossElement`; budgets compose; and the
required launch power for a target delivered power falls out directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..units import db_to_linear


@dataclass(frozen=True)
class LossElement:
    """One named loss contribution: ``count`` instances of ``unit_db`` each."""

    name: str
    unit_db: float
    count: float = 1.0

    def __post_init__(self) -> None:
        if self.unit_db < 0.0:
            raise ConfigError(f"loss element {self.name!r} must be non-negative")
        if self.count < 0.0:
            raise ConfigError(f"count for {self.name!r} must be non-negative")

    @property
    def total_db(self) -> float:
        return self.unit_db * self.count


class LossBudget:
    """An ordered, itemized collection of loss elements."""

    def __init__(self, name: str = "budget") -> None:
        self.name = name
        self._elements: List[LossElement] = []

    # -- construction ---------------------------------------------------

    def add(self, name: str, unit_db: float, count: float = 1.0) -> "LossBudget":
        """Append an element; returns self for chaining."""
        self._elements.append(LossElement(name, unit_db, count))
        return self

    def extend(self, other: "LossBudget") -> "LossBudget":
        """Append every element of another budget."""
        self._elements.extend(other.elements)
        return self

    # -- inspection -------------------------------------------------------

    @property
    def elements(self) -> Tuple[LossElement, ...]:
        return tuple(self._elements)

    @property
    def total_db(self) -> float:
        return sum(element.total_db for element in self._elements)

    @property
    def transmission(self) -> float:
        return db_to_linear(-self.total_db)

    def itemize(self) -> Dict[str, float]:
        """Map of element name -> total dB (merging repeated names)."""
        out: Dict[str, float] = {}
        for element in self._elements:
            out[element.name] = out.get(element.name, 0.0) + element.total_db
        return out

    def __iter__(self) -> Iterator[LossElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return f"LossBudget({self.name!r}, total={self.total_db:.2f} dB)"

    # -- power helpers ------------------------------------------------------

    def required_launch_power_w(self, target_power_w: float) -> float:
        """Power to launch so that ``target_power_w`` arrives after the path."""
        if target_power_w <= 0.0:
            raise ConfigError("target power must be positive")
        return target_power_w / self.transmission

    def delivered_power_w(self, launch_power_w: float) -> float:
        """Power surviving the path for a given launch power."""
        if launch_power_w < 0.0:
            raise ConfigError("launch power must be non-negative")
        return launch_power_w * self.transmission


def waveguide_path_budget(
    length_cm: float,
    bends_90deg: int = 0,
    params: OpticalParameters = TABLE_I,
    name: str = "waveguide-path",
) -> LossBudget:
    """Budget for a plain routed waveguide: propagation plus bends."""
    if length_cm < 0.0:
        raise ConfigError("path length must be non-negative")
    budget = LossBudget(name)
    budget.add("propagation", params.propagation_loss_db_per_cm, length_cm)
    if bends_90deg:
        budget.add("bending", params.bending_loss_db_per_90deg, bends_90deg)
    return budget
