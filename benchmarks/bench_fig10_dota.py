"""Bench Fig. 10 — DOTA accelerator EPB with each main memory.

With ``$REPRO_RESULT_STORE`` set, the memory-simulation cells read
through the store and the bench times the *incremental* regeneration.
"""

from repro.exp.fig10 import run as run_fig10


def bench_fig10_dota_case_study(benchmark, eval_store):
    result = benchmark.pedantic(
        run_fig10, kwargs={"num_requests": 6000, "store": eval_store},
        rounds=1, iterations=1)

    print()
    for model, per_mem in result.results.items():
        for memory, res in per_mem.items():
            print(f"  {model} + {memory:9s}: {res.system_epb_pj:8.1f} pJ/b")

    for model in ("DeiT-T", "DeiT-B"):
        per_mem = result.results[model]
        comet = per_mem["COMET"].system_epb_pj
        # COMET is the best system-level memory for DOTA (Fig. 10's point).
        assert all(res.system_epb_pj > comet
                   for name, res in per_mem.items() if name != "COMET")
        # Paper bands: 1.3-2.06x vs 3D_DDR4, 1.45-2.7x vs COSMOS.
        assert 1.05 <= result.ratio(model, "3D_DDR4") <= 3.0
        assert 1.2 <= result.ratio(model, "COSMOS") <= 40.0
        # The crossover driver: 3D_DDR4 wins on raw memory EPB but pays
        # the electro-optic conversion stage.
        assert per_mem["3D_DDR4"].memory_epb_pj < per_mem["COMET"].memory_epb_pj
        assert per_mem["3D_DDR4"].conversion_pj_per_bit \
            > per_mem["COMET"].conversion_pj_per_bit
