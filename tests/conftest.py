"""Shared fixtures and suite configuration.

Expensive objects (mode-solver-backed cells, programmers, architecture
facades) are session-scoped: they are immutable for test purposes and the
underlying solvers cache by configuration.

Tests marked ``slow`` (full-size evaluation grids) are skipped by
default so tier-1 stays fast; run them with ``pytest --runslow``.
"""

from __future__ import annotations

import pytest

from repro.arch import CometArchitecture
from repro.device import CellProgrammer, MultiLevelCell, OpticalGstCell
from repro.materials import get_material


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (full-size evaluation grids)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: full-size grid test, skipped unless --runslow")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def gst():
    return get_material("GST")


@pytest.fixture(scope="session")
def gst_cell(gst):
    return OpticalGstCell(gst)


@pytest.fixture(scope="session")
def mlc4(gst_cell):
    return MultiLevelCell.for_cell(gst_cell, 4)


@pytest.fixture(scope="session")
def programmer(gst_cell):
    return CellProgrammer(gst_cell)


@pytest.fixture(scope="session")
def comet():
    return CometArchitecture()
