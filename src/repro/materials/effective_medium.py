"""Effective-medium mixing for partially crystallized PCM.

Intermediate states of a phase-change cell are a nano-composite of
crystalline inclusions in an amorphous matrix (or vice versa).  Following
the multi-level simulation scheme of Wang et al. [27] that the paper
adopts, the composite permittivity at crystalline fraction ``fc`` is the
Lorentz–Lorenz (Clausius–Mossotti) mixture

    (eps_eff - 1) / (eps_eff + 2)
        = fc * (eps_c - 1)/(eps_c + 2) + (1 - fc) * (eps_a - 1)/(eps_a + 2)

which interpolates the *polarizability*, not the permittivity, and is the
standard model for PCM multi-level photonics.  A simple linear permittivity
mix is provided for comparison/ablation.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import MaterialError

ArrayLike = Union[float, complex, np.ndarray]


def _check_fraction(crystalline_fraction: float) -> float:
    fc = float(crystalline_fraction)
    if not 0.0 <= fc <= 1.0:
        raise MaterialError(
            f"crystalline fraction must be in [0, 1], got {crystalline_fraction}"
        )
    return fc


def lorentz_lorenz_mix(
    eps_amorphous: ArrayLike,
    eps_crystalline: ArrayLike,
    crystalline_fraction: float,
) -> ArrayLike:
    """Lorentz–Lorenz effective permittivity of a partially crystallized PCM.

    Both endpoint permittivities may be complex scalars or arrays of the
    same shape.  ``crystalline_fraction`` = 0 returns the amorphous value,
    1 the crystalline value (exactly, by construction).
    """
    fc = _check_fraction(crystalline_fraction)
    eps_a = np.asarray(eps_amorphous, dtype=complex)
    eps_c = np.asarray(eps_crystalline, dtype=complex)
    pol_a = (eps_a - 1.0) / (eps_a + 2.0)
    pol_c = (eps_c - 1.0) / (eps_c + 2.0)
    pol = fc * pol_c + (1.0 - fc) * pol_a
    eps_eff = (1.0 + 2.0 * pol) / (1.0 - pol)
    if np.isscalar(eps_amorphous) and np.isscalar(eps_crystalline):
        return complex(eps_eff)
    return eps_eff


def linear_mix(
    eps_amorphous: ArrayLike,
    eps_crystalline: ArrayLike,
    crystalline_fraction: float,
) -> ArrayLike:
    """Naive linear permittivity mix (ablation baseline for the LL model)."""
    fc = _check_fraction(crystalline_fraction)
    eps_a = np.asarray(eps_amorphous, dtype=complex)
    eps_c = np.asarray(eps_crystalline, dtype=complex)
    eps_eff = fc * eps_c + (1.0 - fc) * eps_a
    if np.isscalar(eps_amorphous) and np.isscalar(eps_crystalline):
        return complex(eps_eff)
    return eps_eff


def effective_permittivity(
    eps_amorphous: ArrayLike,
    eps_crystalline: ArrayLike,
    crystalline_fraction: float,
    scheme: str = "lorentz-lorenz",
) -> ArrayLike:
    """Dispatch between the supported effective-medium schemes."""
    if scheme == "lorentz-lorenz":
        return lorentz_lorenz_mix(eps_amorphous, eps_crystalline, crystalline_fraction)
    if scheme == "linear":
        return linear_mix(eps_amorphous, eps_crystalline, crystalline_fraction)
    raise MaterialError(f"unknown effective-medium scheme: {scheme!r}")
