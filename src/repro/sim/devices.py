"""Device timing/energy models the simulator executes against.

One dataclass, :class:`MemoryDeviceModel`, covers every Fig. 9
architecture.  Fixed-latency devices (photonic PCM, electrical PCM) set
``read_occupancy_ns`` / ``write_occupancy_ns`` directly; DRAM devices
instead attach a :class:`RowBufferTiming`, and the controller computes
hit/miss service times.  Refresh (DRAM only) is a :class:`RefreshSpec`.
Energy is background power + per-operation dynamic energy + (for the
photonic parts) an *active* power that burns only while the device is
serving — lasers and SOAs are gated per access, Section III.E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError
from .request import MemRequest


@dataclass(frozen=True)
class RowBufferTiming:
    """DRAM row-buffer timing under an open- or closed-page policy.

    * ``open`` (default): rows stay active after an access; a hit pays
      tCAS only, a miss pays precharge + activate + tCAS.
    * ``closed``: every access auto-precharges, so every access pays
      activate + tCAS but never a preceding precharge — the
      latency-predictable policy that wins on low-locality traffic.
    """

    t_rcd_ns: float
    t_rp_ns: float
    t_cas_ns: float
    t_wr_ns: float
    row_size_bytes: int
    page_policy: str = "open"

    def __post_init__(self) -> None:
        if min(self.t_rcd_ns, self.t_rp_ns, self.t_cas_ns) <= 0.0:
            raise ConfigError("row timing parameters must be positive")
        if self.row_size_bytes <= 0:
            raise ConfigError("row size must be positive")
        if self.page_policy not in ("open", "closed"):
            raise ConfigError(
                f"page policy must be 'open' or 'closed', got "
                f"{self.page_policy!r}")

    @property
    def is_open_page(self) -> bool:
        return self.page_policy == "open"

    def service_ns(self, row_hit: bool, is_read: bool) -> float:
        """Array time before the data burst for one access."""
        if self.is_open_page:
            core = self.t_cas_ns if row_hit else (self.t_rp_ns + self.t_rcd_ns
                                                  + self.t_cas_ns)
        else:
            # Auto-precharge: always activate + CAS, never a precharge.
            core = self.t_rcd_ns + self.t_cas_ns
        if not is_read:
            core += self.t_wr_ns
        return core


@dataclass(frozen=True)
class RefreshSpec:
    """Periodic all-bank refresh."""

    interval_ns: float
    duration_ns: float
    energy_j: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_ns <= 0.0 or self.duration_ns < 0.0:
            raise ConfigError("refresh interval must be positive")
        if self.duration_ns >= self.interval_ns:
            raise ConfigError("refresh duration must be below the interval")


@dataclass(frozen=True)
class EnergyModel:
    """Energy accounting parameters of one device.

    ``gate_active_power`` models run-time laser/SOA power management in the
    spirit of the paper's future-work citation [43]: when True (default),
    the active power is charged only in proportion to the busy-bank
    fraction; when False the optical power rail burns for the whole run
    (the conservative always-on assumption).  The laser-gating ablation
    bench quantifies the difference.
    """

    background_power_w: float = 0.0
    active_power_w: float = 0.0
    read_energy_j: float = 0.0
    write_energy_j: float = 0.0
    gate_active_power: bool = True

    def __post_init__(self) -> None:
        for name in ("background_power_w", "active_power_w",
                     "read_energy_j", "write_energy_j"):
            if getattr(self, name) < 0.0:
                raise ConfigError(f"{name} must be non-negative")


@dataclass(frozen=True)
class MemoryDeviceModel:
    """Everything the controller needs to simulate one architecture."""

    name: str
    line_bytes: int
    banks: int
    data_burst_ns: float
    interface_delay_ns: float
    energy: EnergyModel
    #: Independent channels the part spans (each brings its own
    #: transaction queue at the controller).
    channels: int = 1
    read_occupancy_ns: Optional[float] = None
    write_occupancy_ns: Optional[float] = None
    row_buffer: Optional[RowBufferTiming] = None
    refresh: Optional[RefreshSpec] = None
    shared_bus: bool = True
    #: Bus dead time when a shared bus switches between reads and writes
    #: (driver turnaround / ODT settle); photonic links have none.
    bus_turnaround_ns: float = 0.0
    #: Photonic readout streams onto the (unshared) link while the array
    #: access completes, so the bank frees after the array time alone.
    burst_overlaps_array: bool = False
    #: The controller's transaction queue decomposes per bank: each bank
    #: admits against its own slice of the queue instead of one global
    #: FIFO.  True for COMET, whose cross-layer design gives every bank
    #: its own MDM mode and an independent per-bank scheduler (Section
    #: III.C) — no shared resource couples admission across banks.
    #: False keeps the global open-loop throttle, which is the right
    #: model for devices whose controller centralizes transactions
    #: (DRAM/EPCM shared buses, COSMOS's subtractive read-erase-read
    #: orchestration).
    per_bank_queues: bool = False
    #: Master eligibility switch for the fast-path scheduler kernels.
    #: True lets :attr:`fast_path_class` pick a kernel from the timing
    #: structure; False pins the device to the scalar recurrence in
    #: every tier (forced-fallback test cells, exotic device models).
    allow_fast_path: bool = True

    def __post_init__(self) -> None:
        if self.banks < 1 or self.line_bytes < 1:
            raise ConfigError("banks and line size must be positive")
        if self.data_burst_ns < 0.0 or self.interface_delay_ns < 0.0:
            raise ConfigError("burst and interface delay must be non-negative")
        has_fixed_read = self.read_occupancy_ns is not None
        if has_fixed_read == (self.row_buffer is not None):
            raise ConfigError(
                "device must define either a fixed read occupancy or "
                "row-buffer timing, not both/neither"
            )
        if self.row_buffer is None and self.write_occupancy_ns is None:
            raise ConfigError(
                "fixed-latency devices must define a write occupancy"
            )

    # -- scheduling structure -----------------------------------------------

    @property
    def contention_free(self) -> bool:
        """No shared bus and no refresh: every timing dependency is a
        per-bank chain, the structure the fast-path scheduler kernel
        exploits (all-photonic devices; DRAM fails on both counts)."""
        return not self.shared_bus and self.refresh is None

    @property
    def fast_path_class(self) -> Optional[str]:
        """Which fast-path scheduler kernel covers this device's timing
        structure (``None`` = scalar recurrence only).

        * ``"per_bank"`` — contention-free with per-bank queues (COMET):
          the schedule decomposes into independent per-bank chains the
          vectorized prefix-fold kernel computes.
        * ``"shared_bus"`` — a shared data bus orders every burst (DRAM
          with refresh, electrical PCM): the compiled exact-twin kernel
          runs the bus recurrence natively.
        * ``"global_queue"`` — contention-free behind one global FIFO
          (COSMOS): the compiled exact twin of the unshared recurrence.
        * ``None`` — refresh without a shared bus (no Fig. 9 device):
          only the generic scalar loop models it.
        """
        if not self.allow_fast_path:
            return None
        if self.contention_free and self.per_bank_queues:
            return "per_bank"
        if self.shared_bus:
            return "shared_bus"
        if self.refresh is None:
            return "global_queue"
        return None

    # -- address geometry ---------------------------------------------------

    def bank_of(self, request: MemRequest) -> int:
        """Bank mapping.

        Row-buffer devices interleave banks at *row* granularity (the
        open-page-friendly mapping NVMain defaults to, keeping sequential
        lines in one row); fixed-latency photonic devices interleave at
        line granularity, which is COMET's stated cache-line interleaving
        (Section III.C).
        """
        if self.row_buffer is not None:
            return (request.address // self.row_buffer.row_size_bytes) % self.banks
        return (request.address // self.line_bytes) % self.banks

    def row_of(self, request: MemRequest) -> int:
        """Row (page) index within the bank, for row-buffer devices."""
        if self.row_buffer is None:
            return 0
        return request.address // (self.row_buffer.row_size_bytes * self.banks)

    # -- service times --------------------------------------------------------

    def array_time_ns(self, request: MemRequest, row_hit: bool) -> float:
        """Bank-array time (before the data burst) for one access.

        A fixed ``write_occupancy_ns`` overrides the row-buffer path for
        writes — used by COSMOS, whose reads hit/miss the subtractively
        filled subarray buffer while writes always pay the full
        erase-plus-program pulse train.
        """
        if not request.is_read and self.write_occupancy_ns is not None:
            return float(self.write_occupancy_ns)
        if self.row_buffer is not None:
            return self.row_buffer.service_ns(row_hit, request.is_read)
        return float(self.read_occupancy_ns)

    def op_energy_j(self, request: MemRequest) -> float:
        return self.energy.read_energy_j if request.is_read \
            else self.energy.write_energy_j
