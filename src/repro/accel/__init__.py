"""Photonic AI accelerator case study (paper Section IV.D, Fig. 10).

* :class:`repro.accel.transformer.TransformerConfig` — DeiT-T / DeiT-B
  traffic models (bytes moved per inference).
* :class:`repro.accel.dota.DotaSystem` — the DOTA photonic tensor core fed
  by each candidate main memory; computes system-level EPB including the
  electro-optic conversion stages photonic memories avoid.
"""

from .transformer import TransformerConfig, DEIT_TINY, DEIT_BASE
from .dota import DotaSystem, DotaEnergyModel, dota_case_study

__all__ = [
    "TransformerConfig",
    "DEIT_TINY",
    "DEIT_BASE",
    "DotaSystem",
    "DotaEnergyModel",
    "dota_case_study",
]
