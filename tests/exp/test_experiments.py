"""Experiment registry and the paper-shape assertions per artifact.

These are the reproduction's acceptance tests: each checks that a
regenerated figure/table has the qualitative shape the paper reports.
"""

import pytest

from repro.errors import ConfigError
from repro.exp import EXPERIMENTS, get_experiment, run_experiment
from repro.exp import fig2, fig3, fig4, fig6, fig7, fig8
from repro.device.programming import ProgrammingMode


class TestRegistry:
    def test_all_artifacts_registered(self):
        expected = {"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
                    "fig10", "table1", "table2", "headline", "reliability"}
        assert set(EXPERIMENTS) == expected

    def test_lookup_case_insensitive(self):
        assert get_experiment("FIG3").exp_id == "fig3"

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_store_capable_experiments(self):
        """The grid-backed artifacts advertise the store/server
        substrate; closed-form ones don't."""
        capable = {exp_id for exp_id, e in EXPERIMENTS.items()
                   if e.store_capable}
        assert capable == {"fig9", "fig10", "headline"}

    def test_uniform_contract_ignores_unsupported_keywords(self):
        """A closed-form experiment accepts (and drops) the uniform
        store/server/num_requests keywords instead of raising."""
        result = get_experiment("table1").run(
            store="/nonexistent", server="http://127.0.0.1:1",
            num_requests=123)
        assert result.soa_interval_rows == 46

    def test_uniform_contract_forwards_num_requests(self):
        result = get_experiment("fig9").run(
            num_requests=150, workloads=["gcc"])
        any_stats = next(iter(result.results["COMET"].values()))
        assert any_stats.num_requests == 150

    def test_fig9_unusable_store_is_a_clean_exit(self, tmp_path, capsys):
        """$REPRO_RESULT_STORE pointing at a file must fail with a
        message, not a raw mkdir traceback."""
        from repro.exp import fig9
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SystemExit):
            fig9.main(num_requests=100, store=str(blocker))
        assert "unusable" in capsys.readouterr().err

    def test_fig10_unusable_store_is_a_clean_exit(self, tmp_path, capsys):
        from repro.exp import fig10
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(SystemExit):
            fig10.main(num_requests=100, store=str(blocker))
        assert "unusable" in capsys.readouterr().err


class TestServerTransportErrors:
    """An unreachable/refused $REPRO_EVAL_SERVER must be the clean
    SystemExit(2) message on every transport, not a raw traceback."""

    @pytest.mark.parametrize("address", [
        "http://127.0.0.1:1",              # refused TCP connect
        "unix:///nonexistent/eval.sock",   # dead unix socket
    ])
    @pytest.mark.parametrize("figure", ["fig9", "fig10"])
    def test_unreachable_server_is_clean_exit(self, figure, address,
                                              capsys):
        from repro.exp import fig9, fig10
        module = {"fig9": fig9, "fig10": fig10}[figure]
        with pytest.raises(SystemExit) as exc:
            module.main(num_requests=50, server=address)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "evaluation server" in err and "failed" in err

    def test_fig9_raw_transport_error_is_clean_exit(self, monkeypatch,
                                                    capsys):
        """A ConnectionError escaping the client wrapper (daemon died
        mid-request) must not surface as a traceback."""
        from repro.exp import fig9

        def dead(tasks, address):
            raise ConnectionResetError("daemon died mid-request")

        monkeypatch.setattr(fig9, "evaluate_tasks_remote", dead)
        with pytest.raises(SystemExit) as exc:
            fig9.main(num_requests=50, server="http://127.0.0.1:59999")
        assert exc.value.code == 2
        assert "daemon died" in capsys.readouterr().err

    def test_fig10_raw_transport_error_is_clean_exit(self, monkeypatch,
                                                     capsys):
        import repro.sim.client as client
        from repro.exp import fig10

        def dead(tasks, address=None, latencies=True):
            raise ConnectionRefusedError("connection refused")

        monkeypatch.setattr(client, "evaluate_tasks_remote", dead)
        with pytest.raises(SystemExit) as exc:
            fig10.main(num_requests=50, server="http://127.0.0.1:59999")
        assert exc.value.code == 2
        assert "connection refused" in capsys.readouterr().err


class TestFig10Ratio:
    """Regression: unknown names raised a bare KeyError instead of the
    repo's ConfigError-with-choices convention."""

    @pytest.fixture(scope="class")
    def result(self):
        from repro.exp import fig10
        return fig10.run(num_requests=400)

    def test_unknown_model_raises_config_error(self, result):
        with pytest.raises(ConfigError, match="DeiT-T"):
            result.ratio("DeiT-XL", "3D_DDR4")

    def test_unknown_memory_raises_config_error(self, result):
        with pytest.raises(ConfigError, match="COSMOS"):
            result.ratio("DeiT-T", "HBM3")

    def test_known_pair_still_works(self, result):
        assert result.ratio("DeiT-T", "3D_DDR4") > 1.0


class TestFig2Shape:
    def test_crossbar_corrupts_comet_does_not(self):
        result = fig2.run()
        assert result.corrupted_cells > 100
        assert result.corrupted_fraction > 0.05
        assert result.comet_corrupted_cells == 0

    def test_shift_matches_section_ii_b(self):
        result = fig2.run()
        assert result.per_write_shift == pytest.approx(0.08, abs=0.01)


class TestFig3Shape:
    def test_gst_selected(self):
        result = fig3.run(points=4)
        assert result.selected_material == "GST"

    def test_gst_has_largest_index_gap(self):
        result = fig3.run(points=4)
        gaps = {}
        for name, states in result.series.items():
            gaps[name] = states["crystalline"][0][0] - states["amorphous"][0][0]
        assert gaps["GST"] > gaps["GSST"] > gaps["Sb2Se3"]


class TestFig4Shape:
    def test_selects_20nm_film(self):
        result = fig4.run(widths_nm=(480,), thicknesses_nm=(10, 20, 30))
        assert result.selected_thickness_nm == pytest.approx(20.0)

    def test_contrasts_jointly_high_at_star(self):
        result = fig4.run(widths_nm=(480,), thicknesses_nm=(10, 20))
        assert result.selected.transmission_contrast > 0.8
        assert result.selected.absorption_contrast > 0.8


class TestFig6Shape:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run()

    def test_reset_energies_near_paper(self, result):
        assert result.reset_energy_pj[ProgrammingMode.CRYSTALLINE_DEPOSITED] \
            == pytest.approx(880, rel=0.05)
        assert result.reset_energy_pj[ProgrammingMode.AMORPHOUS_DEPOSITED] \
            == pytest.approx(280, rel=0.05)

    def test_sixteen_levels_six_percent_spacing(self, result):
        assert result.level_spacing == pytest.approx(0.06, abs=0.005)
        for table in result.levels.values():
            assert len(table) == 16


class TestFig7Fig8Shape:
    def test_fig7_power_descends_with_density(self):
        result = fig7.run()
        assert result.stacks[1].total_w > result.stacks[2].total_w \
            > result.stacks[4].total_w
        assert result.selected_bits == 4

    def test_fig8_comet_well_below_cosmos(self):
        result = fig8.run()
        assert 0.2 <= result.power_ratio <= 0.45  # paper: 0.26


class TestRunnerInterface:
    def test_run_experiment_returns_result(self):
        result = run_experiment("table1")
        assert result.soa_interval_rows == 46
