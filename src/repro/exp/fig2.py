"""Fig. 2 — data corruption in the crossbar OPCM memory from crosstalk.

The paper stores an image in a COSMOS-style crossbar at 4 bits/cell and
shows it destroyed after four writes to adjoining rows.  We reproduce the
experiment quantitatively: a synthetic 64x64 4-bit image is stored as
crystalline fractions, four full-row writes hit the adjoining rows, the
thermo-optic crosstalk model drifts the victims, and we report how many
cells now decode to the wrong level — for the crossbar and, as the
contrast, for COMET's isolated cells (zero by construction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..photonics.crosstalk import CrossbarCrosstalkModel
from .report import print_table


@dataclass
class Fig2Result:
    image_shape: Tuple[int, int]
    writes_performed: int
    corrupted_cells: int
    corrupted_fraction: float
    mean_level_error: float
    per_write_shift: float
    comet_corrupted_cells: int = 0   # isolated cells: no crosstalk path


def synthetic_image(rows: int = 64, cols: int = 64, levels: int = 16,
                    seed: int = 3) -> np.ndarray:
    """A deterministic test card: gradient + checker + random patches."""
    rng = np.random.RandomState(seed)
    yy, xx = np.mgrid[0:rows, 0:cols]
    gradient = (xx + yy) / (rows + cols - 2)
    checker = ((xx // 8 + yy // 8) % 2) * 0.25
    noise = rng.random_sample((rows, cols)) * 0.15
    image = np.clip(gradient * 0.6 + checker + noise, 0.0, 1.0)
    return np.round(image * (levels - 1)).astype(int)


def run(rows: int = 64, cols: int = 64, bits_per_cell: int = 4,
        num_adjacent_writes: int = 4) -> Fig2Result:
    levels = 2 ** bits_per_cell
    spacing = 1.0 / (levels - 1)
    image_levels = synthetic_image(rows, cols, levels)
    fractions = image_levels * spacing

    model = CrossbarCrosstalkModel()
    # Four writes to rows adjoining the image block (Fig. 2 caption):
    # pick interior rows so both neighbours are victims.
    write_rows = [rows // 5, 2 * rows // 5, 3 * rows // 5, 4 * rows // 5]
    write_rows = write_rows[:num_adjacent_writes]
    after = model.corrupt_after_writes(fractions, write_rows)

    corrupted, fraction = model.levels_corrupted(fractions, after, spacing)
    after_levels = np.clip(np.round(after / spacing), 0, levels - 1)
    mean_error = float(np.mean(np.abs(after_levels - image_levels)))
    return Fig2Result(
        image_shape=(rows, cols),
        writes_performed=len(write_rows),
        corrupted_cells=corrupted,
        corrupted_fraction=fraction,
        mean_level_error=mean_error,
        per_write_shift=model.fraction_shift_per_write,
    )


def main() -> Fig2Result:
    result = run()
    print_table(
        ["metric", "value"],
        [
            ["image", f"{result.image_shape[0]}x{result.image_shape[1]} @ 4b/cell"],
            ["adjacent-row writes", result.writes_performed],
            ["crosstalk shift per write", f"{result.per_write_shift:.3f} "
                                          f"(paper: ~0.08)"],
            ["corrupted cells (crossbar)", result.corrupted_cells],
            ["corrupted fraction (crossbar)", f"{result.corrupted_fraction:.1%}"],
            ["mean |level error| (crossbar)", f"{result.mean_level_error:.2f}"],
            ["corrupted cells (COMET, isolated)", result.comet_corrupted_cells],
        ],
        title="Fig. 2 — crossbar image corruption after adjacent writes",
    )
    return result


if __name__ == "__main__":
    main()
