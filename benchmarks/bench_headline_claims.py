"""Bench — the abstract/conclusion headline claims, all at once."""

from repro.exp.headline import PAPER_CLAIMS, run as run_headline


def bench_headline_claims(benchmark):
    result = benchmark.pedantic(
        run_headline, kwargs={"num_requests": 6000}, rounds=1, iterations=1)

    print()
    for key, paper_value in PAPER_CLAIMS.items():
        measured = result.measured[key]
        print(f"  {key:28s} measured {measured:7.2f} | paper {paper_value}")

    measured = result.measured
    # Every claim must hold directionally; the photonic-vs-photonic ones
    # must land near the paper's magnitude.
    assert measured["bandwidth_vs_cosmos"] > 3.5          # paper 5.1-7.1
    assert measured["epb_vs_cosmos"] > 9.0                # paper 12.9-15.1
    assert measured["latency_vs_cosmos"] > 2.0            # paper 3
    assert measured["bw_per_epb_vs_cosmos"] > 40.0        # paper 65.8
    assert measured["power_ratio_vs_cosmos"] < 0.45       # paper 0.26
