"""Property-based tests (hypothesis) on core invariants.

Covers the data structures and mappings where exhaustive enumeration is
impossible: the address mapper bijection, effective-medium bounds, loss
budget algebra, trace round-trips, MLC packing, JMAK monotonicity, LUT
compensation bounds, and scheduler conservation laws.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.address import AddressMapper
from repro.arch.lut import GainLUT
from repro.arch.organization import MemoryOrganization
from repro.device.kinetics import CrystallizationKinetics
from repro.device.mlc import MultiLevelCell
from repro.materials import get_record
from repro.materials.effective_medium import lorentz_lorenz_mix
from repro.photonics.losses import LossBudget
from repro.sim.controller import MemoryController
from repro.sim.devices import EnergyModel, MemoryDeviceModel
from repro.sim.request import MemRequest, OpType
from repro.sim.trace import roundtrip

_MAPPER = AddressMapper(MemoryOrganization.comet(4), channels=8)
_KINETICS = CrystallizationKinetics(
    get_record("GST").kinetics, get_record("GST").thermal)

lines = st.integers(min_value=0,
                    max_value=_MAPPER.capacity_bytes // 128 - 1)


class TestAddressMapping:
    @given(lines)
    @settings(max_examples=200)
    def test_decompose_compose_bijection(self, line):
        address = line * 128
        assert _MAPPER.compose(_MAPPER.decompose(address)) == address

    @given(lines)
    @settings(max_examples=200)
    def test_mapped_location_in_bounds(self, line):
        org = _MAPPER.org
        loc = _MAPPER.map_address(line * 128)
        assert 0 <= loc.bank < org.banks
        assert 0 <= loc.subarray_id < org.subarrays_per_bank
        assert 0 <= loc.subarray_row < org.rows_per_subarray
        assert 0 <= loc.subarray_col < org.cols_per_subarray

    @given(st.lists(lines, min_size=2, max_size=50, unique=True))
    @settings(max_examples=50)
    def test_distinct_lines_distinct_cells(self, line_list):
        locations = {
            (loc.channel, loc.bank, loc.subarray_id,
             loc.subarray_row, loc.subarray_col)
            for loc in (_MAPPER.map_address(line * 128) for line in line_list)
        }
        assert len(locations) == len(line_list)


class TestEffectiveMedium:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_blend_stays_between_endpoints(self, fc):
        eps_a, eps_c = complex(15.5, 0.35), complex(36.6, 10.1)
        eps = lorentz_lorenz_mix(eps_a, eps_c, fc)
        assert eps_a.real - 1e-9 <= eps.real <= eps_c.real + 1e-9
        assert eps_a.imag - 1e-9 <= eps.imag <= eps_c.imag + 1e-9

    @given(st.floats(min_value=0.0, max_value=0.98),
           st.floats(min_value=0.005, max_value=0.02))
    def test_blend_strictly_monotone(self, fc, step):
        eps_a, eps_c = complex(15.5, 0.35), complex(36.6, 10.1)
        lo = lorentz_lorenz_mix(eps_a, eps_c, fc)
        hi = lorentz_lorenz_mix(eps_a, eps_c, min(fc + step, 1.0))
        assert hi.real > lo.real


class TestLossBudgetAlgebra:
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0),
                    min_size=1, max_size=20))
    def test_total_is_sum_and_transmission_consistent(self, losses):
        budget = LossBudget()
        for index, loss in enumerate(losses):
            budget.add(f"e{index}", loss)
        assert budget.total_db == pytest.approx(sum(losses))
        assert budget.transmission == pytest.approx(
            10 ** (-sum(losses) / 10.0))

    @given(st.floats(min_value=1e-6, max_value=1e-2),
           st.floats(min_value=0.0, max_value=30.0))
    def test_launch_then_deliver_is_identity(self, target, loss):
        budget = LossBudget().add("path", loss)
        launch = budget.required_launch_power_w(target)
        assert budget.delivered_power_w(launch) == pytest.approx(target)


class TestTraceRoundtrip:
    @given(st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2**33 - 128),
            st.booleans(),
            st.floats(min_value=0.0, max_value=1e6),
        ),
        min_size=1, max_size=50,
    ))
    @settings(max_examples=50)
    def test_format_preserves_semantics(self, records):
        requests = [
            MemRequest(address=(addr // 128) * 128,
                       op=OpType.READ if is_read else OpType.WRITE,
                       arrival_ns=arrival)
            for addr, is_read, arrival in records
        ]
        recovered = roundtrip(requests)
        assert len(recovered) == len(requests)
        for original, back in zip(requests, recovered):
            assert back.address == original.address
            assert back.op == original.op
            assert back.arrival_ns == pytest.approx(
                original.arrival_ns, abs=0.5)


class TestMlcPacking:
    @given(st.integers(min_value=1, max_value=5),
           st.data())
    def test_pack_unpack_identity(self, bits, data):
        mlc = MultiLevelCell(bits)
        values = data.draw(st.lists(
            st.integers(min_value=0, max_value=mlc.num_levels - 1),
            min_size=1, max_size=16))
        assert mlc.unpack_values(mlc.pack_values(values), len(values)) == values

    @given(st.integers(min_value=1, max_value=5))
    def test_exact_levels_always_decode(self, bits):
        mlc = MultiLevelCell(bits)
        for level in range(mlc.num_levels):
            assert mlc.decide_level(mlc.transmission_for_level(level)) == level


class TestJmakInvariants:
    @given(st.floats(min_value=440.0, max_value=890.0),
           st.floats(min_value=1e-10, max_value=1e-5))
    def test_fraction_in_unit_interval(self, temperature, time_s):
        fc = _KINETICS.isothermal_fraction(temperature, time_s)
        assert 0.0 <= fc <= 1.0   # saturates to 1.0 in float at long holds

    @given(st.floats(min_value=440.0, max_value=890.0),
           st.floats(min_value=1e-9, max_value=1e-6),
           st.floats(min_value=1.1, max_value=5.0))
    def test_longer_hold_never_less_crystalline(self, temp, time_s, factor):
        assert _KINETICS.isothermal_fraction(temp, time_s * factor) \
            >= _KINETICS.isothermal_fraction(temp, time_s)

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_progress_inversion(self, fc):
        theta = _KINETICS.progress_for_fraction(fc)
        assert _KINETICS.fraction_from_progress(theta) == pytest.approx(fc)


class TestLutCompensation:
    @given(st.sampled_from([1, 2, 4]),
           st.integers(min_value=0, max_value=511))
    def test_gain_within_one_tolerance_of_exact(self, bits, row):
        from repro.device.mlc import paper_loss_tolerance_db
        lut = GainLUT(512, bits)
        exact = (row % lut.soa_interval_rows) * 0.33
        gain = lut.gain_db_for_row(row)
        assert gain >= exact - 1e-9
        assert gain - exact <= paper_loss_tolerance_db(bits) + 1e-9


class TestSchedulerConservation:
    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.booleans(),
                  st.floats(min_value=0.0, max_value=5000.0)),
        min_size=1, max_size=60,
    ))
    @settings(max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    def test_every_request_completes_after_arrival(self, records):
        device = MemoryDeviceModel(
            name="prop", line_bytes=128, banks=4,
            data_burst_ns=4.0, interface_delay_ns=10.0,
            read_occupancy_ns=10.0, write_occupancy_ns=100.0,
            shared_bus=True, energy=EnergyModel(),
        )
        requests = sorted(
            (MemRequest(address=line * 128,
                        op=OpType.READ if is_read else OpType.WRITE,
                        arrival_ns=arrival)
             for line, is_read, arrival in records),
            key=lambda r: r.arrival_ns,
        )
        stats = MemoryController(device).run(list(requests))
        assert stats.num_requests == len(requests)
        assert all(latency > 0.0 for latency in stats.latencies_ns)
        # Conservation: total bytes equals request count x line size.
        assert stats.total_bytes == len(requests) * 128
        # Banks never serve more than wall-clock x banks of busy time.
        assert stats.busy_time_ns <= stats.sim_time_ns * device.banks + 1e-6
