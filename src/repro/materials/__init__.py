"""Phase-change material optical/thermal models (paper Section III.A, Fig. 3).

Public API:

* :class:`repro.materials.lorentz.LorentzOscillator` — single-pole Lorentz
  dispersion model, the "Lorenz model" of Ref. [27].
* :func:`repro.materials.lorentz.fit_single_oscillator` — exact fit of an
  oscillator to a published (n, k) point.
* :class:`repro.materials.pcm.PhaseChangeMaterial` — a PCM with amorphous and
  crystalline dispersion plus intermediate states via effective-medium
  blending.
* :func:`repro.materials.database.get_material` — GST / GSST / Sb2Se3 models
  built from the literature values the paper cites.
"""

from .lorentz import LorentzOscillator, fit_single_oscillator
from .effective_medium import (
    lorentz_lorenz_mix,
    linear_mix,
    effective_permittivity,
)
from .pcm import PhaseChangeMaterial, OpticalState
from .database import (
    MATERIAL_NAMES,
    MaterialRecord,
    ThermalProperties,
    KineticsParameters,
    get_material,
    get_record,
)

__all__ = [
    "LorentzOscillator",
    "fit_single_oscillator",
    "lorentz_lorenz_mix",
    "linear_mix",
    "effective_permittivity",
    "PhaseChangeMaterial",
    "OpticalState",
    "MATERIAL_NAMES",
    "MaterialRecord",
    "ThermalProperties",
    "KineticsParameters",
    "get_material",
    "get_record",
]
