"""COMET architecture layer (paper Section III.C–F and IV.A).

* :class:`repro.arch.organization.MemoryOrganization` — the
  (B x Sr x Mr x Mc x b) organization algebra.
* :class:`repro.arch.address.AddressMapper` — the Eq. (1)–(6) address
  mapping, physical byte address -> (bank, subarray, row, column).
* :class:`repro.arch.lut.GainLUT` — loss-aware SOA gain look-up table
  (sizing rules of Section IV.A).
* :mod:`repro.arch.reliability` — SOA placement and loss-tolerance rules.
* :class:`repro.arch.power.CometPowerModel` — the Fig. 7/8 power stacks.
* :mod:`repro.arch.timing` — Table II timing derivation from device level.
* :class:`repro.arch.comet.CometArchitecture` — facade tying it together.
"""

from .organization import MemoryOrganization
from .address import AddressMapper, CellLocation, DecomposedAddress
from .lut import GainLUT
from .reliability import (
    soa_row_interval,
    rows_passable,
    lut_granularity_rows,
    total_soa_count,
    active_soa_count,
)
from .power import CometPowerModel, PowerBreakdown
from .timing import DerivedTimings, derive_comet_timings
from .comet import CometArchitecture
from .laser_management import LaserPowerManager, managed_epb_pj
from .functional import FunctionalCometMemory, FunctionalStats
from .endurance import EnduranceModel, StartGapWearLeveler

__all__ = [
    "MemoryOrganization",
    "AddressMapper",
    "CellLocation",
    "DecomposedAddress",
    "GainLUT",
    "soa_row_interval",
    "rows_passable",
    "lut_granularity_rows",
    "total_soa_count",
    "active_soa_count",
    "CometPowerModel",
    "PowerBreakdown",
    "DerivedTimings",
    "derive_comet_timings",
    "CometArchitecture",
    "LaserPowerManager",
    "managed_epb_pj",
    "FunctionalCometMemory",
    "FunctionalStats",
    "EnduranceModel",
    "StartGapWearLeveler",
]
