"""Crossbar crosstalk and thermo-optic corruption model (Figs. 1–2).

Section II.B quantifies why the COSMOS crossbar cell is unreliable: a write
pulse on one row leaks ~ -18 dB of its power into the adjacent rows'
crossings.  With the 750 pJ pulses GST actually needs, that is ~12.6 pJ of
parasitic energy per adjacent cell — enough, through the thermo-optic
effect, to shift a neighbour's crystalline fraction by ~8 %, i.e. more than
one whole level of a 16-level (4-bit) cell with <8 % level spacing.

:class:`CrossbarCrosstalkModel` reproduces that arithmetic and then applies
it to stored arrays: each write disturbs victim cells in adjacent rows,
drifting their crystalline fraction toward the written state.  The Fig. 2
image-corruption experiment drives this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import db_to_linear


@dataclass(frozen=True)
class CrosstalkEvent:
    """One aggressor write and its effect on a victim cell."""

    victim_row: int
    victim_col: int
    coupled_energy_j: float
    fraction_shift: float


@dataclass(frozen=True)
class CrossbarCrosstalkModel:
    """Thermo-optic crosstalk in a waveguide-crossing OPCM crossbar.

    Parameters mirror Section II.B: write pulses of ``write_energy_j``
    couple at ``crosstalk_db`` into each adjacent row, and the reference
    point (12.6 pJ -> 8 % crystalline-fraction shift) sets the thermo-optic
    sensitivity.  The shift is directional: parasitic heating anneals the
    victim toward the crystallization window, so victims drift toward
    *higher* crystalline fraction until they saturate.
    """

    crosstalk_db: float = -18.0
    write_energy_j: float = 750e-12
    reference_energy_j: float = 12.6e-12
    reference_shift: float = 0.08
    neighbor_reach: int = 1

    def __post_init__(self) -> None:
        if self.crosstalk_db >= 0.0:
            raise ConfigError("crosstalk must be negative dB (a leak, not gain)")
        if self.write_energy_j <= 0.0 or self.reference_energy_j <= 0.0:
            raise ConfigError("energies must be positive")
        if not 0.0 < self.reference_shift < 1.0:
            raise ConfigError("reference shift must be a fraction in (0, 1)")
        if self.neighbor_reach < 1:
            raise ConfigError("neighbor reach must be at least 1")

    # -- single-event arithmetic (the Section II.B numbers) -----------------

    @property
    def coupled_energy_j(self) -> float:
        """Energy leaked into one adjacent cell per write pulse."""
        return self.write_energy_j * db_to_linear(self.crosstalk_db)

    @property
    def fraction_shift_per_write(self) -> float:
        """Crystalline-fraction drift of a victim per adjacent write."""
        shift = (self.reference_shift
                 * self.coupled_energy_j / self.reference_energy_j)
        return min(shift, 1.0)

    # -- array-level corruption --------------------------------------------

    def disturb_row_write(
        self,
        fractions: np.ndarray,
        row: int,
        written_columns: np.ndarray,
    ) -> List[CrosstalkEvent]:
        """Apply one row-write's crosstalk to an array of cell fractions.

        ``fractions`` is the (rows x cols) crystalline-fraction state and is
        modified in place.  ``written_columns`` is a boolean mask (or index
        array) of the columns actually pulsed.  Returns the victim events.
        """
        rows, cols = fractions.shape
        if not 0 <= row < rows:
            raise ConfigError(f"row {row} outside array of {rows} rows")
        col_mask = np.zeros(cols, dtype=bool)
        col_mask[written_columns] = True
        shift = self.fraction_shift_per_write
        events: List[CrosstalkEvent] = []
        for offset in range(1, self.neighbor_reach + 1):
            # Crosstalk decays ~linearly in dB with crossing distance.
            scaled = shift * db_to_linear(self.crosstalk_db * (offset - 1))
            for victim_row in (row - offset, row + offset):
                if not 0 <= victim_row < rows:
                    continue
                for col in np.nonzero(col_mask)[0]:
                    old = fractions[victim_row, col]
                    fractions[victim_row, col] = min(1.0, old + scaled)
                    events.append(CrosstalkEvent(
                        victim_row=victim_row,
                        victim_col=int(col),
                        coupled_energy_j=self.coupled_energy_j,
                        fraction_shift=fractions[victim_row, col] - old,
                    ))
        return events

    def corrupt_after_writes(
        self,
        fractions: np.ndarray,
        write_rows: List[int],
    ) -> np.ndarray:
        """Full-row writes to each row in ``write_rows``; returns the state."""
        state = np.array(fractions, dtype=float, copy=True)
        all_cols = np.arange(state.shape[1])
        for row in write_rows:
            self.disturb_row_write(state, row, all_cols)
        return state

    def levels_corrupted(
        self,
        before_fractions: np.ndarray,
        after_fractions: np.ndarray,
        level_spacing: float,
    ) -> Tuple[int, float]:
        """Count cells whose stored *level* changed, given level spacing.

        Returns ``(corrupted_cells, corrupted_fraction)``.
        """
        if level_spacing <= 0.0:
            raise ConfigError("level spacing must be positive")
        before_levels = np.round(before_fractions / level_spacing)
        after_levels = np.round(after_fractions / level_spacing)
        corrupted = int(np.count_nonzero(before_levels != after_levels))
        return corrupted, corrupted / before_fractions.size
