"""Off-chip laser source model.

COMET assumes an off-chip comb/laser bank supplying the ``N_c`` WDM
wavelengths (Section III.C).  The only laser quantities the architecture
model needs are (i) the optical launch power per wavelength required to
meet a target power at some point of the link given the loss budget, and
(ii) the electrical wall-plug power, using the 20 % efficiency of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from ..units import db_to_linear


@dataclass(frozen=True)
class LaserSource:
    """An off-chip laser bank with a shared wall-plug efficiency."""

    wall_plug_efficiency: float = TABLE_I.laser_wall_plug_efficiency
    max_optical_power_per_channel_w: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.wall_plug_efficiency <= 1.0:
            raise ConfigError("wall-plug efficiency must be in (0, 1]")

    def launch_power_w(self, target_power_w: float, path_loss_db: float) -> float:
        """Optical power to launch so ``target_power_w`` survives the path."""
        if target_power_w <= 0.0:
            raise ConfigError("target power must be positive")
        if path_loss_db < 0.0:
            raise ConfigError("path loss must be non-negative")
        required = target_power_w / db_to_linear(-path_loss_db)
        if required > self.max_optical_power_per_channel_w:
            raise ConfigError(
                f"required launch power {required * 1e3:.1f} mW exceeds the "
                f"per-channel limit "
                f"{self.max_optical_power_per_channel_w * 1e3:.1f} mW; "
                "add SOA stages to the loss budget"
            )
        return required

    def electrical_power_w(self, optical_power_w: float) -> float:
        """Wall-plug electrical power for a total optical output."""
        if optical_power_w < 0.0:
            raise ConfigError("optical power must be non-negative")
        return optical_power_w / self.wall_plug_efficiency

    def electrical_power_for_link_w(
        self,
        target_power_w: float,
        path_loss_db: float,
        channels: int,
    ) -> float:
        """Wall-plug power for ``channels`` identical WDM channels."""
        if channels <= 0:
            raise ConfigError("channel count must be positive")
        per_channel = self.launch_power_w(target_power_w, path_loss_db)
        return self.electrical_power_w(per_channel * channels)


def default_laser(params: OpticalParameters = TABLE_I) -> LaserSource:
    """Laser built from an :class:`OpticalParameters` record."""
    return LaserSource(wall_plug_efficiency=params.laser_wall_plug_efficiency)
