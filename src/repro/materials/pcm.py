"""Phase-change material facade: dispersion of arbitrary crystalline fractions.

This is the object the device layer consumes.  It bundles the amorphous and
crystalline Lorentz oscillators of a material, blends them with the
Lorentz–Lorenz effective-medium rule for intermediate crystalline fractions
(the Wang et al. multi-level scheme the paper adopts), and exposes the two
figures of merit Section III.A reasons about: refractive-index contrast and
extinction-coefficient contrast across the C-band.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..constants import C_BAND_MAX_M, C_BAND_MIN_M, WAVELENGTH_1550_M
from ..errors import MaterialError
from .database import KineticsParameters, MaterialRecord, ThermalProperties
from .effective_medium import effective_permittivity
from .lorentz import LorentzOscillator

ArrayLike = Union[float, np.ndarray]


class OpticalState(enum.Enum):
    """The two endpoint phases of a PCM."""

    AMORPHOUS = "amorphous"
    CRYSTALLINE = "crystalline"


@dataclass(frozen=True)
class PhaseChangeMaterial:
    """A PCM with full-dispersion endpoint phases and blended mid-states."""

    name: str
    amorphous: LorentzOscillator
    crystalline: LorentzOscillator
    thermal: ThermalProperties
    kinetics: KineticsParameters
    blending_scheme: str = "lorentz-lorenz"

    @classmethod
    def from_record(cls, record: MaterialRecord) -> "PhaseChangeMaterial":
        osc_a, osc_c = record.build_oscillators()
        return cls(
            name=record.name,
            amorphous=osc_a,
            crystalline=osc_c,
            thermal=record.thermal,
            kinetics=record.kinetics,
        )

    # -- dispersion at arbitrary crystalline fraction -----------------------

    def permittivity(
        self, wavelength_m: ArrayLike, crystalline_fraction: float
    ) -> ArrayLike:
        """Complex permittivity at the given wavelength(s) and fraction."""
        eps_a = self.amorphous.permittivity(wavelength_m)
        eps_c = self.crystalline.permittivity(wavelength_m)
        return effective_permittivity(
            eps_a, eps_c, crystalline_fraction, scheme=self.blending_scheme
        )

    def complex_index(
        self, wavelength_m: ArrayLike, crystalline_fraction: float
    ) -> ArrayLike:
        """Complex refractive index ``n + i*kappa`` of the blended state."""
        return np.sqrt(np.asarray(
            self.permittivity(wavelength_m, crystalline_fraction)
        ) + 0j)

    def nk(
        self, wavelength_m: ArrayLike, crystalline_fraction: float
    ) -> Tuple[ArrayLike, ArrayLike]:
        """Return ``(n, kappa)`` of the blended state."""
        index = self.complex_index(wavelength_m, crystalline_fraction)
        n, kappa = np.real(index), np.imag(index)
        if np.isscalar(wavelength_m):
            return float(n), float(kappa)
        return np.asarray(n), np.asarray(kappa)

    def nk_state(
        self, wavelength_m: ArrayLike, state: OpticalState
    ) -> Tuple[ArrayLike, ArrayLike]:
        """Endpoint-phase ``(n, kappa)`` without blending round-off."""
        osc = self.crystalline if state is OpticalState.CRYSTALLINE else self.amorphous
        return osc.nk(wavelength_m)

    # -- Section III.A figures of merit -------------------------------------

    def index_contrast(self, wavelength_m: ArrayLike = WAVELENGTH_1550_M) -> ArrayLike:
        """Refractive-index contrast ``n_c - n_a`` (the Fig. 3 blue/yellow gap)."""
        n_a, _ = self.amorphous.nk(wavelength_m)
        n_c, _ = self.crystalline.nk(wavelength_m)
        return n_c - n_a

    def extinction_contrast(
        self, wavelength_m: ArrayLike = WAVELENGTH_1550_M
    ) -> ArrayLike:
        """Extinction-coefficient contrast ``kappa_c - kappa_a``."""
        _, k_a = self.amorphous.nk(wavelength_m)
        _, k_c = self.crystalline.nk(wavelength_m)
        return k_c - k_a

    def c_band_wavelengths(self, points: int = 36) -> np.ndarray:
        """A convenience C-band wavelength grid (1530–1565 nm)."""
        if points < 2:
            raise MaterialError("need at least two wavelength points")
        return np.linspace(C_BAND_MIN_M, C_BAND_MAX_M, points)

    def figure_of_merit(self, wavelength_m: float = WAVELENGTH_1550_M) -> float:
        """Scalar OPCM suitability score used to rank candidates.

        Section III.A argues the best OPCM material maximizes *both* the
        index contrast (read SNR, MLC headroom) and the extinction contrast
        (efficient write-power absorption).  We score with the product of
        the two positive contrasts; GST must rank first for the paper's
        selection to be reproduced.
        """
        dn = float(self.index_contrast(wavelength_m))
        dk = float(self.extinction_contrast(wavelength_m))
        return max(dn, 0.0) * max(dk, 0.0)
