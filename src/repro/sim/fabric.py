"""Distributed sweep fabric: one coordinator, a fleet of ``EvalServer``s.

``run_sweep`` parallelizes a grid across the cores of one box; this
module is the step to a cluster.  A coordinator partitions a
:class:`~repro.sim.sweep.SweepSpec` across remote evaluation daemons
and drives the fleet to completion:

* **Digest-prefix partitioning.**  Every cell routes to the host whose
  index matches its :func:`~repro.sim.store.task_digest` prefix
  (``int(digest[:8], 16) % len(hosts)``) — deterministic, uniform, and
  a disjoint cover of the grid, so each daemon's result store and LRU
  see a stable working set across runs.
* **Bounded in-flight windows.**  ``window`` concurrent single-cell
  requests per host; a slow host never accumulates an unbounded queue
  of in-flight work that would all be lost if it died.
* **Work stealing.**  A host that drains its own partition steals cells
  from the tail of the largest remaining partition — the fleet finishes
  together instead of waiting on the slowest member.
* **Failure re-dispatch.**  A transport failure (after the client's own
  retry/backoff budget) marks the host dead; its unfinished cells
  re-enter the shared queue for the surviving hosts.  Each failed cell
  attempt backs off exponentially and consumes one unit of the cell's
  ``cell_attempts`` budget; a cell that exhausts its budget fails the
  run with a structured error (everything already completed is safely
  in the store — rerun to resume).
* **Write-through.**  Completed cells land in the coordinator's local
  :class:`~repro.sim.store.ResultStore` the moment they arrive, so an
  interrupted fabric run resumes exactly like an interrupted local
  sweep, and the final results are bit-identical to a serial
  :func:`~repro.sim.sweep.run_sweep` of the same spec.

Remote daemons keep their own ``--store`` write-back; the audited merge
tool (``python -m repro.sim merge-stores``,
:meth:`ResultStore.merge_from`) folds those stores back together
afterwards, with digest-collision conflict detection.

``python -m repro.sim fabric --hosts ... --grid`` is the CLI;
``python -m repro.sim fabric stats --hosts ...`` federates the fleet's
``/stats`` counters.
"""

from __future__ import annotations

import asyncio
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..errors import SimulationError
from .client import (DEFAULT_BACKOFF, DEFAULT_RETRIES, DEFAULT_TIMEOUT,
                     AsyncEvalClient, TransportError)
from .engine import EvalTask
from .stats import SimStats
from .store import ResultStore, task_digest
from .sweep import SweepResult, SweepSpec

#: Hex digits of the task digest used for host routing (32 bits —
#: uniform far past any realistic fleet size).
PARTITION_PREFIX_HEX = 8

#: Default in-flight single-cell requests per host.
DEFAULT_WINDOW = 4

#: Default total attempts per cell before the run is declared failed.
DEFAULT_CELL_ATTEMPTS = 3


def partition_index(task: EvalTask, num_partitions: int) -> int:
    """The partition one cell routes to (digest-prefix modulo)."""
    return int(task_digest(task)[:PARTITION_PREFIX_HEX], 16) % num_partitions


def partition_tasks(tasks: Sequence[EvalTask],
                    num_partitions: int) -> List[List[EvalTask]]:
    """Split cells into ``num_partitions`` deterministic partitions.

    Every cell lands in exactly one partition (a disjoint cover — the
    property the fabric tests pin), order within a partition follows
    the input order, and the assignment depends only on the task digest
    — the same spec partitions identically on every coordinator.
    """
    if num_partitions < 1:
        raise SimulationError("need at least one partition")
    parts: List[List[EvalTask]] = [[] for _ in range(num_partitions)]
    for task in tasks:
        parts[partition_index(task, num_partitions)].append(task)
    return parts


@dataclass
class FabricResult:
    """A finished fabric run: results plus dispatch provenance."""

    spec: SweepSpec
    results: Dict[EvalTask, SimStats]
    store_hits: int                  #: cells served by the local store
    completed: int                   #: cells evaluated by the fleet
    stolen: int                      #: cells run off their home partition
    redispatched: int                #: cells re-queued after a failure
    dead_hosts: List[str] = field(default_factory=list)
    per_host: Dict[str, int] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """Flat export rows, same shape as a local sweep's."""
        return SweepResult(self.spec, self.results,
                           self.store_hits, self.completed).rows()

    def describe(self) -> str:
        hosts = ", ".join(f"{host}={count}"
                          for host, count in self.per_host.items())
        line = (f"{len(self.results)} cells ({self.store_hits} local store "
                f"hits, {self.completed} remote: {hosts}); "
                f"{self.stolen} stolen, {self.redispatched} re-dispatched")
        if self.dead_hosts:
            line += f"; dead hosts: {', '.join(self.dead_hosts)}"
        return line


class _HostState:
    """One fleet member: its client, its partition, its liveness."""

    __slots__ = ("address", "client", "pending", "alive", "completed")

    def __init__(self, address: str, client: AsyncEvalClient) -> None:
        self.address = address
        self.client = client
        self.pending: "deque[EvalTask]" = deque()
        self.alive = True
        self.completed = 0


class _FabricRun:
    """Shared dispatcher state for one fabric execution.

    Everything here mutates on the event loop only, so the deques need
    no locking; ``wakeup`` is the single notification channel (new work
    queued, a cell completed, the run failed).
    """

    def __init__(self, hosts: List[_HostState], missing: List[EvalTask],
                 store: Optional[ResultStore], latencies: bool,
                 cell_attempts: int, backoff: float,
                 on_result: Optional[Callable[[EvalTask, SimStats], None]]
                 ) -> None:
        self.hosts = hosts
        self.store = store
        self.latencies = latencies
        self.cell_attempts = max(1, cell_attempts)
        self.backoff = backoff
        self.on_result = on_result
        self.overflow: "deque[EvalTask]" = deque()
        self.attempts: Dict[EvalTask, int] = {}
        self.results: Dict[EvalTask, SimStats] = {}
        self.remaining = len(missing)
        self.stolen = 0
        self.redispatched = 0
        self.failure: Optional[SimulationError] = None
        self.wakeup = asyncio.Event()
        self._requeues: Set["asyncio.Task"] = set()
        for task in missing:
            hosts[partition_index(task, len(hosts))].pending.append(task)

    # -- scheduling ---------------------------------------------------------

    def next_task(self, host: _HostState):
        """Next cell for one worker: re-dispatch queue first, then the
        host's own partition, then steal from the largest remainder."""
        if self.overflow:
            return self.overflow.popleft(), False
        if host.pending:
            return host.pending.popleft(), False
        victim = None
        for other in self.hosts:
            if other is host or not other.alive or not other.pending:
                continue
            if victim is None or len(other.pending) > len(victim.pending):
                victim = other
        if victim is not None:
            # Steal from the tail: the head cells are about to be
            # pulled by the victim's own workers.
            return victim.pending.pop(), True
        return None, False

    def fail(self, error: SimulationError) -> None:
        if self.failure is None:
            self.failure = error
        self.wakeup.set()

    def mark_dead(self, host: _HostState) -> None:
        """A host stopped answering: its unfinished partition re-enters
        the shared queue for the survivors."""
        if not host.alive:
            return
        host.alive = False
        while host.pending:
            self.overflow.append(host.pending.popleft())
            self.redispatched += 1
        self.wakeup.set()

    def cell_failed(self, task: EvalTask, error: SimulationError) -> None:
        """One failed attempt: consume budget, back off, re-queue."""
        attempts = self.attempts.get(task, 0) + 1
        self.attempts[task] = attempts
        if attempts >= self.cell_attempts:
            self.fail(SimulationError(
                f"fabric cell ({task.describe()}) failed after "
                f"{attempts} attempts: {error}"))
            return
        requeue = asyncio.ensure_future(self._requeue_after_backoff(
            task, self.backoff * (2 ** (attempts - 1))))
        self._requeues.add(requeue)
        requeue.add_done_callback(self._requeues.discard)

    async def _requeue_after_backoff(self, task: EvalTask,
                                     delay: float) -> None:
        if delay > 0:
            await asyncio.sleep(delay)
        self.overflow.append(task)
        self.redispatched += 1
        self.wakeup.set()

    # -- the worker loop ----------------------------------------------------

    async def worker(self, host: _HostState) -> None:
        """One in-flight slot on one host (``window`` of these per
        host).  Exits when the run completes, fails, or the host dies.
        """
        while host.alive and self.failure is None and self.remaining > 0:
            task, stolen = self.next_task(host)
            if task is None:
                # Nothing dispatchable right now (cells in flight
                # elsewhere, or a backoff pending): wait for a wakeup,
                # with a poll floor as a lost-wakeup safety net.
                self.wakeup.clear()
                try:
                    await asyncio.wait_for(self.wakeup.wait(), 0.05)
                except asyncio.TimeoutError:
                    pass
                continue
            try:
                stats = await host.client.eval_cell(
                    task, latencies=self.latencies)
            except TransportError as error:
                # The client's own retry budget is spent: the host is
                # unreachable.  Its queue re-enters the shared pool and
                # this in-flight cell consumes one attempt.
                self.mark_dead(host)
                self.cell_failed(task, error)
                continue
            except SimulationError as error:
                # Structured server-side failure (a crashed worker, a
                # restarted pool): the host is alive — retry the cell
                # elsewhere within its budget.
                self.cell_failed(task, error)
                continue
            if stolen:
                self.stolen += 1
            host.completed += 1
            self.results[task] = stats
            self.remaining -= 1
            if self.store is not None:
                self.store.put(task, stats, latencies=self.latencies)
            if self.on_result is not None:
                self.on_result(task, stats)
            self.wakeup.set()

    async def run(self, window: int) -> None:
        workers = [asyncio.ensure_future(self.worker(host))
                   for host in self.hosts for _ in range(max(1, window))]
        try:
            await asyncio.gather(*workers)
        finally:
            for requeue in list(self._requeues):
                requeue.cancel()
        if self.failure is not None:
            raise self.failure
        if self.remaining > 0:
            dead = [host.address for host in self.hosts if not host.alive]
            raise SimulationError(
                f"fabric stalled with {self.remaining} cells unfinished; "
                f"dead hosts: {dead or 'none'} — completed cells are in "
                f"the local store, rerun to resume")


async def run_fabric_async(
    spec: SweepSpec,
    hosts: Sequence[str],
    store: Optional[ResultStore] = None,
    resume: bool = True,
    window: int = DEFAULT_WINDOW,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    cell_attempts: int = DEFAULT_CELL_ATTEMPTS,
    latencies: bool = True,
    timeout: float = DEFAULT_TIMEOUT,
    on_result: Optional[Callable[[EvalTask, SimStats], None]] = None,
) -> FabricResult:
    """Execute a sweep across a fleet of evaluation daemons.

    ``hosts`` are client addresses (``http://host:port`` or
    ``unix:///path``).  Cells already in the local ``store`` are served
    from disk when ``resume`` is true; the rest are partitioned by
    digest prefix and dispatched with ``window`` in-flight requests per
    host, work stealing, and failure re-dispatch (see the module
    docstring).  ``latencies=False`` trims per-request samples from
    both the wire and the store write-through (archival mode).

    The final ``results`` are bit-identical to a serial
    :func:`~repro.sim.sweep.run_sweep` of the same spec.
    """
    addresses = list(dict.fromkeys(hosts))
    if not addresses:
        raise SimulationError("fabric needs at least one host")
    tasks = spec.tasks()
    cached: Dict[EvalTask, SimStats] = {}
    if store is not None and resume:
        cached = {task: hit for task, hit in store.get_many(tasks).items()
                  if hit is not None}
    missing = [task for task in tasks if task not in cached]
    states = [
        _HostState(address, AsyncEvalClient(address, timeout=timeout,
                                            retries=retries,
                                            backoff=backoff))
        for address in addresses
    ]
    run = _FabricRun(states, missing, store, latencies, cell_attempts,
                     backoff, on_result)
    run.results.update(cached)
    await run.run(window)
    return FabricResult(
        spec=spec,
        results=run.results,
        store_hits=len(cached),
        completed=sum(state.completed for state in states),
        stolen=run.stolen,
        redispatched=run.redispatched,
        dead_hosts=[state.address for state in states if not state.alive],
        per_host={state.address: state.completed for state in states},
    )


def run_fabric(spec: SweepSpec, hosts: Sequence[str],
               **kwargs: Any) -> FabricResult:
    """Synchronous wrapper over :func:`run_fabric_async`."""
    return asyncio.run(run_fabric_async(spec, hosts, **kwargs))


# -- federated stats ---------------------------------------------------------


async def federate_stats_async(hosts: Sequence[str],
                               timeout: float = 30.0,
                               retries: int = DEFAULT_RETRIES,
                               backoff: float = DEFAULT_BACKOFF
                               ) -> Dict[str, Any]:
    """Every host's ``/stats`` plus fleet-wide numeric totals.

    Unreachable hosts are reported (``{"error": ...}`` per host and an
    ``unreachable`` count), never raised — a dashboard poll must not
    die because one member is restarting.
    """
    addresses = list(dict.fromkeys(hosts))
    if not addresses:
        raise SimulationError("need at least one host")

    async def fetch(address: str) -> Any:
        try:
            return await AsyncEvalClient(address, timeout=timeout,
                                         retries=retries,
                                         backoff=backoff).stats()
        except SimulationError as error:
            return {"error": str(error)}

    snapshots = await asyncio.gather(*(fetch(a) for a in addresses))
    per_host = dict(zip(addresses, snapshots))
    totals: Dict[str, Any] = {}
    kernel_totals: Dict[str, int] = {}
    reachable = 0
    for snapshot in snapshots:
        if "error" in snapshot:
            continue
        reachable += 1
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            totals[key] = totals.get(key, 0) + value
        for key, value in (snapshot.get("kernel") or {}).items():
            if isinstance(value, int) and not isinstance(value, bool):
                kernel_totals[key] = kernel_totals.get(key, 0) + value
    if kernel_totals:
        totals["kernel"] = kernel_totals
    return {
        "hosts": per_host,
        "totals": totals,
        "reachable": reachable,
        "unreachable": len(addresses) - reachable,
    }


def federate_stats(hosts: Sequence[str], **kwargs: Any) -> Dict[str, Any]:
    """Synchronous wrapper over :func:`federate_stats_async`."""
    return asyncio.run(federate_stats_async(hosts, **kwargs))


# -- CLI ---------------------------------------------------------------------


def _parse_hosts(values: List[str]) -> List[str]:
    hosts: List[str] = []
    for value in values:
        hosts.extend(part.strip() for part in value.split(",")
                     if part.strip())
    return list(dict.fromkeys(hosts))


def _stats_main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim fabric stats",
        description="Federate /stats across a fleet of evaluation "
                    "daemons.",
    )
    parser.add_argument("--hosts", required=True, action="append",
                        metavar="ADDR[,ADDR...]",
                        help="daemon addresses (repeatable or "
                             "comma-separated)")
    parser.add_argument("--timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    hosts = _parse_hosts(args.hosts)
    if not hosts:
        parser.error("--hosts resolved to an empty set")
    report = federate_stats(hosts, timeout=args.timeout)
    for address, snapshot in report["hosts"].items():
        if "error" in snapshot:
            print(f"{address}: unreachable ({snapshot['error']})")
            continue
        print(f"{address}: computed {snapshot.get('computed', 0)}, "
              f"store_hits {snapshot.get('store_hits', 0)}, "
              f"lru_hits {snapshot.get('lru_hits', 0)}, "
              f"queries {snapshot.get('queries', 0)}, "
              f"errors {snapshot.get('errors', 0)}")
    totals = report["totals"]
    print(f"fleet ({report['reachable']}/{len(report['hosts'])} "
          f"reachable): " + ", ".join(
              f"{key} {value}" for key, value in sorted(totals.items())
              if not isinstance(value, dict)))
    return 0 if report["unreachable"] == 0 else 1


def fabric_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim fabric`` — run a sweep across a fleet (or
    ``fabric stats`` — federate the fleet's counters)."""
    import argparse

    from .factory import known_architectures
    from .sweep import run_sweep, write_csv, write_json
    from .tracegen import SPEC_WORKLOADS, WORKLOAD_NAMES

    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.sim fabric",
        description="Partition a sweep across remote evaluation daemons "
                    "(digest-prefix routing, bounded in-flight windows, "
                    "work stealing, failure re-dispatch) with local "
                    "result-store write-through.  "
                    "'fabric stats --hosts ...' federates /stats.",
    )
    parser.add_argument("--hosts", required=True, action="append",
                        metavar="ADDR[,ADDR...]",
                        help="daemon addresses (repeatable or "
                             "comma-separated)")
    parser.add_argument("--arch", default="ALL",
                        choices=known_architectures() + ("ALL",))
    parser.add_argument("--workloads", default=None,
                        help="'spec' (default), 'all', or a "
                             "comma-separated list")
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queue-depths", default=None,
                        metavar="D[,D...]",
                        help="queue-depth axis (integers; 'default' "
                             "keeps the per-architecture default)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="local write-through result store "
                             "(resumable)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore cells already in --store")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="in-flight requests per host")
    parser.add_argument("--retries", type=int, default=DEFAULT_RETRIES,
                        help="transport retries per request before a "
                             "host is declared dead")
    parser.add_argument("--backoff", type=float, default=DEFAULT_BACKOFF,
                        help="base retry/re-dispatch backoff (seconds)")
    parser.add_argument("--cell-attempts", type=int,
                        default=DEFAULT_CELL_ATTEMPTS,
                        help="attempts per cell before the run fails")
    parser.add_argument("--no-latencies", action="store_true",
                        help="archival mode: trim per-request samples "
                             "from the wire and the store")
    parser.add_argument("--export", choices=("csv", "json"), default=None)
    parser.add_argument("--export-path", default="-", metavar="PATH")
    args = parser.parse_args(argv)

    hosts = _parse_hosts(args.hosts)
    if not hosts:
        parser.error("--hosts resolved to an empty set")
    if args.window < 1:
        parser.error("--window must be >= 1")
    if args.cell_attempts < 1:
        parser.error("--cell-attempts must be >= 1")
    if args.workloads in (None, "spec"):
        workloads = sorted(SPEC_WORKLOADS)
    elif args.workloads == "all":
        workloads = list(WORKLOAD_NAMES)
    else:
        workloads = [name.strip() for name in args.workloads.split(",")
                     if name.strip()]
    if not workloads:
        parser.error("--workloads resolved to an empty set")
    queue_depths: List[Optional[int]] = [None]
    if args.queue_depths is not None:
        queue_depths = []
        for part in args.queue_depths.split(","):
            part = part.strip()
            if not part:
                continue
            if part == "default":
                queue_depths.append(None)
                continue
            try:
                queue_depths.append(int(part))
            except ValueError:
                parser.error(f"--queue-depths entry {part!r} is not an "
                             f"integer (or 'default')")
        if not queue_depths:
            parser.error("--queue-depths resolved to an empty set")
    archs = known_architectures() if args.arch == "ALL" else (args.arch,)
    try:
        spec = SweepSpec(architectures=tuple(archs),
                         workloads=tuple(workloads),
                         num_requests=(args.requests,),
                         seeds=(args.seed,),
                         queue_depths=tuple(queue_depths))
        store = ResultStore(args.store) if args.store else None
    except SimulationError as error:
        parser.error(str(error))
    except OSError as error:
        parser.error(f"result store {args.store!r} unusable: {error}")
    table = sys.stderr if (args.export and args.export_path == "-") \
        else sys.stdout
    print(f"fabric       : {len(hosts)} hosts, {spec.num_cells} cells "
          f"(window {args.window}/host, {args.cell_attempts} attempts/"
          f"cell)", file=table)
    try:
        result = run_fabric(spec, hosts, store=store,
                            resume=not args.no_resume, window=args.window,
                            retries=args.retries, backoff=args.backoff,
                            cell_attempts=args.cell_attempts,
                            latencies=not args.no_latencies)
    except SimulationError as error:
        message = f"error: {error}"
        if args.store:
            message += (f"\ncompleted cells are checkpointed in "
                        f"{args.store}; rerun to continue")
        print(message, file=sys.stderr)
        return 1
    print(f"dispatch     : {result.describe()}", file=table)
    if args.export:
        writer = write_csv if args.export == "csv" else write_json
        if args.export_path == "-":
            writer(result.rows(), sys.stdout)
        else:
            with open(args.export_path, "w", newline="") as stream:
                writer(result.rows(), stream)
    return 0
