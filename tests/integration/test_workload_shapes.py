"""Per-workload shape assertions on the Fig. 9 grid.

The geomean checks in test_end_to_end.py aggregate away workload
character; these tests pin the per-workload behaviours the trace
generators are supposed to induce in each architecture.
"""

import pytest

from repro.sim import MainMemorySimulator


@pytest.fixture(scope="module")
def ddr3():
    return MainMemorySimulator("2D_DDR3")


@pytest.fixture(scope="module")
def comet():
    return MainMemorySimulator("COMET")


class TestDramRowBufferBehaviour:
    def test_streaming_workload_hits_rows(self, ddr3):
        """libquantum (92 % sequential) must enjoy a high row-hit rate."""
        stats = ddr3.run_workload("libquantum", 3000)
        assert stats.row_hit_rate > 0.6

    def test_pointer_chasing_misses_rows(self, ddr3):
        """mcf (5 % sequential over 512 MB) must miss almost always."""
        stats = ddr3.run_workload("mcf", 3000)
        assert stats.row_hit_rate < 0.2

    def test_hits_translate_to_cheaper_service(self, ddr3):
        """Row hits buy per-request service time (bank-occupancy), even
        though sequential runs lose bank-level parallelism to the
        row-granular interleave."""
        streaming = ddr3.run_workload("libquantum", 3000)
        random = ddr3.run_workload("mcf", 3000)
        busy_per_request_stream = streaming.busy_time_ns / streaming.num_requests
        busy_per_request_random = random.busy_time_ns / random.num_requests
        assert busy_per_request_stream < 0.5 * busy_per_request_random

    def test_refresh_happens(self, ddr3):
        stats = ddr3.run_workload("gcc", 3000)
        assert stats.refresh_count > 0
        assert stats.refresh_energy_j > 0.0


class TestCometWorkloadSensitivity:
    def test_write_heavy_workload_slowest(self, comet):
        """lbm's 38 % writes at 170 ns dominate COMET's service time."""
        lbm = comet.run_workload("lbm", 3000)
        libquantum = comet.run_workload("libquantum", 3000)
        assert libquantum.avg_latency_ns < lbm.avg_latency_ns

    def test_no_row_buffer_no_hits(self, comet):
        stats = comet.run_workload("libquantum", 3000)
        assert stats.row_hits == stats.row_misses == 0

    def test_no_refresh_ever(self, comet):
        stats = comet.run_workload("mcf", 3000)
        assert stats.refresh_count == 0

    def test_comet_insensitive_to_locality(self, comet):
        """Fixed 10 ns reads: COMET's read service doesn't care about
        sequential vs random — unlike DRAM (the refresh-free, row-free
        advantage the paper claims)."""
        sequential = comet.run_workload("libquantum", 3000)
        # milc is mid-intensity with much weaker locality.
        scattered = comet.run_workload("milc", 3000)
        # Latency varies with load, but stays within one service class.
        assert scattered.avg_latency_ns < 4 * sequential.avg_latency_ns


class TestCrossArchitectureShapes:
    @pytest.mark.parametrize("workload", ["mcf", "lbm", "libquantum", "milc"])
    def test_comet_beats_cosmos_everywhere(self, workload):
        comet = MainMemorySimulator("COMET").run_workload(workload, 2000)
        cosmos = MainMemorySimulator("COSMOS").run_workload(workload, 2000)
        assert comet.bandwidth_gbps > cosmos.bandwidth_gbps
        assert comet.energy_per_bit_pj < cosmos.energy_per_bit_pj

    def test_epcm_suffers_most_on_write_heavy(self):
        """EPCM's 470 ns SET shows worst on lbm's write mix."""
        epcm = MainMemorySimulator("EPCM-MM")
        lbm = epcm.run_workload("lbm", 2000)
        libquantum = epcm.run_workload("libquantum", 2000)
        assert lbm.avg_latency_ns > libquantum.avg_latency_ns

    def test_utilization_bounded(self):
        for arch in ("COMET", "2D_DDR3"):
            stats = MainMemorySimulator(arch).run_workload("mcf", 2000)
            assert 0.0 < stats.utilization <= 1.0 * \
                MainMemorySimulator(arch).device.banks
