"""DOTA accelerator system model (Fig. 10)."""

import pytest

from repro.accel.dota import (
    DotaEnergyModel,
    DotaSystem,
    PHOTONIC_MEMORIES,
    dota_case_study,
)
from repro.accel.transformer import DEIT_TINY
from repro.errors import ConfigError


class TestConversionTax:
    def test_photonic_memories_skip_conversion(self):
        model = DotaEnergyModel()
        for name in PHOTONIC_MEMORIES:
            assert model.conversion_pj_per_bit(name) \
                == model.photonic_injection_pj_per_bit
        assert model.conversion_pj_per_bit("3D_DDR4") \
            == model.electro_optic_pj_per_bit

    def test_electro_optic_tax_is_significant(self):
        model = DotaEnergyModel()
        assert model.electro_optic_pj_per_bit \
            > 10 * model.photonic_injection_pj_per_bit

    def test_validation(self):
        with pytest.raises(ConfigError):
            DotaEnergyModel(electro_optic_pj_per_bit=-1.0)


class TestBuffering:
    def test_deit_activations_fit_on_chip(self):
        """DeiT per-layer working sets are under the 1 MB buffer, so main
        memory sees (almost) pure weight streaming."""
        system = DotaSystem("COMET", DEIT_TINY)
        assert system._layer_spill_bytes() == 0
        workload = system.traffic_workload()
        assert workload.read_fraction > 0.99

    def test_tiny_buffer_forces_spills(self):
        system = DotaSystem("COMET", DEIT_TINY, on_chip_buffer_bytes=0)
        assert system._layer_spill_bytes() > 0
        assert system.traffic_workload().read_fraction < 0.99

    def test_validation(self):
        with pytest.raises(ConfigError):
            DotaSystem("COMET", DEIT_TINY, inference_rate_per_s=0.0)


class TestFig10Shape:
    @pytest.fixture(scope="class")
    def study(self):
        return dota_case_study(
            memories=["3D_DDR4", "COSMOS", "COMET"], num_requests=2500)

    def test_comet_beats_3d_ddr4_at_system_level(self, study):
        """The Fig. 10 crossover: 3D_DDR4 wins on raw memory EPB but loses
        once the electro-optic conversion stage is charged."""
        for per_mem in study.values():
            assert per_mem["3D_DDR4"].memory_epb_pj \
                < per_mem["COMET"].memory_epb_pj
            assert per_mem["3D_DDR4"].system_epb_pj \
                > per_mem["COMET"].system_epb_pj

    def test_comet_beats_cosmos_everywhere(self, study):
        for per_mem in study.values():
            assert per_mem["COSMOS"].system_epb_pj \
                > per_mem["COMET"].system_epb_pj

    def test_both_models_present(self, study):
        assert set(study) == {"DeiT-T", "DeiT-B"}
