"""WDM grid allocation and microring addressability analysis.

COMET operates each bank with ``N_c`` wavelengths (256 at b=4, 1024 at
b=1) supplied by an off-chip comb (Section III.C).  Two feasibility
questions a designer must answer, which the paper leaves implicit:

1. **Does the comb fit the band?**  ``N_c`` channels at a chosen spacing
   must fit inside the C-band (35 nm).
2. **Can a microring address its channel uniquely?**  A ring responds at
   every multiple of its FSR; if the comb spans more than one FSR, a ring
   tuned to channel *i* also drops channel *i + FSR/spacing*.  Rings must
   either have FSR > comb span, or the architecture must interleave
   (the classic serial-WDM constraint).

:class:`WdmGrid` models the comb; :func:`ring_addressability` runs the
aliasing analysis against a ring design and reports the maximum cleanly
addressable channel count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..constants import C_BAND_MAX_M, C_BAND_MIN_M
from ..errors import ConfigError
from .ring import MicroringResonator


@dataclass(frozen=True)
class WdmGrid:
    """A uniform WDM comb inside an optical band."""

    num_channels: int
    channel_spacing_m: float = 0.1e-9           # 12.5 GHz-class dense WDM
    band_min_m: float = C_BAND_MIN_M
    band_max_m: float = C_BAND_MAX_M

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ConfigError("need at least one channel")
        if self.channel_spacing_m <= 0.0:
            raise ConfigError("channel spacing must be positive")
        if self.band_max_m <= self.band_min_m:
            raise ConfigError("band limits inverted")

    @property
    def band_width_m(self) -> float:
        return self.band_max_m - self.band_min_m

    @property
    def comb_span_m(self) -> float:
        """Wavelength span of the full comb."""
        return (self.num_channels - 1) * self.channel_spacing_m

    def fits_band(self) -> bool:
        """Does the comb fit inside the band?"""
        return self.comb_span_m <= self.band_width_m

    def wavelengths_m(self) -> np.ndarray:
        """Channel wavelengths, centred in the band."""
        if not self.fits_band():
            raise ConfigError(
                f"{self.num_channels} channels at "
                f"{self.channel_spacing_m * 1e9:.3f} nm span "
                f"{self.comb_span_m * 1e9:.1f} nm, exceeding the "
                f"{self.band_width_m * 1e9:.1f} nm band"
            )
        center = 0.5 * (self.band_min_m + self.band_max_m)
        start = center - self.comb_span_m / 2.0
        return start + np.arange(self.num_channels) * self.channel_spacing_m

    def max_channels_in_band(self) -> int:
        """Largest channel count this spacing supports in the band."""
        return int(self.band_width_m // self.channel_spacing_m) + 1


@dataclass(frozen=True)
class AddressabilityReport:
    """Outcome of the ring-vs-comb aliasing analysis."""

    num_channels: int
    channel_spacing_m: float
    ring_fsr_m: float
    channels_per_fsr: int
    aliased: bool
    max_clean_channels: int
    crosstalk_pairs: List[tuple]

    @property
    def feasible(self) -> bool:
        return not self.aliased


def ring_addressability(
    grid: WdmGrid,
    ring: MicroringResonator = MicroringResonator(),
) -> AddressabilityReport:
    """Check whether one ring per channel can address the comb cleanly.

    A ring centred on channel ``i`` also resonates at ``i + k * m`` for
    integer ``k``, where ``m = FSR / spacing`` — if the comb spans beyond
    one FSR those channels alias onto the same ring.
    """
    fsr = ring.free_spectral_range_m
    channels_per_fsr = max(int(fsr // grid.channel_spacing_m), 1)
    aliased = grid.comb_span_m > fsr
    pairs = []
    if aliased:
        for base in range(min(grid.num_channels, channels_per_fsr)):
            alias = base + channels_per_fsr
            if alias < grid.num_channels:
                pairs.append((base, alias))
    return AddressabilityReport(
        num_channels=grid.num_channels,
        channel_spacing_m=grid.channel_spacing_m,
        ring_fsr_m=fsr,
        channels_per_fsr=channels_per_fsr,
        aliased=aliased,
        max_clean_channels=min(grid.num_channels, channels_per_fsr),
        crosstalk_pairs=pairs,
    )


def comet_wavelength_plan(
    num_wavelengths: int,
    ring: MicroringResonator = MicroringResonator(),
) -> WdmGrid:
    """Pick the densest standard spacing that fits the comb in one FSR.

    Walks the dense-WDM spacing ladder (100 / 50 / 25 / 12.5 GHz-class:
    0.8, 0.4, 0.2, 0.1 nm) and returns the first grid that both fits the
    C-band and stays within the ring's FSR; raises if none does — the
    honest outcome for very large channel counts, which is why COMET-1b's
    1024 wavelengths per bank are the paper's weakest configuration.
    """
    for spacing_nm in (0.8, 0.4, 0.2, 0.1, 0.05):
        grid = WdmGrid(num_wavelengths, channel_spacing_m=spacing_nm * 1e-9)
        if not grid.fits_band():
            continue
        if not ring_addressability(grid, ring).aliased:
            return grid
    raise ConfigError(
        f"no standard spacing fits {num_wavelengths} channels in one "
        f"{ring.free_spectral_range_m * 1e9:.1f} nm FSR inside the C-band"
    )
