"""Resumable, sharded parameter sweeps over the evaluation grid.

Where :func:`repro.sim.engine.run_evaluation` runs the fixed Fig. 9
(architecture x workload) grid, a :class:`SweepSpec` names an arbitrary
parameter grid — architectures x workloads x request counts x seeds x
queue-depth overrides — and :func:`run_sweep` executes it the way large
DSE studies do:

* cells already present in the :class:`~repro.sim.store.ResultStore`
  are skipped (``resume=True``),
* missing cells are sharded workload-major across worker processes,
* every result is checkpointed to the store the moment it arrives, so
  an interrupted sweep resumes exactly where it stopped and the final
  results are bit-identical to an uninterrupted serial run.

``rows()`` / :func:`write_csv` / :func:`write_json` flatten a finished
sweep for export.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError, TraceError
from .engine import EvalTask, ResultCallback, evaluate_tasks
from .factory import ARCHITECTURE_NAMES, known_architectures
from .stats import SimStats
from .store import ResultStore
from .tracegen import SPEC_WORKLOADS, get_workload

#: Column order of one exported sweep row: the task axes, then metrics.
ROW_FIELDS: Tuple[str, ...] = (
    "architecture", "workload", "num_requests", "seed", "queue_depth",
    "bandwidth_gbps", "avg_latency_ns", "p95_latency_ns", "epb_pj",
    "bw_per_epb", "row_hit_rate", "utilization",
)


@dataclass(frozen=True)
class SweepSpec:
    """An arbitrary parameter grid, axes crossed in deterministic order.

    ``queue_depths`` entries override the controller transaction queue
    (``None`` = the architecture's per-channel default), which is the
    queue-depth ablation axis.
    """

    architectures: Tuple[str, ...] = ARCHITECTURE_NAMES
    workloads: Tuple[str, ...] = field(
        default_factory=lambda: tuple(sorted(SPEC_WORKLOADS)))
    num_requests: Tuple[int, ...] = (20_000,)
    seeds: Tuple[int, ...] = (1,)
    queue_depths: Tuple[Optional[int], ...] = (None,)

    def __post_init__(self) -> None:
        for axis in ("architectures", "workloads", "num_requests",
                     "seeds", "queue_depths"):
            values = tuple(getattr(self, axis))
            if not values:
                raise SimulationError(f"sweep axis {axis!r} is empty")
            if len(set(values)) != len(values):
                # Duplicates would compute identical cells repeatedly
                # and double-count store hits — almost certainly a typo.
                raise SimulationError(
                    f"sweep axis {axis!r} has duplicate values: {values}")
            object.__setattr__(self, axis, values)
        for arch in self.architectures:
            if arch not in known_architectures():
                raise SimulationError(
                    f"unknown architecture {arch!r}; "
                    f"known: {known_architectures()}")
        for name in self.workloads:
            try:
                get_workload(name)
            except TraceError as error:
                raise SimulationError(str(error)) from None
        for n in self.num_requests:
            if n < 1:
                raise SimulationError("request counts must be >= 1")
        for seed in self.seeds:
            if not 0 <= seed < 2 ** 32:
                # numpy's RandomState range — fail at spec construction,
                # not inside a pool worker mid-sweep.
                raise SimulationError("seeds must be in [0, 2**32)")
        for depth in self.queue_depths:
            if depth is not None and depth < 1:
                raise SimulationError("queue depth override must be >= 1")

    @property
    def num_cells(self) -> int:
        return (len(self.architectures) * len(self.workloads)
                * len(self.num_requests) * len(self.seeds)
                * len(self.queue_depths))

    def tasks(self) -> List[EvalTask]:
        """All grid cells, workload-major within each outer combination
        (one shard reuses one cached trace across all architectures)."""
        return [
            EvalTask(arch, workload, n, seed, depth)
            for n in self.num_requests
            for seed in self.seeds
            for depth in self.queue_depths
            for workload in self.workloads
            for arch in self.architectures
        ]

    # -- wire format --------------------------------------------------------

    _AXES = ("architectures", "workloads", "num_requests", "seeds",
             "queue_depths")

    def to_dict(self) -> Dict[str, list]:
        """JSON-serializable axes (inverse of :meth:`from_dict`)."""
        return {axis: list(getattr(self, axis)) for axis in self._AXES}

    @classmethod
    def from_dict(cls, payload: object) -> "SweepSpec":
        """Validated spec from an untrusted wire payload.

        Part of the evaluation service's trust boundary: axis names are
        checked, scalars are accepted as one-element axes, and every
        value must already be JSON-native (no tuples-as-strings) —
        anything else raises :class:`SimulationError` before a single
        cell is expanded.  Omitted axes keep the dataclass defaults, so
        ``{"workloads": ["gcc"]}`` names the full architecture set on
        one workload.  ``__post_init__`` then applies the same
        validation a locally constructed spec gets.
        """
        if not isinstance(payload, dict):
            raise SimulationError(
                f"sweep must be a JSON object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - set(cls._AXES))
        if unknown:
            raise SimulationError(
                f"unknown sweep axes {unknown}; known: {list(cls._AXES)}")
        name_axes = {"architectures", "workloads"}
        kwargs = {}
        for axis in cls._AXES:
            if axis not in payload:
                continue
            values = payload[axis]
            if isinstance(values, (str, int)) and not isinstance(values, bool):
                values = [values]    # scalar convenience: one-element axis
            if not isinstance(values, list):
                raise SimulationError(
                    f"sweep axis {axis!r} must be a list, got {values!r}")
            for value in values:
                if axis in name_axes:
                    valid = isinstance(value, str)
                elif axis == "queue_depths":
                    valid = value is None or (isinstance(value, int)
                                              and not isinstance(value, bool))
                else:
                    valid = isinstance(value, int) \
                        and not isinstance(value, bool)
                if not valid:
                    expected = "a string" if axis in name_axes else (
                        "an integer or null" if axis == "queue_depths"
                        else "an integer")
                    raise SimulationError(
                        f"sweep axis {axis!r} value {value!r} must be "
                        f"{expected}")
            kwargs[axis] = tuple(values)
        return cls(**kwargs)


@dataclass
class SweepResult:
    """A finished (or resumed) sweep: results plus provenance counts."""

    spec: SweepSpec
    results: Dict[EvalTask, SimStats]
    store_hits: int
    computed: int

    def rows(self) -> List[Dict[str, object]]:
        """Flat export rows in sweep order (NaN latencies kept)."""
        flattened = []
        for task in self.spec.tasks():
            stats = self.results[task]
            metrics = stats.as_row()
            row: Dict[str, object] = {
                "architecture": task.architecture,
                "workload": task.workload,
                "num_requests": task.num_requests,
                "seed": task.seed,
                "queue_depth": task.queue_depth,
            }
            for key in ROW_FIELDS:
                if key not in row:
                    row[key] = metrics[key]
            flattened.append(row)
        return flattened


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    workers: Optional[int] = None,
    resume: bool = True,
    on_result: Optional[ResultCallback] = None,
    store_latencies: bool = True,
    pool: Optional[str] = None,
) -> SweepResult:
    """Execute a sweep with store read-through and incremental writes.

    Cells already in ``store`` (by content digest) are served from disk
    when ``resume`` is true; the rest are sharded over ``workers`` pool
    workers (``0`` = one per CPU; executor kind per ``pool`` /
    :func:`repro.sim.engine.resolve_pool`) and checkpointed as they
    complete.
    Interrupt it anywhere — a rerun with the same spec and store picks
    up the surviving cells and produces bit-identical final results.

    ``store_latencies=False`` checkpoints archival entries: no raw
    per-request sidecars, an order of magnitude less disk for large
    DSE grids, with export percentiles served from the store's
    fixed-bin latency histograms instead of the samples.
    """
    tasks = spec.tasks()
    computed_cells = 0

    def count(task: EvalTask, stats: SimStats) -> None:
        nonlocal computed_cells
        computed_cells += 1
        if on_result is not None:
            on_result(task, stats)

    results = evaluate_tasks(
        tasks, workers=workers, store=store, resume=resume,
        chunksize=len(spec.architectures), on_result=count,
        store_latencies=store_latencies, pool=pool)
    return SweepResult(spec=spec, results=results,
                       store_hits=len(tasks) - computed_cells,
                       computed=computed_cells)


# -- export -----------------------------------------------------------------


def write_csv(rows: Sequence[Dict[str, object]], stream: IO[str]) -> None:
    """CSV export (header + one line per cell; NaN prints as ``nan``)."""
    writer = csv.DictWriter(stream, fieldnames=list(ROW_FIELDS))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)


def write_json(rows: Sequence[Dict[str, object]], stream: IO[str]) -> None:
    """JSON export: a list of row objects, strictly RFC 8259.

    NaN metrics (cells carrying neither latency samples nor a fixed-bin
    latency summary) become ``null`` — ``json.dump``'s default would
    emit the bare ``NaN`` token, which standard parsers reject.
    """
    def jsonable(value: object) -> object:
        if isinstance(value, float) and math.isnan(value):
            return None
        return value

    json.dump([{key: jsonable(value) for key, value in row.items()}
               for row in rows], stream, indent=2, allow_nan=False)
    stream.write("\n")
