"""AST-driven invariant analyzer for the repro tree.

The simulation stack's correctness story rests on invariants no single
test pins end to end: bit-exact parity between the scalar/numpy/compiled
scheduler tiers, lock discipline across the thread-native execution
plane, digest coverage over every fingerprint field, and wire-schema
symmetry.  ``python -m repro.tools.staticcheck`` verifies them
statically so a regression fails CI at the diff, not in production.

See :mod:`repro.tools.staticcheck.checkers` for the individual checks
and the pragma syntax (``# staticcheck: allow[...]`` /
``# staticcheck: guarded-by[...]``).
"""

from repro.tools.staticcheck.core import (
    Checker,
    Finding,
    Module,
    Project,
    run_checks,
)
from repro.tools.staticcheck.checkers import ALL_CHECKERS

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "Module",
    "Project",
    "run_checks",
]
