"""Resumable sweep demo: the persistent result store in action.

Runs a small (architecture x workload x queue-depth) sweep into an
on-disk result store, then runs it again: the warm pass serves every
cell from the store without touching the simulator.  Results are
content-addressed — the digest covers the task parameters plus device
and workload model fingerprints — so editing a device model would
invalidate exactly its own cells.

Usage::

    PYTHONPATH=src python examples/sweep_resume_demo.py [num_requests]
"""

from __future__ import annotations

import sys
import tempfile
import time

from repro.sim import ResultStore, SweepSpec, run_sweep, write_csv

NUM_REQUESTS = 2000


def main(num_requests: int = NUM_REQUESTS) -> None:
    spec = SweepSpec(
        architectures=("EPCM-MM", "2D_DDR3", "COSMOS"),
        workloads=("gcc", "bursty", "mix_mcf_lbm"),
        num_requests=(num_requests,),
        seeds=(1,),
        queue_depths=(None, 8),
    )
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as store_dir:
        store = ResultStore(store_dir)
        print(f"sweep: {spec.num_cells} cells -> store {store_dir}")

        start = time.perf_counter()
        cold = run_sweep(spec, store=store)
        cold_s = time.perf_counter() - start
        print(f"cold run : {cold.computed} computed, "
              f"{cold.store_hits} cached ({cold_s:.2f} s)")

        start = time.perf_counter()
        warm = run_sweep(spec, store=store)
        warm_s = time.perf_counter() - start
        print(f"warm run : {warm.computed} computed, "
              f"{warm.store_hits} cached ({warm_s:.3f} s)")
        assert warm.results == cold.results, "store round trip must be exact"
        print(f"speedup  : {cold_s / max(warm_s, 1e-9):.1f}x "
              f"(every cell served from the store)")

    print()
    write_csv(warm.rows(), sys.stdout)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else NUM_REQUESTS)
