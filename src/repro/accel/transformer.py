"""Vision-transformer traffic models (DeiT-T and DeiT-B).

Fig. 10 evaluates DOTA running DeiT-Tiny and DeiT-Base inference with each
candidate main memory.  What the memory sees is the data movement: weight
streaming (every parameter read once per inference batch — tensor-core
accelerators hold little on-chip), activation spills between layers, and
attention-matrix traffic.  This module computes those byte counts from the
model dimensions (Vaswani attention [48], DeiT variants as used by DOTA
[47]).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransformerConfig:
    """Dimensions and traffic model of one transformer variant."""

    name: str
    layers: int
    hidden_dim: int
    heads: int
    mlp_ratio: float
    sequence_length: int
    bytes_per_value: int = 1      # INT8 inference datapath

    def __post_init__(self) -> None:
        if min(self.layers, self.hidden_dim, self.heads,
               self.sequence_length) < 1:
            raise ConfigError("transformer dimensions must be positive")
        if self.hidden_dim % self.heads:
            raise ConfigError("hidden dim must divide evenly across heads")

    # -- parameter counts -----------------------------------------------

    @property
    def params_per_layer(self) -> int:
        """QKV + output projection + MLP weights of one encoder block."""
        d = self.hidden_dim
        attention = 4 * d * d                       # Wq, Wk, Wv, Wo
        mlp = int(2 * d * (d * self.mlp_ratio))     # up + down projections
        layernorm = 4 * d
        return attention + mlp + layernorm

    @property
    def total_params(self) -> int:
        embed = self.hidden_dim * (3 * 16 * 16)     # patch embedding (RGB 16x16)
        head = self.hidden_dim * 1000               # classifier
        return self.layers * self.params_per_layer + embed + head

    @property
    def weight_bytes(self) -> int:
        return self.total_params * self.bytes_per_value

    # -- per-inference traffic ----------------------------------------------

    @property
    def activation_bytes_per_layer(self) -> int:
        """Activations written then read back between blocks."""
        return (self.sequence_length * self.hidden_dim
                * self.bytes_per_value)

    @property
    def attention_bytes_per_layer(self) -> int:
        """Attention scores (S x S per head) spilled at long sequence."""
        return (self.heads * self.sequence_length * self.sequence_length
                * self.bytes_per_value)

    def inference_read_bytes(self, batch: int = 1) -> int:
        """Bytes read from main memory for one batch."""
        if batch < 1:
            raise ConfigError("batch must be positive")
        weights = self.weight_bytes                       # streamed once
        activations = (self.layers * self.activation_bytes_per_layer
                       * batch)
        attention = self.layers * self.attention_bytes_per_layer * batch
        return weights + activations + attention

    def inference_write_bytes(self, batch: int = 1) -> int:
        """Bytes written back (activation spills, attention scores)."""
        if batch < 1:
            raise ConfigError("batch must be positive")
        activations = self.layers * self.activation_bytes_per_layer * batch
        attention = self.layers * self.attention_bytes_per_layer * batch
        return activations + attention

    def inference_total_bytes(self, batch: int = 1) -> int:
        return self.inference_read_bytes(batch) + self.inference_write_bytes(batch)

    @property
    def read_fraction(self) -> float:
        """Read share of the traffic (weight streaming dominates)."""
        reads = self.inference_read_bytes()
        return reads / (reads + self.inference_write_bytes())


#: DeiT-Tiny: 12 layers, 192-d, 3 heads (~5.7 M params).
DEIT_TINY = TransformerConfig(
    name="DeiT-T", layers=12, hidden_dim=192, heads=3,
    mlp_ratio=4.0, sequence_length=197,
)

#: DeiT-Base: 12 layers, 768-d, 12 heads (~86 M params).
DEIT_BASE = TransformerConfig(
    name="DeiT-B", layers=12, hidden_dim=768, heads=12,
    mlp_ratio=4.0, sequence_length=197,
)
