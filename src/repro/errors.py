"""Exception hierarchy for the COMET reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An architecture or device configuration is inconsistent."""


class MaterialError(ReproError):
    """A material model was queried outside its validity range."""


class SolverError(ReproError):
    """A numerical solver (mode solver, heat solver, root find) failed."""


class ProgrammingError(ReproError):
    """A cell programming request cannot be satisfied (level/energy bounds)."""


class AddressError(ReproError):
    """A physical address falls outside the memory organization."""


class TraceError(ReproError):
    """A memory trace file or record is malformed."""


class SimulationError(ReproError):
    """The memory simulator reached an inconsistent state."""
