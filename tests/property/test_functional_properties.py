"""Property-based tests on the functional COMET memory.

The strongest storage invariant the architecture claims: with the
loss-aware gain LUT enabled and Table I losses, *any* data written to
*any* line survives readout bit-exactly at 4 bits/cell.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.functional import FunctionalCometMemory

_MEMORY = FunctionalCometMemory()
_LINES = _MEMORY.capacity_bytes // _MEMORY.line_bytes


class TestStorageInvariants:
    @given(
        line=st.integers(min_value=0, max_value=_LINES - 1),
        payload=st.binary(min_size=128, max_size=128),
    )
    @settings(max_examples=150, deadline=None)
    def test_any_line_any_payload_roundtrips(self, line, payload):
        memory = _MEMORY   # shared: overwrites are part of the contract
        address = line * 128
        memory.write_line(address, payload)
        assert memory.read_line(address) == payload

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1023),
                      st.binary(min_size=128, max_size=128)),
            min_size=1, max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_last_write_wins(self, operations):
        memory = FunctionalCometMemory()
        expected = {}
        for line, payload in operations:
            memory.write_line(line * 128, payload)
            expected[line] = payload
        for line, payload in expected.items():
            assert memory.read_line(line * 128) == payload

    @given(st.binary(min_size=1, max_size=700))
    @settings(max_examples=50, deadline=None)
    def test_blob_roundtrip_any_length(self, blob):
        memory = FunctionalCometMemory()
        memory.write_blob(0, blob)
        assert memory.read_blob(0, len(blob)) == blob

    @given(line=st.integers(min_value=0, max_value=2047))
    @settings(max_examples=60, deadline=None)
    def test_error_free_with_lut(self, line):
        """No line position (hence no row-loss value) produces errors."""
        memory = FunctionalCometMemory()
        payload = bytes((line * 7 + i) % 256 for i in range(128))
        memory.write_line(line * 128, payload)
        memory.read_line(line * 128)
        assert memory.stats.level_errors == 0
