"""Ablation — memory-level parallelism (transaction-queue depth).

The Fig. 9 gaps depend on how much MLP the controller exposes; this bench
sweeps the per-channel queue depth to show the COMET-vs-COSMOS bandwidth
ratio is robust to the choice (it is a service-capacity gap, not a
queueing artifact), while absolute latencies scale with depth.

The cells route through the evaluation engine's queue-depth axis, so a
``$REPRO_RESULT_STORE`` makes re-runs incremental.
"""

from repro.sim.engine import EvalTask, device_for, evaluate_tasks

DEPTHS = (2, 8, 32)


def bench_ablation_queue_depth(benchmark, eval_store):
    def run():
        tasks = {
            (arch, depth): EvalTask(
                arch, "mcf", 4000, 1,
                # EvalTask carries the *total* transaction-queue depth;
                # the ablation axis is per channel.
                queue_depth=depth * device_for(arch).channels)
            for depth in DEPTHS
            for arch in ("COMET", "COSMOS")
        }
        lookup = evaluate_tasks(list(tasks.values()), store=eval_store)
        return {
            depth: (lookup[tasks[("COMET", depth)]],
                    lookup[tasks[("COSMOS", depth)]])
            for depth in DEPTHS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    ratios = {}
    for depth, (comet, cosmos) in sorted(results.items()):
        ratios[depth] = comet.bandwidth_gbps / cosmos.bandwidth_gbps
        print(f"  depth {depth:2d}: COMET {comet.bandwidth_gbps:6.2f} GB/s, "
              f"COSMOS {cosmos.bandwidth_gbps:6.2f} GB/s, "
              f"ratio {ratios[depth]:.2f}x")

    # The bandwidth advantage holds at every depth (robustness).
    assert all(ratio > 2.0 for ratio in ratios.values())
    # Deeper queues -> more latency on the saturated device.
    cosmos_latency = [results[d][1].avg_latency_ns for d in DEPTHS]
    assert cosmos_latency[0] < cosmos_latency[-1]
