"""Synthetic SPEC-like trace generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.tracegen import SPEC_WORKLOADS, SyntheticWorkload, generate_trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("mcf", 500, seed=7)
        b = generate_trace("mcf", 500, seed=7)
        assert [r.address for r in a] == [r.address for r in b]
        assert [r.arrival_ns for r in a] == [r.arrival_ns for r in b]

    def test_different_seeds_differ(self):
        a = generate_trace("mcf", 500, seed=1)
        b = generate_trace("mcf", 500, seed=2)
        assert [r.address for r in a] != [r.address for r in b]


class TestStatistics:
    def test_read_fraction_close_to_spec(self):
        workload = SPEC_WORKLOADS["libquantum"]
        trace = workload.generate(5000, seed=3)
        reads = sum(1 for r in trace if r.is_read)
        assert reads / len(trace) == pytest.approx(
            workload.read_fraction, abs=0.02)

    def test_interarrival_close_to_spec(self):
        workload = SPEC_WORKLOADS["mcf"]
        trace = workload.generate(5000, seed=3)
        arrivals = np.array([r.arrival_ns for r in trace])
        gaps = np.diff(arrivals)
        assert gaps.mean() == pytest.approx(
            workload.mean_interarrival_ns, rel=0.1)

    def test_arrivals_sorted(self):
        trace = generate_trace("lbm", 1000)
        arrivals = [r.arrival_ns for r in trace]
        assert arrivals == sorted(arrivals)

    def test_addresses_within_working_set(self):
        workload = SPEC_WORKLOADS["gcc"]
        trace = workload.generate(2000, seed=5)
        assert all(0 <= r.address < workload.working_set_bytes for r in trace)
        assert all(r.address % workload.line_bytes == 0 for r in trace)

    def test_sequential_workload_has_runs(self):
        """lbm (p_seq = 0.85) must show many consecutive-line pairs."""
        trace = generate_trace("lbm", 2000, seed=1)
        lines = [r.address // 128 for r in trace]
        sequential_pairs = sum(
            1 for a, b in zip(lines, lines[1:]) if b == a + 1)
        assert sequential_pairs / len(lines) > 0.6

    def test_random_workload_lacks_runs(self):
        trace = generate_trace("mcf", 2000, seed=1)
        lines = [r.address // 128 for r in trace]
        sequential_pairs = sum(
            1 for a, b in zip(lines, lines[1:]) if b == a + 1)
        assert sequential_pairs / len(lines) < 0.15


class TestPresets:
    def test_eight_workloads(self):
        assert len(SPEC_WORKLOADS) == 8
        assert {"mcf", "lbm", "libquantum", "milc", "omnetpp", "gcc",
                "bwaves", "gemsfdtd"} == set(SPEC_WORKLOADS)

    def test_unknown_workload(self):
        with pytest.raises(TraceError):
            generate_trace("povray")

    def test_validation(self):
        with pytest.raises(TraceError):
            SyntheticWorkload("x", -1.0, 0.5, 0.5, 2**20)
        with pytest.raises(TraceError):
            SyntheticWorkload("x", 1.0, 1.5, 0.5, 2**20)
        with pytest.raises(TraceError):
            SyntheticWorkload("x", 1.0, 0.5, 1.0, 2**20)
        with pytest.raises(TraceError):
            SPEC_WORKLOADS["mcf"].generate(0)
