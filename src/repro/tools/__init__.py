"""Developer tooling that ships with the repo (static analysis, etc.).

Nothing under ``repro.tools`` is imported by the simulation stack; the
packages here are entry points (``python -m repro.tools.<name>``) run
by CI and by developers.
"""
