"""Simulation statistics: the Fig. 9 metrics.

``SimStats`` aggregates what the paper reports: sustained bandwidth,
average (and tail) application latency, and energy-per-bit.  EPB follows
the paper's accounting (Section IV.C): *all* energy spent while
orchestrating the trace's reads and writes — background + gated active
power + per-operation energy — divided by the bits transferred.

When the raw per-request samples are unavailable (archival result-store
entries written with ``latencies=False``, trimmed wire responses), a
fixed-bin **latency summary** — exact count/mean/min/max plus a
log-spaced histogram — stands in: the mean and extremes stay exact and
percentiles interpolate within their bin, so percentile queries against
archival stores return numbers instead of NaN.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

import numpy as np

from ..errors import SimulationError

#: Fixed histogram bin edges (ns): 10 bins per decade from 1 ns to
#: 10 ms, plus implicit underflow/overflow bins.  Fixed — not data
#: dependent — so summaries from different cells, runs and hosts are
#: directly comparable and mergeable.
HIST_DECADES = (0, 7)
HIST_BINS_PER_DECADE = 10
HIST_EDGES_NS = np.logspace(
    HIST_DECADES[0], HIST_DECADES[1],
    (HIST_DECADES[1] - HIST_DECADES[0]) * HIST_BINS_PER_DECADE + 1)


def summarize_latencies(latencies_ns: List[float]) -> Dict[str, Any]:
    """Fixed-bin summary of one latency sample set.

    ``counts`` has ``len(HIST_EDGES_NS) + 1`` entries: an underflow bin
    below the first edge, the log-spaced bins, and an overflow bin at
    the top — every sample lands somewhere, whatever the device.
    """
    samples = np.asarray(latencies_ns, dtype=np.float64)
    if len(samples) == 0:
        raise SimulationError("no latency samples to summarize")
    counts = np.bincount(np.searchsorted(HIST_EDGES_NS, samples,
                                         side="right"),
                         minlength=len(HIST_EDGES_NS) + 1)
    return {
        "count": int(len(samples)),
        "mean_ns": float(np.mean(samples)),
        "min_ns": float(np.min(samples)),
        "max_ns": float(np.max(samples)),
        "counts": counts.tolist(),
    }


def summary_percentile(summary: Dict[str, Any], q: float) -> float:
    """Estimate the ``q``-th percentile from a fixed-bin summary.

    Linear interpolation inside the covering bin, clamped to the exact
    ``[min_ns, max_ns]`` — a few percent of a bin's width off at worst,
    against NaN without it.
    """
    counts = np.asarray(summary["counts"], dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        raise SimulationError("empty latency summary")
    lo, hi = summary["min_ns"], summary["max_ns"]
    # Bin b spans [edge[b-1], edge[b]); clamp the open-ended extremes
    # to the exact observed min/max.
    edges_lo = np.concatenate(([lo], HIST_EDGES_NS))
    edges_hi = np.concatenate((HIST_EDGES_NS, [hi]))
    target = total * q / 100.0
    cumulative = np.cumsum(counts)
    index = int(np.searchsorted(cumulative, target, side="left"))
    index = min(index, len(counts) - 1)
    below = cumulative[index] - counts[index]
    inside = counts[index] or 1.0
    fraction = min(max((target - below) / inside, 0.0), 1.0)
    bin_lo = max(float(edges_lo[index]), lo)
    bin_hi = min(float(edges_hi[index]), hi)
    if bin_hi < bin_lo:    # degenerate bin entirely outside [lo, hi]
        bin_lo = bin_hi = min(max(bin_lo, lo), hi)
    return bin_lo + (bin_hi - bin_lo) * fraction


@dataclass
class SimStats:
    """Aggregated results of one trace on one device."""

    device_name: str
    workload_name: str
    num_requests: int
    num_reads: int
    num_writes: int
    total_bytes: int
    sim_time_ns: float
    busy_time_ns: float
    active_time_ns: float
    latencies_ns: List[float] = field(repr=False, default_factory=list)
    op_energy_j: float = 0.0
    refresh_energy_j: float = 0.0
    refresh_count: int = 0
    background_power_w: float = 0.0
    active_power_w: float = 0.0
    row_hits: int = 0
    row_misses: int = 0
    #: Fixed-bin latency summary (see :func:`summarize_latencies`), attached
    #: when the raw samples are absent — archival store entries, trimmed
    #: wire responses.  ``None`` whenever ``latencies_ns`` is populated.
    latency_summary: Optional[Dict[str, Any]] = field(repr=False,
                                                      default=None)

    def __post_init__(self) -> None:
        if self.sim_time_ns <= 0.0:
            raise SimulationError("simulation time must be positive")

    # -- throughput ---------------------------------------------------------

    @property
    def bandwidth_gbps(self) -> float:
        """Sustained bandwidth in GB/s (bytes / wall time)."""
        return self.total_bytes / self.sim_time_ns

    @property
    def bandwidth_bits_per_ns(self) -> float:
        return self.total_bytes * 8.0 / self.sim_time_ns

    # -- latency ---------------------------------------------------------------

    @property
    def avg_latency_ns(self) -> float:
        if not self.latencies_ns:
            if self.latency_summary is not None:
                return float(self.latency_summary["mean_ns"])   # exact
            raise SimulationError("no completed requests")
        return float(np.mean(self.latencies_ns))

    @property
    def p95_latency_ns(self) -> float:
        if not self.latencies_ns:
            if self.latency_summary is not None:
                # Histogram estimate (exact mean/extremes, interpolated
                # percentile) — what archival stores serve.
                return summary_percentile(self.latency_summary, 95.0)
            raise SimulationError("no completed requests")
        return float(np.percentile(self.latencies_ns, 95.0))

    @property
    def max_latency_ns(self) -> float:
        if not self.latencies_ns:
            if self.latency_summary is not None:
                return float(self.latency_summary["max_ns"])    # exact
            raise SimulationError("no completed requests")
        return float(np.max(self.latencies_ns))

    # -- energy -----------------------------------------------------------------

    @property
    def background_energy_j(self) -> float:
        return self.background_power_w * self.sim_time_ns * 1e-9

    @property
    def active_energy_j(self) -> float:
        return self.active_power_w * self.active_time_ns * 1e-9

    @property
    def total_energy_j(self) -> float:
        return (self.background_energy_j + self.active_energy_j
                + self.op_energy_j + self.refresh_energy_j)

    @property
    def energy_per_bit_pj(self) -> float:
        bits = self.total_bytes * 8
        if bits == 0:
            raise SimulationError("no bits transferred")
        return self.total_energy_j / bits * 1e12

    # -- composite ----------------------------------------------------------------

    @property
    def bw_per_epb(self) -> float:
        """The Fig. 9(c) composite metric: GB/s per pJ/bit."""
        return self.bandwidth_gbps / self.energy_per_bit_pj

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def utilization(self) -> float:
        """Fraction of wall time the device was serving."""
        return min(self.busy_time_ns / (self.sim_time_ns * 1.0), 1.0)

    def latency_row(self) -> Dict[str, float]:
        """Latency metrics as a dict, NaN when nothing can serve them.

        Table/CSV paths use this instead of the raising properties so a
        cell with neither raw samples nor a latency summary degrades to
        NaN columns rather than crashing a partially printed table.
        Archival entries (summary, no samples) produce real numbers.
        """
        if not self.latencies_ns and self.latency_summary is None:
            nan = float("nan")
            return {"avg_latency_ns": nan, "p95_latency_ns": nan,
                    "max_latency_ns": nan}
        return {
            "avg_latency_ns": self.avg_latency_ns,
            "p95_latency_ns": self.p95_latency_ns,
            "max_latency_ns": self.max_latency_ns,
        }

    def as_row(self) -> Dict[str, float]:
        """Flat dict for table printing / CSV (NaN latencies when empty)."""
        latency = self.latency_row()
        return {
            "device": self.device_name,
            "workload": self.workload_name,
            "bandwidth_gbps": self.bandwidth_gbps,
            "avg_latency_ns": latency["avg_latency_ns"],
            "p95_latency_ns": latency["p95_latency_ns"],
            "epb_pj": self.energy_per_bit_pj,
            "bw_per_epb": self.bw_per_epb,
            "row_hit_rate": self.row_hit_rate,
            "utilization": self.utilization,
        }

    # -- serialization ------------------------------------------------------

    def to_dict(self, latencies: bool = True) -> Dict[str, Any]:
        """JSON-serializable dict of every field.

        ``latencies=False`` drops the raw per-request samples (the bulky
        part) and attaches the fixed-bin latency summary in their place,
        so the restored stats still answer mean/percentile/max queries
        (approximately, for percentiles) instead of reporting NaN.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["latencies_ns"] = (
            [float(v) for v in self.latencies_ns] if latencies else [])
        if not latencies and self.latencies_ns \
                and self.latency_summary is None:
            payload["latency_summary"] = summarize_latencies(
                self.latencies_ns)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored.

        Python floats round-trip exactly through ``json`` (repr-based),
        so ``from_dict(json.loads(json.dumps(s.to_dict()))) == s``
        bit-for-bit.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in known})


def geometric_mean(values: List[float]) -> float:
    """Geomean used for cross-workload averages."""
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0.0):
        raise SimulationError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(arr))))


def kernel_dispatch_summary(counters: Dict[str, int]) -> Dict[str, Any]:
    """Summarize fast-path dispatch counters into per-class rates.

    ``counters`` is :func:`repro.sim.controller.kernel_counters` (or a
    delta between two snapshots, as the evaluation server reports).
    Terminal outcomes are the ``fast_*`` class hits plus the
    ``fallback_device`` / ``fallback_toolchain`` scalar fallbacks;
    ``fallback_admission`` marks a revert to the global-queue model
    whose cell also lands in a terminal counter, so it stays out of the
    scheduled total.  Schema-driven (classes come from the ``fast_*``
    keys) so it works on any snapshot without importing the controller.
    """
    per_class = {key[len("fast_"):]: value
                 for key, value in counters.items()
                 if key.startswith("fast_")}
    fast = counters.get("fast", sum(per_class.values()))
    scheduled = fast + counters.get("fallback_device", 0) \
        + counters.get("fallback_toolchain", 0)
    return {
        "scheduled": scheduled,
        "fast": fast,
        "hit_rate": (fast / scheduled) if scheduled else 0.0,
        "per_class": per_class,
        "fallbacks": {
            "device": counters.get("fallback_device", 0),
            "toolchain": counters.get("fallback_toolchain", 0),
            "admission_reverts": counters.get("fallback_admission", 0),
        },
    }
