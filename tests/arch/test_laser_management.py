"""Dynamic laser power management extension (future work, Ref. [43])."""

import pytest

from repro.arch.laser_management import (
    LaserPowerManager,
    managed_epb_pj,
)
from repro.errors import ConfigError


class TestGovernor:
    def test_starts_asleep(self):
        manager = LaserPowerManager(full_power_w=24.0)
        assert not manager.is_awake
        assert manager.access_penalty_ns() == 20.0

    def test_wakes_under_load(self):
        manager = LaserPowerManager(full_power_w=24.0)
        for _ in range(10):
            manager.observe(0.8)
        assert manager.is_awake
        assert manager.access_penalty_ns() == 0.0

    def test_sleeps_when_idle(self):
        manager = LaserPowerManager(full_power_w=24.0)
        for _ in range(10):
            manager.observe(0.8)
        for _ in range(50):
            manager.observe(0.0)
        assert not manager.is_awake

    def test_hysteresis_prevents_flapping(self):
        manager = LaserPowerManager(full_power_w=24.0,
                                    wake_threshold=0.2, sleep_threshold=0.05)
        for _ in range(20):
            manager.observe(0.5)
        assert manager.is_awake
        # Utilization between thresholds: stays awake.
        for _ in range(3):
            manager.observe(0.1)
        assert manager.is_awake

    def test_supplied_fraction_tracks_utilization_when_awake(self):
        manager = LaserPowerManager(full_power_w=24.0, sleep_fraction=0.1)
        for _ in range(10):
            manager.observe(0.9)
        assert manager.supplied_fraction(0.6) == pytest.approx(0.6)
        assert manager.supplied_fraction(0.02) == pytest.approx(0.1)

    def test_average_power_below_full_for_bursty_load(self):
        manager = LaserPowerManager(full_power_w=24.0)
        trace = [0.9] * 10 + [0.0] * 90
        assert manager.average_power_w(trace) < 0.5 * 24.0

    def test_trajectory_timestamps(self):
        manager = LaserPowerManager(full_power_w=1.0)
        states = manager.run_trajectory([0.1, 0.2], epoch_ns=50.0)
        assert [s.time_ns for s in states] == [0.0, 50.0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            LaserPowerManager(full_power_w=0.0)
        with pytest.raises(ConfigError):
            LaserPowerManager(full_power_w=1.0, sleep_fraction=1.0)
        with pytest.raises(ConfigError):
            LaserPowerManager(full_power_w=1.0, wake_threshold=0.01,
                              sleep_threshold=0.5)
        manager = LaserPowerManager(full_power_w=1.0)
        with pytest.raises(ConfigError):
            manager.observe(1.5)
        with pytest.raises(ConfigError):
            manager.average_power_w([])


class TestClosedForm:
    def test_managed_never_exceeds_always_on(self):
        for utilization in (0.05, 0.3, 1.0):
            always_on, managed = managed_epb_pj(24.0, 10.0, utilization)
            assert managed <= always_on + 1e-12

    def test_full_utilization_no_benefit(self):
        always_on, managed = managed_epb_pj(24.0, 10.0, 1.0)
        assert managed == pytest.approx(always_on)

    def test_low_utilization_big_benefit(self):
        """At 10 % utilization the managed rail saves >4x EPB."""
        always_on, managed = managed_epb_pj(24.0, 10.0, 0.1,
                                            sleep_fraction=0.1)
        assert always_on / managed > 4.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            managed_epb_pj(24.0, 0.0, 0.5)
        with pytest.raises(ConfigError):
            managed_epb_pj(24.0, 10.0, 0.0)
