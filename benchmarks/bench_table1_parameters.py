"""Bench Table I — parameter set and its derived constants."""

from repro.exp.table1 import run as run_table1


def bench_table1_parameters(benchmark):
    result = benchmark(run_table1)

    assert result.rows["Coupling loss"] == "1 dB"
    assert result.rows["EO tuned MR through loss"] == "0.33 dB"
    assert result.rows["Intra-subarray SOA power"] == "1.4 mW"
    # Derived quantities the rest of the paper leans on.
    assert result.soa_interval_rows == 46
    assert result.eo_latency_ns == 2.0
