"""Run-time laser power management (the paper's future work, Ref. [43]).

Section IV.C observes that laser power dominates photonic-memory EPB and
points to run-time laser power management with on-chip SOAs [43] as the
fix, leaving it as future work.  This module implements that extension:

* :class:`LaserPowerManager` — a utilization-tracking governor that scales
  the optical supply between a sleep floor and full power, with a wake
  latency charged to accesses that arrive while the rail is asleep.
* :func:`managed_epb_pj` — closed-form EPB of a managed versus always-on
  rail at a given utilization, used by the ablation bench.

The governor is deliberately simple (exponential-moving-average of bank
utilization with hysteresis) — the point of the extension is to quantify
the *bound*: how much of the photonic EPB gap to electronic memories
disappears once the rail follows demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class LaserPowerState:
    """One observable step of the governor's trajectory."""

    time_ns: float
    utilization: float
    supplied_fraction: float


@dataclass
class LaserPowerManager:
    """Utilization-following optical power governor.

    Parameters
    ----------
    full_power_w:
        The unmanaged (always-on) optical supply rail.
    sleep_fraction:
        Fraction of full power kept alive when idle (bias currents,
        thermal stability of the comb source).
    wake_latency_ns:
        Extra latency charged to an access arriving during sleep.
    ema_alpha:
        Smoothing of the utilization estimate per control epoch.
    wake_threshold / sleep_threshold:
        Hysteresis bounds on the smoothed utilization.
    """

    full_power_w: float
    sleep_fraction: float = 0.1
    wake_latency_ns: float = 20.0
    ema_alpha: float = 0.25
    wake_threshold: float = 0.05
    sleep_threshold: float = 0.01

    def __post_init__(self) -> None:
        if self.full_power_w <= 0.0:
            raise ConfigError("full power must be positive")
        if not 0.0 <= self.sleep_fraction < 1.0:
            raise ConfigError("sleep fraction must be in [0, 1)")
        if self.sleep_threshold > self.wake_threshold:
            raise ConfigError("hysteresis thresholds inverted")
        self._ema = 0.0
        self._awake = False

    # -- governor dynamics ----------------------------------------------

    @property
    def is_awake(self) -> bool:
        return self._awake

    def observe(self, utilization: float) -> float:
        """Feed one epoch's bank utilization; returns supplied fraction."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigError("utilization must be in [0, 1]")
        self._ema = (self.ema_alpha * utilization
                     + (1.0 - self.ema_alpha) * self._ema)
        if self._awake and self._ema < self.sleep_threshold:
            self._awake = False
        elif not self._awake and self._ema >= self.wake_threshold:
            self._awake = True
        return self.supplied_fraction(utilization)

    def supplied_fraction(self, utilization: float) -> float:
        """Power fraction delivered this epoch.

        Awake: the rail tracks utilization but never drops below the sleep
        floor.  Asleep: the floor only.
        """
        if self._awake:
            return max(utilization, self.sleep_fraction)
        return self.sleep_fraction

    def access_penalty_ns(self) -> float:
        """Latency penalty for an access landing on a sleeping rail."""
        return 0.0 if self._awake else self.wake_latency_ns

    def run_trajectory(
        self, utilizations: List[float], epoch_ns: float = 100.0
    ) -> List[LaserPowerState]:
        """Drive the governor through a utilization trace."""
        if epoch_ns <= 0.0:
            raise ConfigError("epoch must be positive")
        states = []
        for index, utilization in enumerate(utilizations):
            fraction = self.observe(utilization)
            states.append(LaserPowerState(
                time_ns=index * epoch_ns,
                utilization=utilization,
                supplied_fraction=fraction,
            ))
        return states

    def average_power_w(self, utilizations: List[float]) -> float:
        """Mean supplied power over a utilization trace."""
        if not utilizations:
            raise ConfigError("empty utilization trace")
        states = self.run_trajectory(utilizations)
        mean_fraction = sum(s.supplied_fraction for s in states) / len(states)
        return mean_fraction * self.full_power_w


def managed_epb_pj(
    full_power_w: float,
    bandwidth_gbps: float,
    utilization: float,
    sleep_fraction: float = 0.1,
) -> Tuple[float, float]:
    """(always-on, managed) EPB in pJ/bit at a steady utilization.

    The closed form behind the ablation: an always-on rail charges
    ``P / BW`` per bit regardless of load; a managed rail charges
    ``(u + (1-u)*floor) * P / BW``.
    """
    if bandwidth_gbps <= 0.0:
        raise ConfigError("bandwidth must be positive")
    if not 0.0 < utilization <= 1.0:
        raise ConfigError("utilization must be in (0, 1]")
    bits_per_s = bandwidth_gbps * 8e9
    always_on = full_power_w / bits_per_s * 1e12
    managed_fraction = utilization + (1.0 - utilization) * sleep_fraction
    return always_on, always_on * managed_fraction
