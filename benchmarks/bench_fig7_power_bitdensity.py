"""Bench Fig. 7 — COMET power stacks for b = 1, 2, 4."""

import pytest

from repro.exp.fig7 import run as run_fig7


def bench_fig7_power_stacks(benchmark):
    result = benchmark(run_fig7)

    stacks = result.stacks
    # Fig. 7 shape: total power halves per bit-density doubling.
    assert stacks[1].total_w > stacks[2].total_w > stacks[4].total_w
    assert result.power_ratio(1, 4) == pytest.approx(4.0, rel=0.1)
    # b=4 is the paper's selection.
    assert result.selected_bits == 4
    # Components behave: SOA mesh and laser both scale with Nc.
    for bits in (1, 2, 4):
        assert stacks[bits].soa_w > stacks[bits].laser_w
        assert stacks[bits].tuning_w < 0.1  # EO tuning is negligible
