"""Plain-text table rendering and CSV output for experiment results."""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    print(format_table(headers, rows, title))
    print()


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text (for saving series to disk)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([_fmt(value) for value in row])
    return buffer.getvalue()


def write_csv(path: str, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(to_csv(headers, rows))


def ratio_line(label: str, ours: float, paper: float, unit: str = "x") -> str:
    """One paper-vs-measured comparison line."""
    return (f"{label}: measured {ours:.2f}{unit}  |  paper {paper:.2f}{unit}  "
            f"({ours / paper:.2f} of paper)")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
