"""Bench — functional data-integrity sweep across the whole loss range.

Exercises the Fig. 5(f) flow for every row position within an SOA period
(every distinct in-array loss value) and confirms zero decision errors
with the loss-aware design enabled — the crosstalk-free reliable operation
the conclusion claims — plus the error floor without it.
"""

import numpy as np

from repro.arch.functional import FunctionalCometMemory


def bench_functional_integrity_sweep(benchmark):
    def run():
        protected = FunctionalCometMemory()
        unprotected = FunctionalCometMemory(gain_lut_enabled=False)
        rng = np.random.RandomState(11)
        for row in range(46):   # one full SOA period of row positions
            address = row * protected.org.banks * 128
            payload = bytes(rng.randint(0, 256, 128, dtype=np.uint8))
            for memory in (protected, unprotected):
                memory.write_line(address, payload)
                memory.read_line(address)
        return protected.stats, unprotected.stats

    protected, unprotected = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  with gain LUT:    {protected.level_errors} errors "
          f"/ {protected.cells_read} cells")
    print(f"  without gain LUT: {unprotected.level_errors} errors "
          f"/ {unprotected.cells_read} cells "
          f"({unprotected.cell_error_rate:.0%})")

    # The paper's reliability claim, executed: zero errors with the
    # loss-aware architecture; massive corruption without it.
    assert protected.level_errors == 0
    assert unprotected.cell_error_rate > 0.3
