"""DOTA photonic tensor core fed by candidate main memories (Fig. 10).

DOTA [47] computes in the optical domain.  Data arriving from an
*electronic* memory must cross an electro-optic conversion stage — DAC,
modulator driver and the modulator's share of the laser — before it can
enter the tensor core, and results cross back.  A *photonic* memory
injects light directly ("without the need for energy-hungry
electro-photonic conversion stages", Section IV.D), paying only the
wavelength-alignment/retiming interface.

System EPB for a (memory, model) pair is therefore::

    EPB_system = EPB_memory(traffic)  +  conversion tax of that memory class

where ``EPB_memory`` comes from running the transformer's traffic through
the Fig. 9 memory simulator (weight streaming + activation spills), so the
memory sees DOTA's actual access pattern rather than a generic trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from ..errors import ConfigError, TraceError
from ..sim.engine import EvalTask, evaluate_cell, evaluate_tasks
from ..sim.simulator import MainMemorySimulator
from ..sim.stats import SimStats
from ..sim.tracegen import SyntheticWorkload, get_workload
from .transformer import DEIT_BASE, DEIT_TINY, TransformerConfig

if TYPE_CHECKING:   # import cycle: the store fingerprints via the engine
    from ..sim.store import ResultStore

#: Memories that deliver data optically (no E-O conversion at DOTA input).
PHOTONIC_MEMORIES = ("COMET", "COSMOS")

#: Trace seed of the Fig. 10 memory-simulation cells.  Part of every
#: cell's store digest, so it is a named constant rather than a buried
#: default: changing it re-addresses (and therefore recomputes) the
#: whole figure.
DOTA_SEED = 7


@dataclass(frozen=True)
class DotaEnergyModel:
    """Conversion-stage energy of the accelerator interface.

    ``electro_optic_pj_per_bit`` covers the DAC + driver + modulator laser
    share + receiver TIA/ADC of a full E-O-E crossing at analog-compute
    fidelity; ``photonic_injection_pj_per_bit`` is the
    wavelength-retiming/amplification cost of direct optical injection.
    """

    electro_optic_pj_per_bit: float = 65.0
    photonic_injection_pj_per_bit: float = 2.0

    def __post_init__(self) -> None:
        if self.electro_optic_pj_per_bit < 0.0:
            raise ConfigError("conversion energy must be non-negative")
        if self.photonic_injection_pj_per_bit < 0.0:
            raise ConfigError("injection energy must be non-negative")

    def conversion_pj_per_bit(self, memory_name: str) -> float:
        if memory_name in PHOTONIC_MEMORIES:
            return self.photonic_injection_pj_per_bit
        return self.electro_optic_pj_per_bit


@dataclass
class DotaResult:
    """System EPB of one (memory, model) pair."""

    memory_name: str
    model_name: str
    memory_epb_pj: float
    conversion_pj_per_bit: float

    @property
    def system_epb_pj(self) -> float:
        return self.memory_epb_pj + self.conversion_pj_per_bit


class DotaSystem:
    """DOTA + one main memory, evaluated on one transformer model."""

    def __init__(
        self,
        memory_name: str,
        model: TransformerConfig,
        energy_model: DotaEnergyModel = DotaEnergyModel(),
        inference_rate_per_s: float = 2000.0,
        on_chip_buffer_bytes: int = 1 * 2**20,
    ) -> None:
        if inference_rate_per_s <= 0.0:
            raise ConfigError("inference rate must be positive")
        if on_chip_buffer_bytes < 0:
            raise ConfigError("buffer size must be non-negative")
        self.memory_name = memory_name
        self.model = model
        self.energy_model = energy_model
        self.inference_rate_per_s = inference_rate_per_s
        self.on_chip_buffer_bytes = on_chip_buffer_bytes

    # -- traffic after on-chip buffering ---------------------------------

    def _layer_spill_bytes(self) -> int:
        """Per-layer bytes that exceed DOTA's on-chip SRAM and spill.

        DOTA buffers activations and attention scores on chip; only the
        overflow beyond the buffer reaches main memory.  For the DeiT
        variants the per-layer working set is well under 1 MB, so spills
        are zero and the memory sees (nearly pure) weight streaming.
        """
        per_layer = (self.model.activation_bytes_per_layer
                     + self.model.attention_bytes_per_layer)
        return max(per_layer - self.on_chip_buffer_bytes, 0)

    def read_bytes_per_inference(self) -> int:
        spills = self.model.layers * self._layer_spill_bytes()
        return self.model.weight_bytes + spills

    def write_bytes_per_inference(self) -> int:
        # Spilled tensors are written then read back; plus the final logits.
        return self.model.layers * self._layer_spill_bytes() + 4096

    def total_bytes_per_inference(self) -> int:
        return self.read_bytes_per_inference() + self.write_bytes_per_inference()

    def traffic_workload(self) -> SyntheticWorkload:
        """The memory-side view of DOTA running this model.

        Weight streaming makes the traffic highly sequential and
        read-dominated; the request rate follows from bytes-per-inference x
        inference rate.
        """
        total = self.total_bytes_per_inference()
        bytes_per_s = total * self.inference_rate_per_s
        line_bytes = 128
        interarrival_ns = max(line_bytes / bytes_per_s * 1e9, 0.5)
        reads = self.read_bytes_per_inference()
        return SyntheticWorkload(
            name=f"dota-{self.model.name}",
            mean_interarrival_ns=interarrival_ns,
            read_fraction=reads / total,
            sequential_probability=0.9,
            working_set_bytes=max(total, 1 * 2**20),
            line_bytes=line_bytes,
        )

    def task(self, num_requests: int = 8000, seed: int = DOTA_SEED) \
            -> EvalTask:
        """This system's memory-simulation cell as an :class:`EvalTask`.

        Only valid when the traffic workload is *registered* (see
        :meth:`is_engine_addressable`): the engine resolves workloads by
        name, so a customized system (non-default inference rate or
        buffer) must use the direct path instead.
        """
        return EvalTask(self.memory_name, self.traffic_workload().name,
                        num_requests, seed)

    def is_engine_addressable(self) -> bool:
        """True iff this system's traffic equals the registered preset,
        so its cell can go through the engine (store/server caching)."""
        workload = self.traffic_workload()
        try:
            return get_workload(workload.name) == workload
        except TraceError:
            return False

    def result_from_stats(self, stats: SimStats) -> DotaResult:
        """Wrap one simulated cell into the system-EPB result."""
        return DotaResult(
            memory_name=self.memory_name,
            model_name=self.model.name,
            memory_epb_pj=stats.energy_per_bit_pj,
            conversion_pj_per_bit=self.energy_model.conversion_pj_per_bit(
                self.memory_name
            ),
        )

    def evaluate(self, num_requests: int = 8000,
                 seed: int = DOTA_SEED) -> DotaResult:
        """Run the traffic through the memory simulator; return system EPB.

        A default-configured system evaluates through the engine cell
        (shared trace cache, same digest the store/server use); a
        customized one generates its own trace directly.  Both paths are
        bit-identical for the same parameters (the engine's vectorized
        controller and the object path share one scheduler).
        """
        if self.is_engine_addressable():
            return self.result_from_stats(
                evaluate_cell(self.task(num_requests, seed)))
        workload = self.traffic_workload()
        simulator = MainMemorySimulator(self.memory_name)
        stats = simulator.run(
            workload.generate(num_requests, seed=seed),
            workload_name=workload.name,
        )
        return self.result_from_stats(stats)


def dota_traffic_workloads() -> Dict[str, SyntheticWorkload]:
    """The named DOTA traffic presets (``dota-DeiT-T``, ``dota-DeiT-B``).

    This is what :func:`repro.sim.tracegen.get_workload` resolves the
    ``dota-*`` names to: the memory-side traffic of a default-configured
    :class:`DotaSystem` running each DeiT variant.  The traffic model is
    memory-independent, so one preset serves every candidate memory, and
    because the preset is derived from the transformer configuration,
    editing a model's dimensions re-fingerprints (and so invalidates)
    exactly its own stored cells.
    """
    workloads = {}
    for model in (DEIT_TINY, DEIT_BASE):
        workload = DotaSystem("COMET", model).traffic_workload()
        workloads[workload.name] = workload
    return workloads


def dota_case_study(
    memories: Optional[List[str]] = None,
    models: Optional[List[TransformerConfig]] = None,
    num_requests: int = 8000,
    seed: int = DOTA_SEED,
    store: Optional["ResultStore"] = None,
    server: Optional[str] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, DotaResult]]:
    """The full Fig. 10 grid: ``results[model][memory] -> DotaResult``.

    The memory-simulation cells route through the evaluation engine:
    ``store`` (a :class:`repro.sim.store.ResultStore`) makes the run
    incremental — cells already stored are served from disk, new ones
    are checkpointed — and ``server`` (an evaluation-daemon address)
    answers them remotely instead.  Systems whose traffic is not a
    registered preset (custom ``models``) fall back to direct
    simulation, cell by cell.
    """
    memory_names = memories if memories is not None else [
        "2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4", "EPCM-MM",
        "COSMOS", "COMET",
    ]
    model_list = models if models is not None else [DEIT_TINY, DEIT_BASE]
    systems: Dict[EvalTask, DotaSystem] = {}
    direct: List[DotaSystem] = []
    results: Dict[str, Dict[str, DotaResult]] = {
        model.name: {} for model in model_list}
    for model in model_list:
        for memory in memory_names:
            system = DotaSystem(memory, model)
            if system.is_engine_addressable():
                systems[system.task(num_requests, seed)] = system
            else:
                direct.append(system)
    if systems:
        tasks = list(systems)
        if server is not None:
            from ..sim.client import evaluate_tasks_remote

            lookup = evaluate_tasks_remote(tasks, server)
        else:
            lookup = evaluate_tasks(tasks, workers=workers, store=store)
        for task, system in systems.items():
            results[system.model.name][system.memory_name] = \
                system.result_from_stats(lookup[task])
    for system in direct:
        results[system.model.name][system.memory_name] = \
            system.evaluate(num_requests, seed)
    return results
