"""Property-based tests for the extension modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.endurance import StartGapWearLeveler
from repro.device.drift import TransmissionDriftModel
from repro.device.mlc import MultiLevelCell
from repro.device.thermal_crosstalk import ThermalCrosstalkModel
from repro.photonics.wdm import WdmGrid, ring_addressability


class TestStartGapProperties:
    @given(
        rows=st.integers(min_value=2, max_value=64),
        interval=st.integers(min_value=1, max_value=20),
        writes=st.integers(min_value=0, max_value=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_bijective_under_any_write_stream(self, rows, interval, writes):
        leveler = StartGapWearLeveler(rows=rows, gap_move_interval=interval)
        for _ in range(writes):
            leveler.record_write()
        assert leveler.mapping_is_bijective()

    @given(
        rows=st.integers(min_value=2, max_value=32),
        writes=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_overhead_bounded_by_interval(self, rows, writes):
        interval = 10
        leveler = StartGapWearLeveler(rows=rows, gap_move_interval=interval)
        for _ in range(writes):
            leveler.record_write()
        assert leveler.write_overhead() <= 1.0 / interval + 1e-9


class TestDriftProperties:
    @given(
        fc=st.floats(min_value=0.0, max_value=1.0),
        t1=st.floats(min_value=0.0, max_value=1e9),
        factor=st.floats(min_value=1.0, max_value=1e3),
    )
    @settings(max_examples=80)
    def test_shift_monotone_in_time(self, fc, t1, factor):
        model = TransmissionDriftModel()
        assert model.transmission_shift(fc, t1 * factor) \
            >= model.transmission_shift(fc, t1) - 1e-15

    @given(
        bits=st.integers(min_value=1, max_value=5),
        fc=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=60)
    def test_retention_never_negative(self, bits, fc):
        model = TransmissionDriftModel()
        retention = model.level_retention_s(MultiLevelCell(bits), fc)
        assert retention >= 0.0

    @given(fc_lo=st.floats(min_value=0.0, max_value=0.5),
           fc_gap=st.floats(min_value=0.01, max_value=0.49))
    @settings(max_examples=60)
    def test_more_crystalline_drifts_less(self, fc_lo, fc_gap):
        model = TransmissionDriftModel()
        t = 1e6
        assert model.transmission_shift(fc_lo + fc_gap, t) \
            <= model.transmission_shift(fc_lo, t) + 1e-15


class TestThermalProperties:
    @given(
        power=st.floats(min_value=1e-4, max_value=1e-2),
        duration=st.floats(min_value=1e-9, max_value=1e-6),
        distance=st.floats(min_value=1e-7, max_value=1e-4),
    )
    @settings(max_examples=80)
    def test_transient_below_steady_state(self, power, duration, distance):
        model = ThermalCrosstalkModel()
        transient = model.neighbor_temperature_rise_k(power, duration, distance)
        steady = model.steady_state_rise_k(power, distance)
        assert 0.0 <= transient <= steady + 1e-12

    @given(
        power=st.floats(min_value=1e-4, max_value=1e-2),
        duration=st.floats(min_value=1e-9, max_value=1e-7),
    )
    @settings(max_examples=40)
    def test_safe_pitch_is_actually_safe(self, power, duration):
        model = ThermalCrosstalkModel()
        pitch = model.minimum_safe_pitch_m(power, duration)
        assert model.is_disturb_free(power, duration, pitch * 1.01)


class TestWdmProperties:
    @given(
        channels=st.integers(min_value=1, max_value=400),
        spacing_pm=st.integers(min_value=10, max_value=800),
    )
    @settings(max_examples=80)
    def test_band_fit_consistent_with_wavelengths(self, channels, spacing_pm):
        grid = WdmGrid(channels, channel_spacing_m=spacing_pm * 1e-12)
        if grid.fits_band():
            wavelengths = grid.wavelengths_m()
            assert len(wavelengths) == channels
            assert wavelengths[0] >= grid.band_min_m - 1e-15
            assert wavelengths[-1] <= grid.band_max_m + 1e-15
        else:
            with pytest.raises(Exception):
                grid.wavelengths_m()

    @given(channels=st.integers(min_value=2, max_value=300))
    @settings(max_examples=60)
    def test_aliasing_iff_comb_exceeds_fsr(self, channels):
        grid = WdmGrid(channels, channel_spacing_m=0.1e-9)
        report = ring_addressability(grid)
        assert report.aliased == (grid.comb_span_m > report.ring_fsr_m)
        if report.aliased:
            assert report.crosstalk_pairs
