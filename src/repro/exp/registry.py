"""Experiment registry mapping paper artifact ids to runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from ..errors import ConfigError
from . import fig2, fig3, fig4, fig6, fig7, fig8, fig9, fig10
from . import headline, reliability, table1, table2


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact."""

    exp_id: str
    description: str
    run: Callable[[], object]
    main: Callable[[], object]


EXPERIMENTS: Dict[str, Experiment] = {
    "fig2": Experiment(
        "fig2", "Crossbar image corruption from write crosstalk",
        fig2.run, fig2.main),
    "fig3": Experiment(
        "fig3", "PCM dispersion (n, kappa) across the C-band",
        fig3.run, fig3.main),
    "fig4": Experiment(
        "fig4", "Cell contrast vs geometry; design-point selection",
        fig4.run, fig4.main),
    "fig6": Experiment(
        "fig6", "16-level latency/transmission tables + reset energies",
        fig6.run, fig6.main),
    "fig7": Experiment(
        "fig7", "COMET power stacks for b = 1, 2, 4",
        fig7.run, fig7.main),
    "fig8": Experiment(
        "fig8", "COSMOS vs COMET power stacks",
        fig8.run, fig8.main),
    "fig9": Experiment(
        "fig9", "Bandwidth / EPB / BW-per-EPB across architectures",
        fig9.run, fig9.main),
    "fig10": Experiment(
        "fig10", "DOTA accelerator EPB with each main memory",
        fig10.run, fig10.main),
    "table1": Experiment(
        "table1", "Optical loss and power parameters",
        table1.run, table1.main),
    "table2": Experiment(
        "table2", "Architectural details + derived timing validation",
        table2.run, table2.main),
    "headline": Experiment(
        "headline", "Abstract/conclusion headline ratios",
        headline.run, headline.main),
    "reliability": Experiment(
        "reliability", "Disturb/drift/endurance/WDM envelope (extension)",
        reliability.run, reliability.main),
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(exp_id: str) -> object:
    """Run an experiment quietly; returns its result object."""
    return get_experiment(exp_id).run()
