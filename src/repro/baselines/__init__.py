"""Baseline main-memory architectures the paper compares against.

* :mod:`repro.baselines.cosmos` — the COSMOS photonic crossbar main memory
  [20], re-modeled per Section IV.B (corrected pulse energies, reduced bit
  density, SOA arrays, PCM row-access switches).
* :mod:`repro.baselines.epcm` — an electrically-controlled PCM main memory
  (1T-1R, asymmetric SET/RESET).
* :mod:`repro.baselines.dram` — 2D and 3D DDR3/DDR4 DRAM models with
  row-buffer timing, refresh, and DIMM-level energy.
"""

from .cosmos import CosmosArchitecture, CosmosPowerModel, cosmos_power_breakdown
from .cosmos_functional import FunctionalCosmosMemory
from .epcm import EpcmConfig, EPCM_MM
from .dram import DramConfig, DRAM_CONFIGS, dram_config

__all__ = [
    "CosmosArchitecture",
    "CosmosPowerModel",
    "cosmos_power_breakdown",
    "FunctionalCosmosMemory",
    "EpcmConfig",
    "EPCM_MM",
    "DramConfig",
    "DRAM_CONFIGS",
    "dram_config",
]
