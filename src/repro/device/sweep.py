"""Cell geometry design-space sweep (Fig. 4).

Scans waveguide width and GST film thickness, computing the optical
absorption contrast and optical transmission contrast of the resulting
cell, and selects the design point the way Section III.B does: maximize
both contrasts jointly (so the transmission contrast is absorption-driven,
not mismatch-driven), with a thickness preference for fast thermal response
baked in by capping the film thickness scanned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..constants import WAVELENGTH_1550_M
from ..errors import ConfigError
from ..materials.pcm import PhaseChangeMaterial
from .cell import OpticalGstCell
from .geometry import CellGeometry

#: Paper-matching default scan ranges (Fig. 4 axes).
DEFAULT_WIDTHS_M = tuple(np.array([400, 440, 480, 520, 560, 600]) * 1e-9)
DEFAULT_THICKNESSES_M = tuple(np.array([10, 15, 20, 25, 30, 40, 50]) * 1e-9)


@dataclass(frozen=True)
class GeometrySweepPoint:
    """One (width, thickness) evaluation of the Fig. 4 scan."""

    width_m: float
    thickness_m: float
    transmission_amorphous: float
    transmission_crystalline: float
    absorption_amorphous: float
    absorption_crystalline: float

    @property
    def transmission_contrast(self) -> float:
        return self.transmission_amorphous - self.transmission_crystalline

    @property
    def absorption_contrast(self) -> float:
        return self.absorption_crystalline - self.absorption_amorphous

    @property
    def joint_score(self) -> float:
        """Selection score: product of the two contrasts (both must be high)."""
        return (max(self.transmission_contrast, 0.0)
                * max(self.absorption_contrast, 0.0))


def geometry_sweep(
    material: PhaseChangeMaterial,
    widths_m: Sequence[float] = DEFAULT_WIDTHS_M,
    thicknesses_m: Sequence[float] = DEFAULT_THICKNESSES_M,
    cell_length_m: float = 2e-6,
    platform: str = "Si",
    wavelength_m: float = WAVELENGTH_1550_M,
) -> List[GeometrySweepPoint]:
    """Evaluate the cell contrasts over a width x thickness grid."""
    if not widths_m or not thicknesses_m:
        raise ConfigError("sweep needs at least one width and one thickness")
    points: List[GeometrySweepPoint] = []
    for width in widths_m:
        for thickness in thicknesses_m:
            geometry = CellGeometry(
                waveguide_width_m=width,
                pcm_thickness_m=thickness,
                cell_length_m=cell_length_m,
                platform=platform,
            )
            cell = OpticalGstCell(material, geometry)
            resp_a = cell.response(0.0, wavelength_m)
            resp_c = cell.response(1.0, wavelength_m)
            points.append(GeometrySweepPoint(
                width_m=width,
                thickness_m=thickness,
                transmission_amorphous=resp_a.transmission,
                transmission_crystalline=resp_c.transmission,
                absorption_amorphous=resp_a.absorption,
                absorption_crystalline=resp_c.absorption,
            ))
    return points


def select_design_point(
    points: Sequence[GeometrySweepPoint],
    max_thickness_m: Optional[float] = 25e-9,
) -> GeometrySweepPoint:
    """Pick the design point: best joint contrast under a thickness cap.

    The cap encodes Section III.B's thermal argument — thicker films heat
    (and therefore write/reset) slower — so among near-equal contrasts the
    thin film wins.  With the paper's ranges this lands on
    (480 nm-class width, 20 nm thickness).
    """
    if not points:
        raise ConfigError("empty sweep")
    eligible = [p for p in points
                if max_thickness_m is None or p.thickness_m <= max_thickness_m]
    if not eligible:
        raise ConfigError("thickness cap excluded every sweep point")
    return max(eligible, key=lambda p: p.joint_score)
