"""Seed robustness: the headline ratios are not artifacts of one trace.

The Fig. 9 claims must hold for any reasonable draw of the synthetic
workloads; these tests re-run the COMET/COSMOS comparison across several
seeds and require the bandwidth and EPB advantages to hold every time,
with bounded spread.
"""

import numpy as np
import pytest

from repro.sim import MainMemorySimulator

SEEDS = (1, 7, 42, 1234)


@pytest.fixture(scope="module")
def ratios():
    comet = MainMemorySimulator("COMET")
    cosmos = MainMemorySimulator("COSMOS")
    bw, epb = [], []
    for seed in SEEDS:
        comet_stats = comet.run_workload("milc", 2500, seed=seed)
        cosmos_stats = cosmos.run_workload("milc", 2500, seed=seed)
        bw.append(comet_stats.bandwidth_gbps / cosmos_stats.bandwidth_gbps)
        epb.append(cosmos_stats.energy_per_bit_pj
                   / comet_stats.energy_per_bit_pj)
    return np.array(bw), np.array(epb)


class TestSeedStability:
    def test_bandwidth_advantage_every_seed(self, ratios):
        bw, _ = ratios
        assert np.all(bw > 2.0)

    def test_epb_advantage_every_seed(self, ratios):
        _, epb = ratios
        assert np.all(epb > 5.0)

    def test_bandwidth_ratio_spread_bounded(self, ratios):
        """The ratio varies by <25 % across seeds: a property of the
        architectures, not of one trace draw."""
        bw, _ = ratios
        assert bw.std() / bw.mean() < 0.25

    def test_epb_ratio_spread_bounded(self, ratios):
        _, epb = ratios
        assert epb.std() / epb.mean() < 0.25
