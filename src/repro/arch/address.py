"""Address mapping (paper Section III.F, Eqs. (1)–(6)).

The memory controller sees ``{Channel, Row, Bank, Column}`` coordinates and
COMET maps them onto
``{Channel, SubarrayID, SubarrayROW, Bank, SubarrayCOL}``:

    ID1         = int(RowID / Mr)                       (2)
    ID2         = int(ColumnID / Mc)                    (3)
    SubarrayID  = ID2 * sqrt(Sr) + ID1                  (4)
    SubarrayROW = RowID % Mr                            (5)
    SubarrayCOL = ColumnID % Mc                         (6)

In COMET ``Sc = 1``, so ``ID2 = 0`` and Eq. (4) degenerates to
``SubarrayID = ID1``; the ``sqrt(Sr)`` term only matters for layouts with
multiple column-subarrays, where — taken literally — it is only a bijection
when ``Sc <= sqrt(Sr)``.  :meth:`AddressMapper.subarray_id` therefore
follows Eq. (4) exactly whenever it is bijective and falls back to the
dense row-major form ``ID2 * Sr + ID1`` otherwise (COSMOS's 512 x 512
subarray grid needs the fallback).

Above the coordinate mapping sits the physical byte-address decomposition:
cache lines are interleaved across the ``B`` banks (Section III.C) and one
COMET line is exactly one subarray row (``Mc * b`` bits — 1024 bits = 128 B
for every Fig. 7 configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AddressError
from .organization import MemoryOrganization


@dataclass(frozen=True)
class DecomposedAddress:
    """Controller-level coordinates of one cache line."""

    channel: int
    bank: int
    row_id: int
    column_id: int


@dataclass(frozen=True)
class CellLocation:
    """Fully mapped physical location (Eq. (1) right-hand side)."""

    channel: int
    bank: int
    subarray_id: int
    subarray_row: int
    subarray_col: int


class AddressMapper:
    """Maps physical byte addresses to COMET/COSMOS cell locations."""

    def __init__(self, organization: MemoryOrganization, channels: int = 1) -> None:
        if channels < 1:
            raise AddressError("need at least one channel")
        self.org = organization
        self.channels = channels

    # ------------------------------------------------------------------
    # Line geometry
    # ------------------------------------------------------------------

    @property
    def line_bytes(self) -> int:
        """One line = one subarray row of one bank (Mc * b bits)."""
        bits = self.org.row_bits
        if bits % 8:
            raise AddressError(
                f"subarray row of {bits} bits is not byte-aligned"
            )
        return bits // 8

    @property
    def lines_per_bank(self) -> int:
        return self.org.rows_per_bank * self.org.col_subarrays

    @property
    def capacity_bytes(self) -> int:
        return self.channels * self.org.capacity_bytes

    # ------------------------------------------------------------------
    # Eq. (2)–(6)
    # ------------------------------------------------------------------

    def subarray_id(self, row_id: int, column_id: int) -> int:
        """Eq. (4), with a bijective fallback for wide subarray grids."""
        org = self.org
        id1 = row_id // org.rows_per_subarray          # Eq. (2)
        id2 = column_id // org.cols_per_subarray       # Eq. (3)
        try:
            grid_side = org.subarray_grid_side
            paper_form_bijective = org.col_subarrays <= grid_side or org.col_subarrays == 1
        except Exception:
            paper_form_bijective = False
        if paper_form_bijective and org.col_subarrays > 1:
            return id2 * grid_side + id1
        if org.col_subarrays == 1:
            return id1                                  # Eq. (4) with ID2 = 0
        return id2 * org.row_subarrays + id1            # dense fallback

    def map_coordinates(self, decomposed: DecomposedAddress) -> CellLocation:
        """Apply Eq. (1): controller coordinates -> cell location."""
        org = self.org
        if not 0 <= decomposed.row_id < org.rows_per_bank:
            raise AddressError(f"row {decomposed.row_id} out of range")
        if not 0 <= decomposed.column_id < org.cols_per_bank:
            raise AddressError(f"column {decomposed.column_id} out of range")
        if not 0 <= decomposed.bank < org.banks:
            raise AddressError(f"bank {decomposed.bank} out of range")
        if not 0 <= decomposed.channel < self.channels:
            raise AddressError(f"channel {decomposed.channel} out of range")
        return CellLocation(
            channel=decomposed.channel,
            bank=decomposed.bank,
            subarray_id=self.subarray_id(decomposed.row_id, decomposed.column_id),
            subarray_row=decomposed.row_id % org.rows_per_subarray,   # Eq. (5)
            subarray_col=decomposed.column_id % org.cols_per_subarray,  # Eq. (6)
        )

    # ------------------------------------------------------------------
    # Physical byte address <-> coordinates
    # ------------------------------------------------------------------

    def decompose(self, address: int) -> DecomposedAddress:
        """Physical byte address -> controller coordinates.

        Line interleaving: consecutive lines rotate across banks, then walk
        the rows of a bank, then (for Sc > 1) the column-subarray groups,
        then channels.
        """
        self._check_address(address)
        line = address // self.line_bytes
        bank = line % self.org.banks
        line //= self.org.banks
        row_id = line % self.org.rows_per_bank
        line //= self.org.rows_per_bank
        col_group = line % self.org.col_subarrays
        line //= self.org.col_subarrays
        channel = line
        return DecomposedAddress(
            channel=channel,
            bank=bank,
            row_id=row_id,
            column_id=col_group * self.org.cols_per_subarray,
        )

    def compose(self, decomposed: DecomposedAddress) -> int:
        """Inverse of :meth:`decompose` (line-aligned byte address)."""
        org = self.org
        col_group = decomposed.column_id // org.cols_per_subarray
        line = decomposed.channel
        line = line * org.col_subarrays + col_group
        line = line * org.rows_per_bank + decomposed.row_id
        line = line * org.banks + decomposed.bank
        return line * self.line_bytes

    def map_address(self, address: int) -> CellLocation:
        """Physical byte address -> fully mapped cell location."""
        return self.map_coordinates(self.decompose(address))

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.capacity_bytes:
            raise AddressError(
                f"address {address:#x} outside capacity "
                f"{self.capacity_bytes:#x}"
            )
