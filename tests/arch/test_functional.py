"""Functional COMET memory: data round-trips and failure injection."""

import numpy as np
import pytest

from repro.arch.functional import FunctionalCometMemory
from repro.device.mlc import paper_loss_tolerance_db
from repro.errors import AddressError, ConfigError


@pytest.fixture()
def memory():
    return FunctionalCometMemory()


def random_line(seed: int, line_bytes: int = 128) -> bytes:
    rng = np.random.RandomState(seed)
    return bytes(rng.randint(0, 256, line_bytes, dtype=np.uint8))


class TestRoundTrip:
    def test_single_line(self, memory):
        data = random_line(1)
        memory.write_line(0, data)
        assert memory.read_line(0) == data
        assert memory.stats.level_errors == 0

    def test_many_random_addresses(self, memory):
        rng = np.random.RandomState(7)
        lines = rng.randint(0, memory.capacity_bytes // 128, 64)
        payloads = {}
        for index, line in enumerate(lines):
            address = int(line) * 128
            payloads[address] = random_line(index)
            memory.write_line(address, payloads[address])
        for address, expected in payloads.items():
            assert memory.read_line(address) == expected
        assert memory.stats.cell_error_rate == 0.0

    def test_far_rows_survive_thanks_to_lut(self, memory):
        """Rows deep in the subarray lose up to 45 x 0.33 dB before their
        SOA stage — the gain LUT must keep them readable at b=4."""
        org = memory.org
        # Row 45 of some subarray = line index 45 within a bank stride.
        address = 45 * org.banks * 128
        location = memory.write_line(address, random_line(3))
        assert location.subarray_row == 45
        assert memory.read_line(address) == random_line(3)

    def test_overwrite_updates(self, memory):
        memory.write_line(128, random_line(1))
        memory.write_line(128, random_line(2))
        assert memory.read_line(128) == random_line(2)

    def test_blob_roundtrip(self, memory):
        blob = bytes(range(256)) * 3 + b"tail"
        memory.write_blob(0, blob)
        assert memory.read_blob(0, len(blob)) == blob


class TestAddressing:
    def test_unaligned_address_rejected(self, memory):
        with pytest.raises(AddressError):
            memory.write_line(64, random_line(1))

    def test_unwritten_read_rejected(self, memory):
        with pytest.raises(AddressError):
            memory.read_line(1024)

    def test_wrong_line_size_rejected(self, memory):
        with pytest.raises(ConfigError):
            memory.write_line(0, b"short")

    def test_out_of_capacity(self, memory):
        with pytest.raises(AddressError):
            memory.write_line(memory.capacity_bytes, random_line(1))


class TestFailureInjection:
    def test_disabled_lut_corrupts_far_rows(self):
        """Section III.E in reverse: without loss-aware gain tuning, rows
        beyond the b=4 reach (0 extra rows!) decode wrongly."""
        memory = FunctionalCometMemory(gain_lut_enabled=False)
        org = memory.org
        far_address = 40 * org.banks * 128     # subarray row 40
        memory.write_line(far_address, random_line(5))
        memory.read_line(far_address)
        assert memory.stats.level_errors > 0

    def test_disabled_lut_row_zero_still_reads(self):
        """Row 0 sits at its SOA stage: no loss, no gain needed."""
        memory = FunctionalCometMemory(gain_lut_enabled=False)
        memory.write_line(0, random_line(6))
        assert memory.read_line(0) == random_line(6)

    def test_loss_beyond_tolerance_breaks_readout(self):
        """Uncompensated loss above the b=4 tolerance aliases levels.

        Bright levels are the sensitive ones: a multiplicative loss moves
        level 0 (T=0.95) by several spacings while barely moving the dark
        levels — so the victim payload is all level 0 (0x00 bytes).
        """
        tolerance = paper_loss_tolerance_db(4)
        memory = FunctionalCometMemory(extra_loss_db=3 * tolerance)
        memory.write_line(0, bytes(128))            # every cell at level 0
        memory.read_line(0)
        assert memory.stats.level_errors > 0

    def test_small_drift_absorbed_by_level_decision(self):
        """Programming noise below half a level spacing is harmless."""
        memory = FunctionalCometMemory(transmission_noise_sigma=0.005)
        for index in range(8):
            memory.write_line(index * 128, random_line(index))
            assert memory.read_line(index * 128) == random_line(index)

    def test_large_drift_corrupts(self):
        memory = FunctionalCometMemory(transmission_noise_sigma=0.06)
        corrupted = 0
        for index in range(8):
            data = random_line(index)
            memory.write_line(index * 128, data)
            if memory.read_line(index * 128) != data:
                corrupted += 1
        assert corrupted > 0

    def test_error_rate_accounting(self):
        memory = FunctionalCometMemory(gain_lut_enabled=False)
        org = memory.org
        memory.write_line(40 * org.banks * 128, random_line(9))
        memory.read_line(40 * org.banks * 128)
        assert 0.0 < memory.stats.cell_error_rate <= 1.0
        assert memory.stats.reads == memory.stats.writes == 1
