"""Cell geometry description (the Fig. 5(a) cross-section)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..photonics.indices import SILICON_INDEX, SILICON_NITRIDE_INDEX


@dataclass(frozen=True)
class CellGeometry:
    """Geometry of one GST-on-waveguide cell.

    Paper defaults (Section III.B): 480 nm x 220 nm SOI strip, 20 nm GST of
    the same width, 2 um cell length, silicon platform.
    """

    waveguide_width_m: float = 480e-9
    core_thickness_m: float = 220e-9
    pcm_thickness_m: float = 20e-9
    cell_length_m: float = 2e-6
    platform: str = "Si"

    def __post_init__(self) -> None:
        for name in ("waveguide_width_m", "core_thickness_m",
                     "pcm_thickness_m", "cell_length_m"):
            if getattr(self, name) <= 0.0:
                raise ConfigError(f"{name} must be positive")
        if self.platform not in ("Si", "SiN"):
            raise ConfigError(f"platform must be 'Si' or 'SiN', got {self.platform!r}")

    @property
    def platform_index(self) -> float:
        """Core refractive index of the chosen platform."""
        return SILICON_INDEX if self.platform == "Si" else SILICON_NITRIDE_INDEX

    @property
    def pcm_volume_m3(self) -> float:
        """Volume of the PCM film (used by the thermal models)."""
        return (self.waveguide_width_m * self.pcm_thickness_m
                * self.cell_length_m)

    def with_pcm_thickness(self, thickness_m: float) -> "CellGeometry":
        """Copy with a different PCM film thickness (Fig. 4 sweeps)."""
        return CellGeometry(
            waveguide_width_m=self.waveguide_width_m,
            core_thickness_m=self.core_thickness_m,
            pcm_thickness_m=thickness_m,
            cell_length_m=self.cell_length_m,
            platform=self.platform,
        )

    def with_width(self, width_m: float) -> "CellGeometry":
        """Copy with a different waveguide width (Fig. 4 sweeps)."""
        return CellGeometry(
            waveguide_width_m=width_m,
            core_thickness_m=self.core_thickness_m,
            pcm_thickness_m=self.pcm_thickness_m,
            cell_length_m=self.cell_length_m,
            platform=self.platform,
        )
