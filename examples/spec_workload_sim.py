#!/usr/bin/env python
"""SPEC-like workload simulation across all memory architectures.

The Fig. 9 experiment as a script: generates the eight synthetic SPEC
workloads, runs each against every architecture, and prints bandwidth,
latency and EPB — plus a trace round-trip through the NVMain file format
to show interoperability.

Usage: python examples/spec_workload_sim.py [num_requests]
"""

import sys
import tempfile

from repro.sim import (
    ARCHITECTURE_NAMES,
    TraceReader,
    TraceWriter,
    generate_trace,
)
from repro.sim.simulator import run_evaluation, summarize


def trace_roundtrip_demo() -> None:
    """Write a generated trace as an NVMain file and read it back."""
    trace = generate_trace("mcf", num_requests=1000)
    with tempfile.NamedTemporaryFile("w+", suffix=".nvt", delete=False) as f:
        path = f.name
    TraceWriter(path).write(trace)
    recovered = TraceReader(path).read_all()
    print(f"NVMain trace round-trip: wrote {len(trace)} records to {path}, "
          f"read back {len(recovered)} "
          f"(first: {recovered[0].op.value} 0x{recovered[0].address:X})\n")


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    trace_roundtrip_demo()

    results = run_evaluation(num_requests=num_requests)
    summary = summarize(results)

    header = f"{'arch':10s} {'BW (GB/s)':>10s} {'latency (ns)':>13s} " \
             f"{'EPB (pJ/b)':>11s} {'BW/EPB':>9s}"
    print(header)
    print("-" * len(header))
    for arch in ARCHITECTURE_NAMES:
        s = summary[arch]
        print(f"{arch:10s} {s['bandwidth_gbps']:10.2f} "
              f"{s['avg_latency_ns']:13.1f} {s['epb_pj']:11.1f} "
              f"{s['bw_per_epb']:9.4f}")

    comet, cosmos = summary["COMET"], summary["COSMOS"]
    print(f"\nCOMET vs COSMOS: "
          f"{comet['bandwidth_gbps'] / cosmos['bandwidth_gbps']:.1f}x BW, "
          f"{cosmos['epb_pj'] / comet['epb_pj']:.1f}x lower EPB, "
          f"{cosmos['avg_latency_ns'] / comet['avg_latency_ns']:.1f}x lower "
          f"latency (paper: 5.1-7.1x / 12.9-15.1x / 3x)")


if __name__ == "__main__":
    main()
