"""Readout SNR/BER extension."""

import pytest

from repro.device.mlc import MultiLevelCell
from repro.device.readout import PhotodetectorModel, ReadoutModel
from repro.errors import ConfigError


class TestDetector:
    def test_photocurrent_linear(self):
        det = PhotodetectorModel(responsivity_a_per_w=1.0)
        assert det.photocurrent_a(1e-4) == pytest.approx(1e-4)

    def test_noise_grows_with_signal(self):
        """Shot noise: brighter levels are noisier."""
        det = PhotodetectorModel()
        assert det.noise_current_a(1e-3) > det.noise_current_a(1e-6)

    def test_snr_improves_with_power(self):
        det = PhotodetectorModel()
        assert det.snr_db(1e-4) > det.snr_db(1e-6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PhotodetectorModel(bandwidth_hz=0.0)
        with pytest.raises(ConfigError):
            PhotodetectorModel().photocurrent_a(-1.0)
        with pytest.raises(ConfigError):
            PhotodetectorModel().snr_db(0.0)


class TestLevelDecisions:
    def test_fewer_bits_fewer_errors(self):
        readout = ReadoutModel(received_power_w=1e-5)
        errors = [readout.worst_pair_error_probability(MultiLevelCell(b))
                  for b in (1, 2, 4)]
        assert errors[0] < errors[1] < errors[2]

    def test_more_power_fewer_errors(self):
        dim = ReadoutModel(received_power_w=1e-7)
        bright = ReadoutModel(received_power_w=1e-4)
        mlc = MultiLevelCell(4)
        assert bright.worst_pair_error_probability(mlc) \
            < dim.worst_pair_error_probability(mlc)

    def test_four_bits_reliable_at_design_power(self):
        """At the ~0.1 mW received-power class, 4 bits/cell decodes with
        negligible error — the paper's operating point."""
        readout = ReadoutModel(received_power_w=1e-4)
        assert readout.worst_pair_error_probability(MultiLevelCell(4)) < 1e-12

    def test_max_reliable_bits_monotone_in_power(self):
        dim = ReadoutModel(received_power_w=3e-8)
        bright = ReadoutModel(received_power_w=1e-4)
        assert bright.max_reliable_bits() >= dim.max_reliable_bits()

    def test_five_bits_demands_more_than_four(self):
        """[17] demonstrates 5 bits; the margin is thinner than 4 bits."""
        readout = ReadoutModel(received_power_w=1e-6)
        four = readout.worst_pair_error_probability(MultiLevelCell(4))
        five = readout.worst_pair_error_probability(MultiLevelCell(5))
        assert five > four

    def test_symbol_error_bounded(self):
        readout = ReadoutModel(received_power_w=1e-8)
        assert 0.0 <= readout.symbol_error_probability(MultiLevelCell(5)) <= 1.0

    def test_snr_per_level_descends_with_level(self):
        readout = ReadoutModel(received_power_w=1e-4)
        snrs = readout.snr_per_level_db(MultiLevelCell(2))
        assert snrs[0] > snrs[-1]   # brightest level has the best SNR

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReadoutModel(received_power_w=0.0)
        with pytest.raises(ConfigError):
            ReadoutModel().max_reliable_bits(target_error=2.0)
