"""PhaseChangeMaterial facade: blending, contrasts, selection ranking."""

import numpy as np
import pytest

from repro.materials import MATERIAL_NAMES, OpticalState, get_material


class TestBlending:
    def test_endpoint_consistency(self, gst):
        n0, k0 = gst.nk(1550e-9, 0.0)
        n_a, k_a = gst.nk_state(1550e-9, OpticalState.AMORPHOUS)
        assert n0 == pytest.approx(n_a, rel=1e-9)
        assert k0 == pytest.approx(k_a, rel=1e-9)

    def test_index_monotone_in_fraction(self, gst):
        fractions = np.linspace(0.0, 1.0, 9)
        indices = [gst.nk(1550e-9, fc)[0] for fc in fractions]
        assert all(b > a for a, b in zip(indices, indices[1:]))

    def test_extinction_monotone_in_fraction(self, gst):
        fractions = np.linspace(0.0, 1.0, 9)
        kappas = [gst.nk(1550e-9, fc)[1] for fc in fractions]
        assert all(b > a for a, b in zip(kappas, kappas[1:]))

    def test_array_wavelengths(self, gst):
        wl = gst.c_band_wavelengths(10)
        n, k = gst.nk(wl, 0.5)
        assert n.shape == wl.shape == k.shape


class TestContrasts:
    def test_gst_contrast_values(self, gst):
        """Paper: GST has the highest index contrast (~2.2 at 1550 nm)."""
        assert gst.index_contrast() == pytest.approx(6.11 - 3.94, rel=1e-6)
        assert gst.extinction_contrast() == pytest.approx(0.83 - 0.045, rel=1e-6)

    def test_selection_ranking_matches_paper(self):
        """Fig. 3's conclusion: GST > GSST > Sb2Se3 for OPCM memory."""
        foms = {name: get_material(name).figure_of_merit()
                for name in MATERIAL_NAMES}
        assert foms["GST"] > foms["GSST"] > foms["Sb2Se3"]

    def test_contrast_stable_across_c_band(self, gst):
        wl = gst.c_band_wavelengths(8)
        contrast = gst.index_contrast(wl)
        assert np.all(contrast > 2.0)
        variation = (contrast.max() - contrast.min()) / contrast.mean()
        assert variation < 0.02


class TestCBandGrid:
    def test_grid_bounds(self, gst):
        wl = gst.c_band_wavelengths(36)
        assert wl[0] == pytest.approx(1530e-9)
        assert wl[-1] == pytest.approx(1565e-9)

    def test_grid_needs_two_points(self, gst):
        from repro.errors import MaterialError
        with pytest.raises(MaterialError):
            gst.c_band_wavelengths(1)
