"""Bench the parallel evaluation engine against the legacy serial path.

The legacy baseline is what the seed repo did for every Fig. 9 cell:
materialize the workload trace as request objects (regenerated per
architecture) and push them through the original per-request scalar
controller loop.  The engine replaces that with cached column-store
traces, the vectorized controller and optional process fan-out.

``bench_parallel_eval_speedup`` is the acceptance gate: the full
(7 architectures x 8 workloads) grid with 4 workers must finish at
least 2x faster than the legacy path.  On multi-core hosts the fan-out
adds to the vectorization win; on a single core the vectorization and
trace caching carry the bound on their own.

Runs standalone too::

    python benchmarks/bench_parallel_eval.py [num_requests]
"""

from __future__ import annotations

import sys
import time
from typing import Dict

from repro.sim.controller import MemoryController
from repro.sim.engine import controller_for, run_evaluation
from repro.sim.factory import ARCHITECTURE_NAMES
from repro.sim.simulator import summarize
from repro.sim.stats import SimStats
from repro.sim.tracegen import SPEC_WORKLOADS, get_workload

NUM_REQUESTS = 3000
WORKERS = 4


def run_legacy_grid(num_requests: int) -> Dict[str, Dict[str, SimStats]]:
    """The seed's evaluation loop: per-cell object traces + scalar loop."""
    results: Dict[str, Dict[str, SimStats]] = {}
    for arch in ARCHITECTURE_NAMES:
        controller = controller_for(arch)
        scalar = MemoryController(controller.device,
                                  queue_depth=controller.queue_depth)
        results[arch] = {}
        for name in sorted(SPEC_WORKLOADS):
            trace = get_workload(name).generate(num_requests, seed=1)
            results[arch][name] = scalar.run_reference(trace, name)
    return results


def compare(num_requests: int = NUM_REQUESTS,
            workers: int = WORKERS) -> Dict[str, float]:
    """Time legacy vs engine on the full SPEC grid; return the numbers."""
    # Device construction (COMET's mode-solver stack) is one-time work
    # shared by both paths; warm it outside the timed regions.
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)

    start = time.perf_counter()
    legacy = run_legacy_grid(num_requests)
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    engine = run_evaluation(num_requests=num_requests, seed=1,
                            workers=workers)
    engine_s = time.perf_counter() - start

    # Same physics: identical schedules (energy sums are re-associated).
    for arch in ARCHITECTURE_NAMES:
        for name in sorted(SPEC_WORKLOADS):
            assert legacy[arch][name].latencies_ns \
                == engine[arch][name].latencies_ns, (arch, name)

    return {
        "num_requests": num_requests,
        "workers": workers,
        "legacy_s": legacy_s,
        "engine_s": engine_s,
        "speedup": legacy_s / engine_s,
    }


def bench_parallel_eval_speedup():
    """Acceptance gate: >= 2x on the full grid with 4 workers."""
    result = compare()
    print(f"\n  legacy serial grid : {result['legacy_s']:.2f} s")
    print(f"  engine ({result['workers']} workers)  : "
          f"{result['engine_s']:.2f} s")
    print(f"  speedup            : {result['speedup']:.1f}x")
    assert result["speedup"] >= 2.0, (
        f"parallel engine only {result['speedup']:.2f}x faster than the "
        f"legacy serial path")


def bench_parallel_eval_grid(benchmark):
    """pytest-benchmark timing of the engine on the full SPEC grid."""
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)
    results = benchmark.pedantic(
        run_evaluation,
        kwargs={"num_requests": NUM_REQUESTS, "seed": 1, "workers": WORKERS},
        rounds=1, iterations=1)
    summary = summarize(results)
    assert summary["COMET"]["bandwidth_gbps"] \
        == max(s["bandwidth_gbps"] for s in summary.values())


def bench_parallel_eval_scenarios(benchmark):
    """Engine throughput on the multi-programmed + phased workloads."""
    names = ("mix_mcf_lbm", "mix_libquantum_omnetpp", "mix_gcc_bwaves",
             "mix_milc_gemsfdtd", "bursty", "checkpoint")
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)
    results = benchmark.pedantic(
        run_evaluation,
        kwargs={"workloads": names, "num_requests": NUM_REQUESTS,
                "seed": 1, "workers": WORKERS},
        rounds=1, iterations=1)
    summary = summarize(results)
    assert summary["COMET"]["bandwidth_gbps"] \
        == max(s["bandwidth_gbps"] for s in summary.values())


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else NUM_REQUESTS
    result = compare(num_requests=num_requests)
    print(f"full SPEC grid, {num_requests} requests/cell:")
    print(f"  legacy serial scalar path : {result['legacy_s']:.2f} s")
    print(f"  parallel engine ({result['workers']} workers): "
          f"{result['engine_s']:.2f} s")
    print(f"  speedup: {result['speedup']:.1f}x")


if __name__ == "__main__":
    main()
