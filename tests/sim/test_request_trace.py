"""Request primitives and the NVMain trace format."""

import io

import pytest

from repro.errors import SimulationError, TraceError
from repro.sim.request import MemRequest, OpType
from repro.sim.trace import (
    TraceReader,
    TraceWriter,
    format_trace_line,
    parse_trace_line,
    roundtrip,
)


class TestRequest:
    def test_basics(self):
        req = MemRequest(address=0x1000, op=OpType.READ, arrival_ns=5.0)
        assert req.is_read
        assert req.size_bytes == 128

    def test_latency_requires_simulation(self):
        req = MemRequest(address=0, op=OpType.WRITE, arrival_ns=0.0)
        with pytest.raises(SimulationError):
            _ = req.latency_ns
        req.completion_ns = 42.0
        assert req.latency_ns == pytest.approx(42.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            MemRequest(address=-1, op=OpType.READ, arrival_ns=0.0)
        with pytest.raises(SimulationError):
            MemRequest(address=0, op=OpType.READ, arrival_ns=-1.0)
        with pytest.raises(SimulationError):
            MemRequest(address=0, op=OpType.READ, arrival_ns=0.0, size_bytes=0)

    def test_op_token_parsing(self):
        assert OpType.from_token("R") is OpType.READ
        assert OpType.from_token("write") is OpType.WRITE
        with pytest.raises(SimulationError):
            OpType.from_token("X")


class TestTraceFormat:
    def test_parse_compact_line(self):
        req = parse_trace_line("2000 R 0x1F40 0", cpu_freq_ghz=2.0)
        assert req.address == 0x1F40
        assert req.is_read
        assert req.arrival_ns == pytest.approx(1000.0)

    def test_parse_nvmain_line_with_data(self):
        line = "150 W 0xDEADBEEF " + "AB" * 64 + " 3"
        req = parse_trace_line(line)
        assert req.address == 0xDEADBEEF
        assert not req.is_read
        assert req.thread_id == 3

    def test_malformed_lines_rejected(self):
        for bad in ("", "1 R", "x R 0x10", "1 Q 0x10", "1 R zz", "-5 R 0x10"):
            with pytest.raises(TraceError):
                parse_trace_line(bad)

    def test_format_parse_inverse(self):
        req = MemRequest(address=0xABC000, op=OpType.WRITE, arrival_ns=321.5)
        line = format_trace_line(req, cpu_freq_ghz=2.0)
        back = parse_trace_line(line, cpu_freq_ghz=2.0)
        assert back.address == req.address
        assert back.op == req.op
        assert back.arrival_ns == pytest.approx(req.arrival_ns, abs=0.5)


class TestReaderWriter:
    def test_roundtrip_preserves_stream(self):
        requests = [
            MemRequest(address=128 * i, op=OpType.READ if i % 3 else OpType.WRITE,
                       arrival_ns=float(10 * i))
            for i in range(50)
        ]
        recovered = roundtrip(requests)
        assert len(recovered) == 50
        assert [r.address for r in recovered] == [r.address for r in requests]
        assert [r.op for r in recovered] == [r.op for r in requests]

    def test_reader_skips_comments_and_blanks(self):
        stream = io.StringIO("# header\n\n100 R 0x80 0\n")
        requests = TraceReader(stream).read_all()
        assert len(requests) == 1

    def test_writer_counts(self):
        sink = io.StringIO()
        count = TraceWriter(sink).write([
            MemRequest(address=0, op=OpType.READ, arrival_ns=0.0)])
        assert count == 1
        assert sink.getvalue().strip() == "0 R 0x0 0"

    def test_bad_frequency(self):
        with pytest.raises(TraceError):
            parse_trace_line("1 R 0x0", cpu_freq_ghz=0.0)
