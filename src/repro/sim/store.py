"""Persistent, content-addressed result store for evaluation grids.

Every grid cell (:class:`repro.sim.engine.EvalTask`) hashes to a stable
content digest covering the task parameters **and** fingerprints of the
device model and workload preset it would run, so results invalidate
automatically when a model changes — re-running after editing, say, the
COMET timing stack recomputes only the COMET cells.  The store itself is
a plain directory of JSON entries (one per digest, sharded by prefix)
with the bulky per-request latency samples in packed-float64 sidecars,
written atomically so an interrupted sweep never leaves a torn entry:
whatever completed before the interruption is served from disk on the
next run, byte-identical to a cold computation.

This is the durability layer the sweep runner (:mod:`repro.sim.sweep`),
``run_evaluation(store=...)`` and the incremental Fig. 9 regeneration
build on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ReproError, SimulationError
from .engine import EvalTask, TASK_FIELDS, clear_device_caches, device_for
from .stats import SimStats
from .tracegen import get_workload

#: Bump when the digest payload or entry layout changes incompatibly;
#: stores written under another schema are rejected on open.
STORE_SCHEMA_VERSION = 1

#: Simulator-*behavior* version, folded into every task digest.  The
#: device/workload fingerprints invalidate stored results when a model
#: *configuration* changes, but cannot see code: bump this whenever
#: controller/engine scheduling or stats semantics change, so results
#: computed by older simulator code stop being addressed.
#: (``STORE_SCHEMA_VERSION`` guards the on-disk layout instead.)
#: v2: per-bank transaction queues + deadline-space chain arithmetic for
#: contention-free devices (the fast-path scheduler kernel semantics).
RESULTS_VERSION = 2


def _canonical(payload: Any) -> bytes:
    """Canonical JSON encoding (sorted keys, no whitespace) for hashing."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _sha256(payload: Any) -> str:
    return hashlib.sha256(_canonical(payload)).hexdigest()


def _current_umask() -> int:
    """The process umask (os can only report it by setting it)."""
    umask = os.umask(0)
    os.umask(umask)
    return umask


def _pack_latencies(latencies: Sequence[float]) -> bytes:
    """Per-request latencies as little-endian float64 bytes.

    The bulky part of an entry lives in a binary sidecar: packed floats
    decode orders of magnitude faster than a JSON array (what makes warm
    sweeps effectively free) and round-trip bit-exactly.
    """
    return np.asarray(latencies, dtype="<f8").tobytes()


def _unpack_latencies(blob: bytes) -> List[float]:
    return np.frombuffer(blob, dtype="<f8").tolist()


_FINGERPRINT_CACHE: Dict[Tuple[str, str], str] = {}


def device_fingerprint(architecture: str) -> str:
    """Content digest of the device model an architecture name builds.

    Hashes every field of the built :class:`MemoryDeviceModel` (timings,
    energy, geometry), so any change to the device configuration — a
    retuned pulse energy, a different bank count — changes the digest
    and invalidates stored results for that architecture.
    """
    key = ("device", architecture)
    digest = _FINGERPRINT_CACHE.get(key)
    if digest is None:
        # device_for is the engine's per-process device cache, shared by
        # every controller regardless of queue depth, so fingerprinting
        # never rebuilds a device the evaluation already built (COMET's
        # mode-solver stack costs ~0.7 s).
        digest = _sha256(dataclasses.asdict(device_for(architecture)))
        _FINGERPRINT_CACHE[key] = digest
    return digest


def workload_fingerprint(workload: str) -> str:
    """Content digest of a workload preset's full parameter set."""
    key = ("workload", workload)
    digest = _FINGERPRINT_CACHE.get(key)
    if digest is None:
        digest = _sha256(dataclasses.asdict(get_workload(workload)))
        _FINGERPRINT_CACHE[key] = digest
    return digest


_DIGEST_CACHE: Dict[EvalTask, str] = {}


def clear_fingerprint_cache() -> None:
    """Drop memoized fingerprints and digests (tests / in-process model
    edits — a rebuilt device model only re-fingerprints after this).

    Also clears the engine's device/controller caches: fingerprints are
    derived from the cached device, so an edited model definition must
    rebuild before it can re-fingerprint.
    """
    _FINGERPRINT_CACHE.clear()
    _DIGEST_CACHE.clear()
    clear_device_caches()


def task_digest(task: EvalTask) -> str:
    """Stable content digest of one grid cell.

    Pure function of the task parameters, the device and workload
    fingerprints, and :data:`RESULTS_VERSION` — no process state, dict
    ordering or hash randomization involved, so digests agree across
    processes and hosts.  Memoized per
    task (the fingerprints are fixed within a process), which keeps warm
    store lookups on the fast path.
    """
    digest = _DIGEST_CACHE.get(task)
    if digest is None:
        digest = _sha256({
            "schema": STORE_SCHEMA_VERSION,
            "results_version": RESULTS_VERSION,
            "architecture": task.architecture,
            "workload": task.workload,
            "num_requests": task.num_requests,
            "seed": task.seed,
            "queue_depth": task.queue_depth,
            "device": device_fingerprint(task.architecture),
            "workload_model": workload_fingerprint(task.workload),
        })
        _DIGEST_CACHE[task] = digest
    return digest


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` / :meth:`~ResultStore.compact`
    pass kept and removed (paths listed for auditing / ``--dry-run``)."""

    dry_run: bool = False
    live: int = 0
    removed_stale: List[Path] = field(default_factory=list)
    removed_sidecars: List[Path] = field(default_factory=list)
    removed_temp_files: List[Path] = field(default_factory=list)
    removed_dirs: List[Path] = field(default_factory=list)

    @property
    def removed_total(self) -> int:
        return (len(self.removed_stale) + len(self.removed_sidecars)
                + len(self.removed_temp_files) + len(self.removed_dirs))

    def describe(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (f"{self.live} live entries kept; {verb} "
                f"{len(self.removed_stale)} stale entries, "
                f"{len(self.removed_sidecars)} orphaned sidecars, "
                f"{len(self.removed_temp_files)} temp files, "
                f"{len(self.removed_dirs)} empty shard dirs")


@dataclass
class MergeReport:
    """What one :meth:`ResultStore.merge_from` pass did (paths listed
    for auditing / ``--dry-run``), in the :class:`GcReport` mold.

    ``conflicts`` is the audit that makes merging safe: two stores
    holding the *same digest* with *different* task/stats payloads mean
    one of them was produced by divergent simulator code (a digest
    collision by construction cannot happen otherwise) — those entries
    are never copied, and the CLI exits non-zero.
    """

    dry_run: bool = False
    source: str = ""
    merged: List[Path] = field(default_factory=list)
    upgraded: List[Path] = field(default_factory=list)
    already_present: int = 0
    replaced_torn: List[Path] = field(default_factory=list)
    skipped_unreadable: List[Path] = field(default_factory=list)
    conflicts: List[str] = field(default_factory=list)

    @property
    def copied_total(self) -> int:
        return (len(self.merged) + len(self.upgraded)
                + len(self.replaced_torn))

    def describe(self) -> str:
        verb = "would copy" if self.dry_run else "copied"
        line = (f"{verb} {len(self.merged)} new entries from "
                f"{self.source or 'source'} ({len(self.upgraded)} "
                f"archival entries upgraded with latency sidecars, "
                f"{len(self.replaced_torn)} torn destination entries "
                f"replaced); {self.already_present} already present, "
                f"{len(self.skipped_unreadable)} unreadable source "
                f"entries skipped")
        if self.conflicts:
            line += (f"; {len(self.conflicts)} CONFLICTS "
                     f"(same digest, different payload) left uncopied")
        return line


class ResultStore:
    """On-disk result store: ``directory/cells/<ab>/<digest>.json``
    entries plus ``<digest>.lat`` packed-latency sidecars.

    * **Content-addressed** — the filename is :func:`task_digest`, so a
      lookup is one ``open``; stale results (changed device/workload
      models) simply stop being addressed.
    * **Atomic** — entries are written to a temp file and ``os.replace``d
      into place, sidecar before entry; readers never observe a torn
      entry, and an interrupted sweep resumes from exactly the cells
      that completed.
    * **Self-describing** — each entry carries the task parameters and
      fingerprints alongside the serialized stats, so a store can be
      exported or audited without recomputing digests.

    **Concurrency contract.**  A store directory may be shared by any
    number of readers and writers (sweep workers, the evaluation
    server's I/O threads, rsync'd peers) without external locking:

    * writes stage into a sibling temp file and ``os.replace`` into
      place, so a reader observes either no entry or a complete one —
      never a torn file;
    * concurrent ``put`` of the same digest is benign: the digest pins
      the task *and* model fingerprints, evaluation is deterministic,
      so both writers rename identical bytes and either rename winning
      leaves a valid entry (sidecars are written before the entry that
      references them);
    * entries vanishing mid-read (a concurrent invalidation or GC) are
      reported as misses, not raised.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.cells_dir.mkdir(parents=True, exist_ok=True)
        self._check_meta()

    def _check_meta(self) -> None:
        meta_path = self.root / "store.json"
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
            except json.JSONDecodeError:
                raise SimulationError(
                    f"corrupt store metadata: {meta_path}") from None
            if meta.get("schema") != STORE_SCHEMA_VERSION:
                raise SimulationError(
                    f"store {self.root} has schema {meta.get('schema')!r}; "
                    f"this build writes schema {STORE_SCHEMA_VERSION}")
        else:
            self._atomic_write(
                meta_path, {"schema": STORE_SCHEMA_VERSION,
                            "format": "repro.sim result store"})

    # -- addressing ---------------------------------------------------------

    def path_for(self, task: EvalTask) -> Path:
        return self._digest_path(task_digest(task))

    def _digest_path(self, digest: str) -> Path:
        return self.cells_dir / digest[:2] / f"{digest}.json"

    # -- read/write ---------------------------------------------------------

    def get(self, task: EvalTask) -> Optional[SimStats]:
        """Stored stats for a task, or ``None`` (miss / unreadable)."""
        path = self.path_for(task)
        try:
            return self._entry_stats(json.loads(path.read_text()), path)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                SimulationError, OSError):
            # Unreadable entries — torn by a crashed writer, deleted by
            # a concurrent GC, or plain missing — are treated as misses
            # and recomputed (the subsequent put overwrites atomically).
            return None

    def get_many(self, tasks: Sequence[EvalTask]) \
            -> Dict[EvalTask, Optional[SimStats]]:
        """Batch lookup: ``{task: stats-or-None}`` for every task.

        One digest computation + one read per *distinct* task (duplicate
        tasks in the input are resolved once); the read-through path of
        the evaluation engine and server.
        """
        resolved: Dict[EvalTask, Optional[SimStats]] = {}
        for task in tasks:
            if task not in resolved:
                resolved[task] = self.get(task)
        return resolved

    def put(self, task: EvalTask, stats: SimStats,
            latencies: bool = True) -> str:
        """Persist one cell atomically; returns its digest.

        Every entry carries a fixed-bin latency summary (exact
        count/mean/min/max plus a log-spaced histogram) in its JSON, so
        ``latencies=False`` archival entries — which skip the bulky
        per-request sidecar — still answer mean/percentile/max queries
        on reload instead of degrading to NaN columns.
        """
        digest = task_digest(task)
        path = self._digest_path(digest)
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "digest": digest,
            "task": dataclasses.asdict(task),
            "device_fingerprint": device_fingerprint(task.architecture),
            "workload_fingerprint": workload_fingerprint(task.workload),
            "stats": stats.to_dict(latencies=False),
        }
        if latencies:
            # Sidecar before entry: an entry that names a latency count
            # always finds complete bytes beside it.
            entry["latencies_count"] = len(stats.latencies_ns)
            self._atomic_write_bytes(self._sidecar_path(path),
                                     _pack_latencies(stats.latencies_ns))
        self._atomic_write(path, entry)
        if not latencies:
            # Re-putting a cell in archival mode must actually reclaim
            # the bulky sidecar; the new entry no longer references it.
            self._sidecar_path(path).unlink(missing_ok=True)
        return digest

    def __contains__(self, task: EvalTask) -> bool:
        return self.path_for(task).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.cells_dir.glob("*/*.json"))

    def entries(self) -> Iterator[Tuple[EvalTask, SimStats]]:
        """Iterate every readable stored cell (digest order)."""
        for path in sorted(self.cells_dir.glob("*/*.json")):
            try:
                entry = json.loads(path.read_text())
                task = EvalTask(**entry["task"])
                yield task, self._entry_stats(entry, path)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    SimulationError, OSError):
                # Same rule as get(): entries torn or concurrently
                # removed are skipped, not raised.
                continue

    # -- garbage collection -------------------------------------------------

    def gc(self, dry_run: bool = False) -> "GcReport":
        """Prune everything the store can no longer serve.

        Stale results are invisible to ``get`` (the digest stops being
        addressed) but were never *deleted*, so a long-lived store grows
        without bound across model edits.  ``gc`` removes:

        * entries whose digest no longer matches the current
          :func:`task_digest` of their recorded task — a changed device
          or workload fingerprint, a bumped :data:`RESULTS_VERSION`, or
          a task naming a model that no longer exists;
        * unreadable entries (torn JSON, missing or size-mismatched
          latency sidecars — anything ``get`` would report as a miss);
        * latency sidecars no live entry references (crashed archival
          re-puts, removed entries);
        * staging temp files left behind by writers that died before
          their atomic rename.

        Live entries are untouched and byte-identical afterwards.
        ``dry_run`` reports what would be removed without deleting.
        Like every store operation, concurrent readers are safe (a
        vanished entry is a miss); run it without concurrent *writers*,
        whose in-flight temp files would look abandoned.
        """
        report = GcReport(dry_run=dry_run)
        # One parse per entry: liveness and whether it references its
        # sidecar are decided together, so the orphan pass below never
        # re-reads entry JSON.
        wants_sidecar: Dict[Path, bool] = {}
        removed_sidecars: set = set()
        for path in sorted(self.cells_dir.glob("*/*.json")):
            references = self._entry_is_live(path)
            if references is not None:
                wants_sidecar[path] = references
                report.live += 1
            else:
                report.removed_stale.append(path)
                if not dry_run:
                    path.unlink(missing_ok=True)
                sidecar = self._sidecar_path(path)
                if sidecar.exists():
                    removed_sidecars.add(sidecar)
                    if not dry_run:
                        sidecar.unlink(missing_ok=True)
        for sidecar in sorted(self.cells_dir.glob("*/*.lat")):
            if sidecar in removed_sidecars:
                continue
            if not wants_sidecar.get(sidecar.with_suffix(".json"), False):
                removed_sidecars.add(sidecar)
                if not dry_run:
                    sidecar.unlink(missing_ok=True)
        report.removed_sidecars = sorted(removed_sidecars)
        candidates = [p for p in self.root.glob(".*")] \
            + [p for p in self.cells_dir.rglob(".*")]
        for temp in sorted(set(candidates)):
            # Only this store's own staging pattern
            # (".<target-name>.<rand>", see _atomic_write_bytes) — never
            # unrelated hidden files a user or NFS put beside the store
            # (.gitignore, .nfsXXXX silly-renames of open handles).
            if temp.is_file() and self._is_staging_temp(temp.name):
                report.removed_temp_files.append(temp)
                if not dry_run:
                    temp.unlink(missing_ok=True)
        return report

    def compact(self, dry_run: bool = False) -> "GcReport":
        """:meth:`gc`, then drop shard directories gc left empty."""
        report = self.gc(dry_run=dry_run)
        for shard in sorted(self.cells_dir.iterdir()):
            if not shard.is_dir():
                continue
            doomed = {p for p in (report.removed_stale
                                  + report.removed_sidecars
                                  + report.removed_temp_files)
                      if p.parent == shard}
            try:
                empty = not any(p for p in shard.iterdir()
                                if p not in doomed)
            except OSError:
                continue
            if empty:
                report.removed_dirs.append(shard)
                if not dry_run:
                    try:
                        shard.rmdir()
                    except OSError:
                        # Concurrently repopulated — leave it.
                        report.removed_dirs.pop()
        return report

    # -- merging ------------------------------------------------------------

    def merge_from(self, source: Union["ResultStore", str, Path],
                   dry_run: bool = False) -> "MergeReport":
        """Fold another store's entries into this one, audited.

        The write-back half of a distributed sweep
        (:mod:`repro.sim.fabric`): each daemon accumulates results in
        its own ``--store``; this folds them back together.  File-level
        by digest filename — no device models are built, so stores can
        be merged on a machine that cannot even run the simulations.

        Per source entry (sidecar copied before entry, same atomicity
        as ``put``):

        * digest absent here → copied (``merged``);
        * present and byte-equivalent → skipped (``already_present``);
          if the source additionally carries a latency sidecar our
          archival entry lacks, the richer entry wins (``upgraded``);
        * present but torn/unreadable here → replaced
          (``replaced_torn``);
        * present with a *different* task/stats payload → **conflict**:
          never copied, listed in ``conflicts`` for the caller to
          refuse (same digest + different payload means divergent
          simulator builds wrote the two stores);
        * unreadable or torn in the *source* → skipped and counted.

        ``dry_run`` reports without writing.  Safe against concurrent
        readers of this store (atomic replace); like ``gc``, do not run
        it against a store another process is actively writing.
        """
        if not isinstance(source, ResultStore):
            source = ResultStore(source)
        report = MergeReport(dry_run=dry_run, source=str(source.root))
        for src_path in sorted(source.cells_dir.glob("*/*.json")):
            digest = src_path.stem
            src = self._readable_entry(src_path)
            if src is None:
                report.skipped_unreadable.append(src_path)
                continue
            src_entry, src_blob = src
            dst_path = self._digest_path(digest)
            dst = self._readable_entry(dst_path) \
                if dst_path.exists() else None
            if dst is not None:
                dst_entry = dst[0]
                if (self._comparable(src_entry)
                        != self._comparable(dst_entry)):
                    report.conflicts.append(digest)
                    continue
                src_count = src_entry.get("latencies_count")
                if (src_count is None
                        or dst_entry.get("latencies_count") is not None):
                    report.already_present += 1
                    continue
                # Same payload, but the source carries the per-request
                # sidecar our archival entry dropped: take the richer
                # one.
                report.upgraded.append(dst_path)
            elif dst_path.exists():
                report.replaced_torn.append(dst_path)
            else:
                report.merged.append(dst_path)
            if dry_run:
                continue
            count = src_entry.get("latencies_count")
            if count is not None:
                self._atomic_write_bytes(
                    self._sidecar_path(dst_path),
                    source._sidecar_path(src_path).read_bytes())
            self._atomic_write_bytes(dst_path, src_blob)
            if count is None:
                self._sidecar_path(dst_path).unlink(missing_ok=True)
        return report

    def _readable_entry(self, path: Path) \
            -> Optional[Tuple[Dict[str, Any], bytes]]:
        """Parsed entry + raw bytes, or ``None`` if torn/unreadable
        (mis-shaped JSON, or a latency sidecar missing/size-mismatched).
        """
        try:
            blob = path.read_bytes()
            entry = json.loads(blob)
            if (not isinstance(entry, dict)
                    or not isinstance(entry.get("task"), dict)
                    or "stats" not in entry):
                return None
            count = entry.get("latencies_count")
            if count is not None:
                sidecar = self._sidecar_path(path)
                if sidecar.stat().st_size != 8 * count:
                    return None
            return entry, blob
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            return None

    @staticmethod
    def _comparable(entry: Dict[str, Any]) -> Dict[str, Any]:
        """The digest-collision comparison payload: everything except
        the sidecar bookkeeping (an archival and a latency-bearing
        entry for the same cell are *equivalent*, not conflicting)."""
        return {key: value for key, value in entry.items()
                if key != "latencies_count"}

    def _entry_is_live(self, path: Path) -> Optional[bool]:
        """Liveness of one entry, decided in a single parse.

        ``None`` — dead: ``get`` could never serve it again (unreadable,
        mis-shaped, stale digest, torn sidecar).  Otherwise live, and
        the bool says whether the entry references a latency sidecar
        (``False`` = archival entry, its ``.lat`` is an orphan).
        """
        try:
            entry = json.loads(path.read_text())
            task_payload = entry["task"]
            if (not isinstance(task_payload, dict)
                    or set(task_payload) - set(TASK_FIELDS)):
                return None
            task = EvalTask(**task_payload)
            if task_digest(task) != path.stem:
                return None
            count = entry.get("latencies_count")
            if count is not None:
                sidecar = self._sidecar_path(path)
                if sidecar.stat().st_size != 8 * count:
                    return None
            return count is not None
        except (ReproError, OSError, json.JSONDecodeError, KeyError,
                TypeError, ValueError):
            # Unreadable, mis-shaped, or addressing a model this build
            # no longer knows: nothing can ever serve it again.
            return None

    @staticmethod
    def _is_staging_temp(name: str) -> bool:
        """Matches ``_atomic_write_bytes``'s ``.<target>.<rand>`` names,
        where the target is an entry, sidecar or metadata file."""
        return name.startswith(".") and (".json." in name
                                         or ".lat." in name)

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _sidecar_path(entry_path: Path) -> Path:
        return entry_path.with_suffix(".lat")

    def _entry_stats(self, entry: Dict[str, Any], path: Path) -> SimStats:
        payload = entry["stats"]
        count = entry.get("latencies_count")
        if count is not None:
            blob = self._sidecar_path(path).read_bytes()
            if len(blob) != 8 * count:
                raise ValueError("torn latency sidecar")
            # With the raw samples restored the fixed-bin summary is
            # redundant — drop it so a loaded entry compares equal to a
            # freshly computed one (the warm/cold bit-identity pins).
            payload = dict(payload, latencies_ns=_unpack_latencies(blob),
                           latency_summary=None)
        return SimStats.from_dict(payload)

    @classmethod
    def _atomic_write(cls, path: Path, payload: Dict[str, Any]) -> None:
        cls._atomic_write_bytes(path, json.dumps(payload).encode("utf-8"))

    @staticmethod
    def _atomic_write_bytes(path: Path, blob: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, prefix=f".{path.name}.", delete=False)
        try:
            with handle:
                handle.write(blob)
            # NamedTemporaryFile creates 0600; restore umask-derived
            # permissions so the store stays rsync/NFS-shareable.
            os.chmod(handle.name, 0o666 & ~_current_umask())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
