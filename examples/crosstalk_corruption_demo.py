#!/usr/bin/env python
"""Crosstalk corruption demo (the Fig. 2 experiment, interactive).

Stores a synthetic image in a COSMOS-style crossbar at 4 bits/cell,
performs writes to adjoining rows, and renders before/after as ASCII art
so the corruption is visible, along with the quantitative damage report.
Then repeats the writes against COMET's isolated cells (nothing happens).

Usage: python examples/crosstalk_corruption_demo.py
"""

import numpy as np

from repro.exp.fig2 import run as run_fig2
from repro.exp.fig2 import synthetic_image
from repro.photonics import CrossbarCrosstalkModel

ASCII_RAMP = " .:-=+*#%@"


def render(levels: np.ndarray, max_level: int) -> str:
    """Coarse ASCII rendering of a level array (subsampled 2x)."""
    sub = levels[::2, ::2]
    chars = []
    for row in sub:
        chars.append("".join(
            ASCII_RAMP[int(v / max_level * (len(ASCII_RAMP) - 1))]
            for v in row
        ))
    return "\n".join(chars)


def main() -> None:
    levels = 16
    spacing = 1.0 / (levels - 1)
    image = synthetic_image(64, 64, levels)
    fractions = image * spacing

    model = CrossbarCrosstalkModel()
    write_rows = [12, 25, 38, 51]
    after = model.corrupt_after_writes(fractions, write_rows)
    after_levels = np.clip(np.round(after / spacing), 0, levels - 1).astype(int)

    print("Original (stored in the crossbar):")
    print(render(image, levels - 1))
    print("\nAfter 4 writes to adjoining rows (crossbar, -18 dB crosstalk):")
    print(render(after_levels, levels - 1))

    result = run_fig2()
    print(f"\nDamage: {result.corrupted_cells} cells "
          f"({result.corrupted_fraction:.1%}) decode to the wrong level; "
          f"each adjacent write shifts a victim by "
          f"{result.per_write_shift:.3f} crystalline fraction "
          f"(paper: ~0.08 = more than one 4-bit level).")
    print("COMET's MR-gated cells are isolated: the same writes corrupt "
          f"{result.comet_corrupted_cells} cells.")


if __name__ == "__main__":
    main()
