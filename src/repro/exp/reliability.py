"""Reliability envelope — the extension study (not a paper figure).

Collects the four adopter-facing reliability analyses in one runner:
thermal write disturb, transmission-drift retention, endurance with
Start-Gap wear leveling, and WDM addressability.  See DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..arch.endurance import EnduranceModel, StartGapWearLeveler
from ..device.drift import TEN_YEARS_S, TransmissionDriftModel
from ..device.mlc import MultiLevelCell
from ..device.thermal_crosstalk import comet_write_disturb_report
from ..errors import ConfigError
from ..photonics.wdm import comet_wavelength_plan
from .report import print_table


@dataclass
class ReliabilityResult:
    disturb: Dict[str, object]
    retention_ok_by_bits: Dict[int, bool]
    lifetime_years_per_channel: float
    leveling_efficiency: float
    leveling_overhead: float
    wdm_feasible_by_count: Dict[int, bool]

    @property
    def envelope_holds(self) -> bool:
        """Every reliability requirement of the b=4 design point."""
        return (bool(self.disturb["comet_disturb_free"])
                and self.retention_ok_by_bits[4]
                and self.lifetime_years_per_channel > 40.0
                and self.wdm_feasible_by_count[256])


def run() -> ReliabilityResult:
    drift = TransmissionDriftModel()
    retention = {bits: drift.retention_meets_spec(MultiLevelCell(bits),
                                                  TEN_YEARS_S)
                 for bits in (1, 2, 4, 5)}

    endurance = EnduranceModel()
    leveler = StartGapWearLeveler(rows=512, gap_move_interval=100)
    for _ in range(5_000):
        leveler.record_write()

    wdm_feasible = {}
    for count in (256, 512, 1024):
        try:
            comet_wavelength_plan(count)
            wdm_feasible[count] = True
        except ConfigError:
            wdm_feasible[count] = False

    return ReliabilityResult(
        disturb=comet_write_disturb_report(),
        retention_ok_by_bits=retention,
        lifetime_years_per_channel=endurance.lifetime_years(3.0 / 8),
        leveling_efficiency=leveler.leveling_efficiency(),
        leveling_overhead=leveler.write_overhead(),
        wdm_feasible_by_count=wdm_feasible,
    )


def main() -> ReliabilityResult:
    result = run()
    print_table(
        ["check", "value"],
        [
            ["thermal disturb-free at COMET pitch",
             str(result.disturb["comet_disturb_free"])],
            ["minimum safe pitch",
             f"{result.disturb['minimum_safe_pitch_m'] * 1e6:.2f} um"],
            ["10-year retention b=4 / b=5",
             f"{result.retention_ok_by_bits[4]} / "
             f"{result.retention_ok_by_bits[5]}"],
            ["per-channel lifetime (Fig. 9 write load)",
             f"{result.lifetime_years_per_channel:.0f} years"],
            ["Start-Gap efficiency / overhead",
             f"{result.leveling_efficiency:.2f} / "
             f"{result.leveling_overhead:.1%}"],
            ["WDM feasible 256 / 512 / 1024 wavelengths",
             " / ".join(str(result.wdm_feasible_by_count[c])
                        for c in (256, 512, 1024))],
            ["full envelope holds", str(result.envelope_holds)],
        ],
        title="Reliability envelope (extension study)",
    )
    return result


if __name__ == "__main__":
    main()
