"""Fig. 3 — n and kappa of GST, GSST and Sb2Se3 across the C-band.

The figure that drives material selection: GST shows the largest
refractive-index contrast *and* a strong crystalline extinction, so it
wins the Section III.A figure of merit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..materials import MATERIAL_NAMES, get_material
from .report import print_table


@dataclass
class Fig3Result:
    """Dispersion series per material, plus the selection ranking."""

    wavelengths_m: np.ndarray
    #: series[material][state] -> (n array, kappa array)
    series: Dict[str, Dict[str, tuple]]
    figure_of_merit: Dict[str, float]

    @property
    def selected_material(self) -> str:
        return max(self.figure_of_merit, key=self.figure_of_merit.get)


def run(points: int = 8) -> Fig3Result:
    """Compute the Fig. 3 dispersion series."""
    wavelengths = np.linspace(1530e-9, 1565e-9, points)
    series: Dict[str, Dict[str, tuple]] = {}
    fom: Dict[str, float] = {}
    for name in MATERIAL_NAMES:
        material = get_material(name)
        n_a, k_a = material.amorphous.nk(wavelengths)
        n_c, k_c = material.crystalline.nk(wavelengths)
        series[name] = {
            "amorphous": (n_a, k_a),
            "crystalline": (n_c, k_c),
        }
        fom[name] = material.figure_of_merit()
    return Fig3Result(wavelengths_m=wavelengths, series=series,
                      figure_of_merit=fom)


def main() -> Fig3Result:
    result = run()
    rows: List[list] = []
    for i, wl in enumerate(result.wavelengths_m):
        for name in MATERIAL_NAMES:
            n_a, k_a = result.series[name]["amorphous"]
            n_c, k_c = result.series[name]["crystalline"]
            rows.append([f"{wl * 1e9:.1f}", name,
                         f"{n_a[i]:.3f}", f"{k_a[i]:.4f}",
                         f"{n_c[i]:.3f}", f"{k_c[i]:.4f}"])
    print_table(
        ["lambda (nm)", "material", "n_amor", "k_amor", "n_cryst", "k_cryst"],
        rows, title="Fig. 3 — PCM dispersion across the C-band",
    )
    fom_rows = [[name, f"{fom:.4f}"]
                for name, fom in sorted(result.figure_of_merit.items(),
                                        key=lambda kv: -kv[1])]
    print_table(["material", "contrast FOM"], fom_rows,
                title=f"Selection (paper picks GST): {result.selected_material}")
    return result


if __name__ == "__main__":
    main()
