"""Zero-copy shared-memory trace plane + persistent worker pool."""

import pickle

import numpy as np
import pytest

from repro.sim import engine
from repro.sim.engine import (EvalTask, clear_device_caches, evaluate_cell,
                              run_evaluation, shutdown_worker_pool)
from repro.sim.tracegen import (attach_trace_arrays, cached_trace_arrays,
                                clear_trace_plane, share_trace_arrays,
                                trace_plane_stats)


@pytest.fixture(autouse=True)
def clean_plane():
    clear_trace_plane()
    yield
    clear_trace_plane()
    shutdown_worker_pool()


class TestShareAttach:
    def test_descriptor_is_tiny_and_picklable(self):
        descriptor = share_trace_arrays("mcf", 256, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        blob = pickle.dumps(descriptor)
        assert len(blob) < 512
        assert pickle.loads(blob) == descriptor

    def test_share_is_idempotent_per_key(self):
        first = share_trace_arrays("mcf", 256, 1)
        if first is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        assert share_trace_arrays("mcf", 256, 1) is first \
            or share_trace_arrays("mcf", 256, 1) == first
        assert trace_plane_stats()["owned_segments"] == 1

    def test_attached_columns_match_generated(self):
        descriptor = share_trace_arrays("lbm", 300, 7)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        local = cached_trace_arrays("lbm", 300, 7)
        attached = attach_trace_arrays(descriptor)
        assert np.array_equal(attached.addresses, local.addresses)
        assert np.array_equal(attached.is_read, local.is_read)
        assert np.array_equal(attached.arrivals_ns, local.arrivals_ns)
        assert attached.line_bytes == local.line_bytes

    def test_mixed_workload_thread_ids_survive(self):
        descriptor = share_trace_arrays("mix_mcf_lbm", 120, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        assert descriptor.has_thread_ids
        local = cached_trace_arrays("mix_mcf_lbm", 120, 1)
        attached = attach_trace_arrays(descriptor)
        assert np.array_equal(attached.thread_ids, local.thread_ids)

    def test_owner_attach_serves_source_arrays(self):
        """The publishing process never maps its own segment twice."""
        descriptor = share_trace_arrays("gcc", 200, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        assert attach_trace_arrays(descriptor) \
            is cached_trace_arrays("gcc", 200, 1)

    def test_vanished_segment_regenerates_locally(self):
        """Correctness never depends on the plane: a stale descriptor
        (creator unlinked the segment) degrades to local generation."""
        descriptor = share_trace_arrays("gcc", 200, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        clear_trace_plane()
        trace = attach_trace_arrays(descriptor)
        local = cached_trace_arrays("gcc", 200, 1)
        assert np.array_equal(trace.arrivals_ns, local.arrivals_ns)

    def test_clear_unlinks_owned_segments(self):
        descriptor = share_trace_arrays("gcc", 200, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        clear_trace_plane()
        assert trace_plane_stats() == {"owned_segments": 0,
                                       "owned_bytes": 0,
                                       "attached_segments": 0}
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=descriptor.shm_name)

    def test_evaluate_cell_accepts_descriptor(self):
        task = EvalTask("COMET", "gcc", 300, 1)
        descriptor = share_trace_arrays("gcc", 300, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        assert evaluate_cell(task, descriptor).to_dict() \
            == evaluate_cell(task).to_dict()

    def test_adopted_descriptor_serves_single_arg_calls(self):
        """The fan-out path adopts descriptors out of band, so
        replacement/legacy single-argument evaluate_cell implementations
        keep working (the pool only ever calls evaluate_cell(task))."""
        descriptor = share_trace_arrays("gcc", 300, 1)
        if descriptor is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        engine.adopt_trace_descriptor(descriptor)
        task = EvalTask("COMET", "gcc", 300, 1)
        assert engine._ADOPTED_TRACES[descriptor.key] is not None
        assert evaluate_cell(task).to_dict() \
            == engine.evaluate_cell_checked(task).to_dict()

    def test_owned_segments_are_bounded(self):
        """Publishing past MAX_OWNED_SEGMENTS evicts the oldest owned
        segment (unlinked), so /dev/shm usage stays bounded in
        long-lived processes."""
        from repro.sim import tracegen

        first = share_trace_arrays("gcc", 40, 1)
        if first is None:
            pytest.skip("no POSIX shared memory in this sandbox")
        for seed in range(2, tracegen.MAX_OWNED_SEGMENTS + 2):
            share_trace_arrays("gcc", 40, seed)
        stats = trace_plane_stats()
        assert stats["owned_segments"] == tracegen.MAX_OWNED_SEGMENTS
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=first.shm_name)
        # A stale descriptor still resolves (local regeneration).
        trace = attach_trace_arrays(first)
        assert len(trace) == 40


class TestPersistentPool:
    """The fork pool and its trace plane, pinned explicitly with
    ``pool="fork"`` — the auto default resolves to the thread pool
    wherever the compiled twin is available (see TestThreadPool)."""

    def test_pool_survives_across_evaluations(self):
        kwargs = dict(architectures=("EPCM-MM",), workloads=("gcc", "mcf"),
                      num_requests=200, workers=2, pool="fork")
        run_evaluation(**kwargs)
        pool = engine._WORKER_POOL
        if pool is None:
            pytest.skip("process pools unavailable in this sandbox")
        run_evaluation(architectures=("COMET",), workloads=("mcf", "lbm"),
                       num_requests=200, workers=2, pool="fork")
        assert engine._WORKER_POOL is pool

    def test_different_worker_count_rebuilds(self):
        kwargs = dict(architectures=("EPCM-MM",), workloads=("gcc", "mcf"),
                      num_requests=200, pool="fork")
        run_evaluation(workers=2, **kwargs)
        pool = engine._WORKER_POOL
        if pool is None:
            pytest.skip("process pools unavailable in this sandbox")
        run_evaluation(workers=3, **kwargs)
        assert engine._WORKER_POOL is not None
        assert engine._WORKER_POOL is not pool
        assert engine._WORKER_POOL[1] == 3

    def test_parallel_with_plane_matches_serial(self):
        kwargs = dict(architectures=("COMET", "COSMOS", "3D_DDR4"),
                      workloads=("mcf", "checkpoint"), num_requests=400)
        serial = run_evaluation(workers=1, **kwargs)
        parallel = run_evaluation(workers=2, pool="fork", **kwargs)
        for arch, per_workload in serial.items():
            for workload, stats in per_workload.items():
                assert parallel[arch][workload].to_dict() == stats.to_dict()

    def test_fork_pool_merges_worker_dispatch_counters(self):
        """Workers dispatch in their own process; the parent must see
        the merged per-cell counter deltas (the pre-pool-abstraction
        engine reported zero kernel hits for every fanned-out cell)."""
        from repro.sim import controller as controller_mod

        run_evaluation(architectures=("EPCM-MM",), workloads=("gcc", "mcf"),
                       num_requests=200, workers=2, pool="fork")
        if engine._WORKER_POOL is None:
            pytest.skip("process pools unavailable in this sandbox")
        controller_mod.reset_kernel_counters()
        run_evaluation(architectures=("EPCM-MM", "COMET", "COSMOS"),
                       workloads=("gcc", "mcf"), num_requests=200,
                       workers=2, pool="fork")
        counters = controller_mod.kernel_counters()
        assert counters["fast"] == 6
        assert counters["fast_per_bank"] == 2
        assert counters["twin_per_bank"] == 2
        assert counters["fast_shared_bus"] == 2
        assert counters["fast_global_queue"] == 2

    def test_clear_device_caches_tears_everything_down(self):
        run_evaluation(architectures=("EPCM-MM",), workloads=("gcc",),
                       num_requests=200, workers=2, pool="fork")
        share_trace_arrays("gcc", 128, 1)
        clear_device_caches()
        assert engine._WORKER_POOL is None
        assert engine._THREAD_POOL is None
        assert trace_plane_stats()["owned_segments"] == 0
        assert cached_trace_arrays.cache_info().currsize == 0

    def test_plane_can_be_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(engine.TRACE_PLANE_ENV_VAR, "0")
        shutdown_worker_pool()
        clear_trace_plane()
        results = run_evaluation(architectures=("COMET",),
                                 workloads=("gcc",), num_requests=300,
                                 workers=2, pool="fork")
        assert trace_plane_stats()["owned_segments"] == 0
        serial = run_evaluation(architectures=("COMET",),
                                workloads=("gcc",), num_requests=300,
                                workers=1)
        assert results["COMET"]["gcc"].to_dict() \
            == serial["COMET"]["gcc"].to_dict()


class TestThreadPool:
    """The thread executor: the auto default for kernel-served grids."""

    def test_auto_resolves_to_threads_with_twin(self):
        from repro.sim import _fastloop

        if not _fastloop.available():
            pytest.skip("no C toolchain in this sandbox")
        assert engine.resolve_pool() == "threads"
        assert engine.resolve_pool("fork") == "fork"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(engine.POOL_ENV_VAR, "serial")
        assert engine.resolve_pool() == "serial"
        assert engine.resolve_pool("threads") == "threads"
        monkeypatch.setenv(engine.POOL_ENV_VAR, "bogus")
        with pytest.raises(Exception):
            engine.resolve_pool()

    def test_thread_pool_persists_and_rebuilds(self):
        kwargs = dict(architectures=("EPCM-MM",), workloads=("gcc", "mcf"),
                      num_requests=200, pool="threads")
        run_evaluation(workers=2, **kwargs)
        pool = engine._THREAD_POOL
        assert pool is not None and pool[1] == 2
        run_evaluation(workers=2, **kwargs)
        assert engine._THREAD_POOL is pool
        run_evaluation(workers=3, **kwargs)
        assert engine._THREAD_POOL is not pool
        assert engine._THREAD_POOL[1] == 3

    def test_threads_bypass_the_trace_plane(self):
        clear_trace_plane()
        run_evaluation(architectures=("COMET", "EPCM-MM"),
                       workloads=("gcc",), num_requests=300, workers=2,
                       pool="threads")
        assert trace_plane_stats()["owned_segments"] == 0
