"""Memory controller: per-bank FCFS scheduling with bus and refresh.

The controller models what the paper's modified NVMain provides at the
granularity the evaluation needs:

* per-bank service with line-interleaved bank mapping (Section III.C),
* open-row tracking for DRAM devices (row hit vs miss timing),
* a shared data bus for electrical devices — photonic devices carry each
  bank on its own MDM mode, so their bursts do not contend,
* periodic all-bank refresh windows for DRAM,
* per-operation energy, gated active power (photonic laser/SOA only burn
  while serving), and background power.

Scheduling is FCFS per bank with banks progressing independently — the
bank-level parallelism that dominates these comparisons.  (NVMain's
FR-FCFS reordering mainly improves DRAM row hits; our traces model
locality directly, so FCFS keeps the comparison symmetric and simple.)

Three execution tiers share one set of semantics:

* ``run`` / ``run_arrays`` — everything without a cross-request timing
  dependency (bank/row mapping, open-row hit detection, array service
  times, per-op energy) is precomputed with numpy in one vectorized
  pass; the sequential recurrence (queue admission, bank free times,
  bus ordering, refresh windows) runs as a slim scalar loop specialized
  per device class (refresh+bus, bus-only, contention-free).
* ``run_fast`` — the fast-path scheduler *kernels*: three dispatch
  classes replace the per-request Python loop.  Contention-free devices
  with per-bank transaction queues (COMET-class photonic parts) compute
  the whole schedule as independent per-bank chains via grouped
  ``np.cumsum`` / ``np.maximum.accumulate`` prefix passes — the
  recurrence genuinely decomposes, so numpy folds cover it.  Shared-bus
  devices (DRAM, electrical PCM) and global-FIFO contention-free
  devices (COSMOS) do *not* decompose: the bus serializes every burst
  through its predecessor while bank conflicts couple requests a few
  indices apart, and which term binds alternates every couple of
  requests — an irreducibly sequential chain no exact prefix fold
  covers (re-associating the float additions would move results off the
  goldens).  Their kernel is the *compiled exact twin*
  (:mod:`._fastloop`): the same IEEE-754 operations in the same order
  as the scalar loop, compiled from C at first use and dispatched via
  ``ctypes``.  Cells whose device class no kernel covers, or running
  where no C toolchain exists, fall back to the scalar recurrence
  automatically; engaged or not, the results are bit-identical to
  ``run``.
* ``run_reference`` — the straightforward per-request object loop, kept
  as the semantics oracle for equivalence tests and benchmarks.

**Transaction queues.**  ``queue_depth`` models NVMain's finite
transaction queue: at most that many requests are in flight; when the
queue is full, later trace arrivals stall (throttled open loop), which
is how the real simulator stretches execution time on slow memories
instead of growing an unbounded queue.  Devices whose controller
centralizes transactions (shared-bus DRAM/EPCM, COSMOS's subtractive
read-erase-read orchestration) see one *global* FIFO.  COMET's
cross-layer design gives every bank its own MDM mode and an independent
scheduler (Section III.C), so its queue decomposes per bank
(``MemoryDeviceModel.per_bank_queues``): each bank admits against its
own ``queue_depth / banks`` slice, admission never couples banks, and
latency is still measured from queue admission.  When a per-bank queue
would bind *service* (an admission stamp landing after the chain start —
only possible for pathological depth overrides), the cell deterministically
reverts to the global-queue model, in every tier alike.

**Chain arithmetic.**  For a per-bank chain the recurrence
``start = max(admitted, release_prev)``, ``release = start + occupancy``
is evaluated in *deadline space*: each bank tracks its occupancy prefix
sum ``C`` and the running peak ``M = max(admitted_k - C_{k-1})``, so
``start_k = M_k + C_{k-1}`` and ``release_k = M_k + C_k``.  The scalar
loops and the vectorized kernel perform these exact floating-point
operations in the same order (``np.cumsum`` / ``np.maximum.accumulate``
are sequential left folds), which is what makes the kernel bit-identical
to the scalar paths rather than merely close.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from . import _fastloop
from .devices import MemoryDeviceModel
from .request import MemRequest
from .stats import SimStats
from .tracegen import TraceArrays

#: Transaction-queue entries each channel contributes (NVMain-style
#: per-channel queues; the controller sees their sum — or, for
#: per-bank-queue devices, the per-bank slice of that sum).
QUEUE_DEPTH_PER_CHANNEL = 8

#: The fast-path kernel dispatch classes, in dispatch-priority order.
KERNEL_CLASSES: Tuple[str, ...] = ("per_bank", "shared_bus", "global_queue")

#: Process-wide fast-path dispatch counters.  Every auto-dispatched
#: schedule ends in exactly one *terminal* outcome: a kernel class hit
#: (``fast_per_bank`` / ``fast_shared_bus`` / ``fast_global_queue``;
#: ``fast`` is their running total, the pre-PR-6 aggregate) or a scalar
#: fallback attributed to its reason — ``fallback_device`` (no enabled
#: kernel class covers the device) or ``fallback_toolchain`` (the cell's
#: kernel is the compiled exact twin but no C toolchain is available,
#: so the scalar recurrence served it).
#: ``fallback_admission`` is an *event* marker, not a terminal outcome:
#: a per-bank admission stamp bound service, so the cell reverted to the
#: global-queue model — whose own terminal counter then fires.  Read via
#: :func:`kernel_counters`; the ``--profile`` CLI, ``/stats.kernel`` and
#: the kernel bench report the hit rate.
#: ``twin_per_bank`` is an *attribution* sub-counter, not a terminal
#: outcome: of the ``fast_per_bank`` hits, how many the compiled exact
#: twin served (the numpy prefix-fold kernel serves the rest when no C
#: toolchain exists).  It is deliberately not ``fast_``-prefixed so the
#: schema-driven per-class summary keeps counting each cell once.
#: Counters are process-wide and thread-safe (every mutation holds
#: ``_COUNTER_LOCK``); under fork fan-out each worker keeps its own and
#: the engine merges the deltas back via :func:`merge_kernel_counters`.
# staticcheck: guarded-by[_COUNTER_LOCK, reads]
_KERNEL_COUNTERS = {
    "fast": 0,
    "fast_per_bank": 0,
    "fast_shared_bus": 0,
    "fast_global_queue": 0,
    "twin_per_bank": 0,
    "fallback_device": 0,
    "fallback_admission": 0,
    "fallback_toolchain": 0,
}

#: Guards every read-modify-write of ``_KERNEL_COUNTERS``: the thread
#: pool dispatches schedules concurrently, and ``+=`` on a dict entry
#: is not atomic under free-threaded execution.
_COUNTER_LOCK = threading.Lock()

# A fork while a pool thread holds the counter lock would leave the
# child's inherited copy locked forever; give the child a fresh one.
os.register_at_fork(
    after_in_child=lambda: globals().update(
        _COUNTER_LOCK=threading.Lock()))

#: Kernel classes the dispatcher must not engage (process-wide): the
#: kernel bench reconstructs the PR 5 baseline by disabling the
#: shared-bus/global-queue classes, and the forced-fallback equivalence
#: tests pin that a disabled class is bit-identical to the scalar tier.
_DISABLED_FAST_CLASSES: frozenset = frozenset()


def kernel_counters() -> Dict[str, int]:
    """Snapshot of the fast-path dispatch counters (this process)."""
    with _COUNTER_LOCK:
        return dict(_KERNEL_COUNTERS)


def reset_kernel_counters() -> None:
    """Zero the fast-path dispatch counters (tests, benchmarks)."""
    with _COUNTER_LOCK:
        for key in _KERNEL_COUNTERS:
            _KERNEL_COUNTERS[key] = 0


def merge_kernel_counters(delta: Dict[str, int]) -> None:
    """Fold a per-worker counter delta into this process's counters.

    The fork pool's workers dispatch schedules in their own processes;
    each task returns ``kernel_counters()`` deltas alongside its result
    and the parent merges them here, so ``--profile`` and the server's
    ``/stats.kernel`` report the whole grid instead of only the cells
    the parent scheduled itself.  Unknown keys are accepted (a newer
    worker may report counters an older parent doesn't know)."""
    with _COUNTER_LOCK:
        for key, value in delta.items():
            if value:
                _KERNEL_COUNTERS[key] = _KERNEL_COUNTERS.get(key, 0) + value


def _count(key: str) -> None:
    with _COUNTER_LOCK:
        _KERNEL_COUNTERS[key] += 1


def set_disabled_fast_classes(classes) -> frozenset:
    """Disable fast-path kernel classes process-wide; returns the
    previous set so callers can restore it (``try/finally``).

    Disabled classes take the ``fallback_device`` dispatch path —
    results are bit-identical, only the execution tier changes."""
    global _DISABLED_FAST_CLASSES
    requested = frozenset(classes)
    unknown = requested - set(KERNEL_CLASSES)
    if unknown:
        raise SimulationError(
            f"unknown kernel classes {sorted(unknown)}; "
            f"known: {list(KERNEL_CLASSES)}")
    previous = _DISABLED_FAST_CLASSES
    _DISABLED_FAST_CLASSES = requested
    return previous


def disabled_fast_classes() -> frozenset:
    """The kernel classes currently forced onto the scalar tier."""
    return _DISABLED_FAST_CLASSES


def _count_fast(kernel_class: str, compiled: bool = False) -> None:
    with _COUNTER_LOCK:
        _KERNEL_COUNTERS["fast"] += 1
        _KERNEL_COUNTERS["fast_" + kernel_class] += 1
        if compiled and kernel_class == "per_bank":
            _KERNEL_COUNTERS["twin_per_bank"] += 1


@dataclass
class _BankState:
    free_at_ns: float = 0.0
    open_row: Optional[int] = None
    busy_ns: float = 0.0


@dataclass(frozen=True)
class _Schedule:
    """Per-request service times plus schedule-wide aggregates."""

    admitted_ns: np.ndarray
    start_ns: np.ndarray
    finish_ns: np.ndarray
    completion_ns: np.ndarray
    busy_ns: float
    row_hits: int
    row_misses: int


class MemoryController:
    """Executes a request stream against one device model."""

    DEFAULT_QUEUE_DEPTH = 32

    def __init__(self, device: MemoryDeviceModel,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise SimulationError("queue depth must be at least 1")
        self.device = device
        self.queue_depth = queue_depth

    @property
    def bank_queue_depth(self) -> int:
        """Per-bank transaction-queue slice for per-bank-queue devices
        (the global depth split evenly; at least one entry per bank)."""
        return max(1, self.queue_depth // self.device.banks)

    # ------------------------------------------------------------------
    # public entry points

    def run(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """Simulate all requests (must be arrival-ordered); returns stats.

        Fills each request's service fields (``start_ns``, ``finish_ns``,
        ``completion_ns``) and replaces ``arrival_ns`` with the queue
        admission time, exactly like the reference path.
        """
        return self._run_requests(requests, workload_name, fast=False)

    def run_fast(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """``run`` through the fast-path kernel (automatic fallback).

        Bit-identical to :meth:`run`; the kernel engages when the device
        is contention-free with per-bank queues and the admission
        pre-check passes, otherwise the scalar recurrence runs.
        """
        return self._run_requests(requests, workload_name, fast=True)

    def _run_requests(self, requests: List[MemRequest], workload_name: str,
                      fast: bool) -> SimStats:
        """Shared object-API body: marshal, schedule, write back."""
        if not requests:
            raise SimulationError("empty request stream")
        addresses = np.array([r.address for r in requests], dtype=np.int64)
        is_read = np.array([r.is_read for r in requests], dtype=bool)
        arrivals = np.array([r.arrival_ns for r in requests], dtype=np.float64)
        schedule = (self._schedule_auto(addresses, is_read, arrivals)
                    if fast else self._schedule(addresses, is_read, arrivals))
        return self._finish_run(requests, schedule, workload_name, is_read)

    def run_arrays(self, trace: TraceArrays,
                   workload_name: Optional[str] = None,
                   fast: bool = True) -> SimStats:
        """Simulate a column-store trace without materializing requests.

        The hot path of the evaluation engine: identical stats to
        ``run(trace.to_requests())``, but no per-request objects are
        created or mutated (the input arrays are read-only).  ``fast``
        routes eligible cells through the scheduler kernel (with
        automatic fallback); ``fast=False`` pins the scalar recurrence,
        which the kernel benchmark uses as its baseline.
        """
        addresses = np.asarray(trace.addresses, dtype=np.int64)
        is_read = np.asarray(trace.is_read, dtype=bool)
        arrivals = np.asarray(trace.arrivals_ns, dtype=np.float64)
        schedule = (self._schedule_auto(addresses, is_read, arrivals)
                    if fast else self._schedule(addresses, is_read, arrivals))
        return self._stats(
            workload_name if workload_name is not None else trace.name,
            is_read, trace.total_bytes, schedule,
        )

    def _finish_run(self, requests: List[MemRequest], schedule: _Schedule,
                    workload_name: str, is_read: np.ndarray) -> SimStats:
        """Write a schedule back onto the request objects; build stats."""
        starts = schedule.start_ns.tolist()
        finishes = schedule.finish_ns.tolist()
        completions = schedule.completion_ns.tolist()
        admitted = schedule.admitted_ns.tolist()
        for i, request in enumerate(requests):
            request.start_ns = starts[i]
            request.finish_ns = finishes[i]
            request.completion_ns = completions[i]
            # Latency is measured from queue admission (NVMain convention):
            # time stalled outside a full transaction queue is application
            # back-pressure, not memory latency.
            request.arrival_ns = admitted[i]
        total_bytes = sum(r.size_bytes for r in requests)
        return self._stats(workload_name, is_read, total_bytes, schedule)

    # ------------------------------------------------------------------
    # schedule dispatch

    def _check_sorted(self, arrivals: np.ndarray) -> None:
        if len(arrivals) == 0:
            raise SimulationError("empty request stream")
        if np.any(np.diff(arrivals) < 0.0):
            raise SimulationError("requests must be sorted by arrival")

    def _schedule_auto(self, addresses: np.ndarray, is_read: np.ndarray,
                       arrivals: np.ndarray) -> _Schedule:
        """Kernel when eligible, scalar recurrence otherwise."""
        device = self.device
        kernel_class = device.fast_path_class
        if kernel_class is None or kernel_class in _DISABLED_FAST_CLASSES:
            _count("fallback_device")
            return self._schedule(addresses, is_read, arrivals)
        self._check_sorted(arrivals)
        bank_idx, array_ns, row_hits, row_misses = \
            self._precompute(addresses, is_read)
        if kernel_class == "per_bank":
            # Compiled twin first (GIL-releasing; what the thread pool
            # scales on), numpy prefix-fold kernel when no C toolchain
            # exists — either way the cell is a per-bank fast hit.
            result = self._kernel_per_bank_twin(bank_idx, array_ns,
                                                arrivals)
            if result is not None \
                    and result is not _fastloop.ADMISSION_BINDS:
                _count_fast("per_bank", compiled=True)
                return self._finalize(*result, row_hits=row_hits,
                                      row_misses=row_misses)
            if result is None:
                schedule = self._kernel(bank_idx, array_ns, arrivals,
                                        row_hits, row_misses)
                if schedule is not None:
                    _count_fast("per_bank")
                    return schedule
            # A per-bank admission stamp would land after its chain
            # start: the cell reverts to the global-queue model — served
            # by the global-queue kernel when that class is enabled, by
            # the scalar loop otherwise.
            _count("fallback_admission")
            return self._run_global_queue(bank_idx, array_ns, arrivals,
                                          row_hits, row_misses)
        if kernel_class == "shared_bus":
            result = self._kernel_shared_bus(bank_idx, array_ns, arrivals,
                                             is_read)
            if result is not None:
                _count_fast("shared_bus")
                return self._finalize(*result, row_hits=row_hits,
                                      row_misses=row_misses)
            _count("fallback_toolchain")
            if device.refresh is not None:
                result = self._recurrence_refresh_bus(
                    bank_idx, array_ns, arrivals, is_read)
            else:
                result = self._recurrence_bus(
                    bank_idx, array_ns, arrivals, is_read)
            return self._finalize(*result, row_hits=row_hits,
                                  row_misses=row_misses)
        return self._run_global_queue(bank_idx, array_ns, arrivals,
                                      row_hits, row_misses)

    def _run_global_queue(self, bank_idx: np.ndarray, array_ns: np.ndarray,
                          arrivals: np.ndarray, row_hits: int,
                          row_misses: int) -> _Schedule:
        """Global-FIFO contention-free schedule, kernel-first.

        Shared by the ``global_queue`` dispatch class (COSMOS-style
        devices) and the per-bank admission fallback, which reverts the
        cell to exactly this model."""
        if "global_queue" not in _DISABLED_FAST_CLASSES:
            result = self._kernel_global_queue(bank_idx, array_ns, arrivals)
            if result is not None:
                _count_fast("global_queue")
                return self._finalize(*result, row_hits=row_hits,
                                      row_misses=row_misses)
            _count("fallback_toolchain")
        else:
            _count("fallback_device")
        return self._finalize(*self._recurrence_unshared(
            bank_idx, array_ns, arrivals),
            row_hits=row_hits, row_misses=row_misses)

    def _schedule(self, addresses: np.ndarray, is_read: np.ndarray,
                  arrivals: np.ndarray) -> _Schedule:
        """Scalar recurrence over one arrival-ordered trace, specialized
        per device class; bit-identical to the kernel where it engages."""
        self._check_sorted(arrivals)
        device = self.device
        bank_idx, array_ns, row_hits, row_misses = \
            self._precompute(addresses, is_read)
        if device.contention_free and device.per_bank_queues:
            result = self._recurrence_per_bank(bank_idx, array_ns, arrivals)
            if result is None:    # admission would bind: global queue
                result = self._recurrence_unshared(
                    bank_idx, array_ns, arrivals)
        elif device.refresh is not None and device.shared_bus:
            result = self._recurrence_refresh_bus(
                bank_idx, array_ns, arrivals, is_read)
        elif device.refresh is None and device.shared_bus:
            result = self._recurrence_bus(
                bank_idx, array_ns, arrivals, is_read)
        elif device.refresh is None:
            result = self._recurrence_unshared(bank_idx, array_ns, arrivals)
        else:    # refresh without a shared bus: no Fig. 9 device; keep
            result = self._recurrence_generic(    # the general loop
                bank_idx, array_ns, arrivals, is_read)
        return self._finalize(*result, row_hits=row_hits,
                              row_misses=row_misses)

    def _finalize(self, admitted, start, finish, busy: float,
                  row_hits: int, row_misses: int) -> _Schedule:
        finish_arr = np.asarray(finish)
        return _Schedule(
            admitted_ns=np.asarray(admitted),
            start_ns=np.asarray(start),
            finish_ns=finish_arr,
            completion_ns=finish_arr + self.device.interface_delay_ns,
            busy_ns=busy,
            row_hits=row_hits,
            row_misses=row_misses,
        )

    def _bank_sort_key(self, bank_idx: np.ndarray) -> np.ndarray:
        """Narrowest integer dtype holding every bank id: numpy's stable
        sort is a radix sort on narrow integers, an order of magnitude
        faster than int64 mergesort at grid sizes."""
        if self.device.banks < 2 ** 8:
            return bank_idx.astype(np.uint8)
        if self.device.banks < 2 ** 16:
            return bank_idx.astype(np.uint16)
        return bank_idx

    # ------------------------------------------------------------------
    # the fast-path scheduler kernel

    def _kernel(self, bank_idx: np.ndarray, array_ns: np.ndarray,
                arrivals: np.ndarray, row_hits: int,
                row_misses: int) -> Optional[_Schedule]:
        """Contention-free schedule as per-bank grouped prefix passes.

        Requests are stably grouped by bank (radix sort on a narrow
        key); within each group the deadline-space recurrence is two
        sequential-fold primitives (``np.cumsum`` over occupancies,
        ``np.maximum.accumulate`` over deadlines), so every float op
        matches the scalar twin exactly.  Admission stamps are a shifted
        ``np.maximum`` within each group.  Returns ``None`` when any
        stamp would land after its chain start (the admissibility
        check), in which case the caller falls back.
        """
        device = self.device
        n = len(arrivals)
        burst = device.data_burst_ns
        overlap = device.burst_overlaps_array
        occ = array_ns if overlap else array_ns + burst
        qd_b = self.bank_queue_depth

        sort_key = self._bank_sort_key(bank_idx)
        order = np.argsort(sort_key, kind="stable")
        sorted_banks = sort_key[order]
        sorted_arrivals = arrivals[order]
        sorted_occ = occ[order]

        bounds = np.flatnonzero(sorted_banks[1:] != sorted_banks[:-1]) + 1
        group_starts = np.concatenate(([0], bounds)).tolist()
        group_ends = np.concatenate((bounds, [n])).tolist()
        groups = list(zip(group_starts, group_ends))

        cum = np.empty(n)          # C_k: per-bank occupancy prefix sum
        cum_prev = np.empty(n)     # C_{k-1}
        peak = np.empty(n)         # M_k: running max of deadlines
        for s, e in groups:
            np.cumsum(sorted_occ[s:e], out=cum[s:e])
            cum_prev[s] = 0.0
            if e - s > 1:
                cum_prev[s + 1:e] = cum[s:e - 1]
        deadline = sorted_arrivals - cum_prev
        for s, e in groups:
            np.maximum.accumulate(deadline[s:e], out=peak[s:e])
        start_sorted = peak + cum_prev
        release_sorted = peak + cum
        finish_sorted = release_sorted + burst if overlap else release_sorted

        # Per-bank admission stamps (each bank admits against its own
        # queue slice: request k of a bank is stamped no earlier than
        # the finish of request k - qd_b of the *same* bank) and busy
        # time as the same left fold the scalar twin accumulates.
        admitted_sorted = sorted_arrivals.copy()
        delta = release_sorted - start_sorted
        busy_banks = [0.0] * device.banks
        for s, e in groups:
            if e - s > qd_b:
                stamped = admitted_sorted[s + qd_b:e]
                np.maximum(sorted_arrivals[s + qd_b:e],
                           finish_sorted[s:e - qd_b], out=stamped)
                # Admissibility: a stamp after its chain start means the
                # per-bank queue would bind service — not this kernel's
                # semantics, so the cell reverts to the global-queue loop.
                if np.any(stamped > start_sorted[s + qd_b:e]):
                    return None
            busy_banks[int(sorted_banks[s])] = float(np.cumsum(delta[s:e])[-1])

        admitted = np.empty(n)
        start = np.empty(n)
        finish = np.empty(n)
        admitted[order] = admitted_sorted
        start[order] = start_sorted
        finish[order] = finish_sorted
        return _Schedule(
            admitted_ns=admitted,
            start_ns=start,
            finish_ns=finish,
            completion_ns=finish + device.interface_delay_ns,
            busy_ns=sum(busy_banks),
            row_hits=row_hits,
            row_misses=row_misses,
        )

    # ------------------------------------------------------------------
    # the compiled exact-twin kernels (shared bus / global queue)
    #
    # The bus- and queue-coupled recurrences have no per-bank
    # decomposition: finish[i] depends on finish[i-1] through the bus
    # (or on release[lastbank(i)] a few indices back), and which term
    # binds alternates every couple of requests, so the critical path is
    # a sequential chain as long as the trace.  Exact prefix folds
    # cannot cover that without re-associating float additions, which
    # would move results off the goldens by an ulp.  The kernels below
    # therefore run the *same* scalar recurrence — identical IEEE-754
    # operations in identical order — compiled to native code
    # (:mod:`._fastloop`); bit-identity holds by construction, and when
    # no C toolchain is available they return ``None`` and the Python
    # scalar loop serves the cell instead.

    def _kernel_per_bank_twin(self, bank_idx: np.ndarray,
                              array_ns: np.ndarray, arrivals: np.ndarray):
        """Per-bank-queue schedule (COMET-class photonic parts) via the
        compiled exact twin of ``_recurrence_per_bank``.

        Returns ``(admitted, start, finish, busy)``,
        :data:`._fastloop.ADMISSION_BINDS` when an admission stamp
        binds service (the caller reverts to the global-queue model),
        or ``None`` when the toolchain is unavailable (the numpy
        prefix-fold kernel then serves the cell)."""
        device = self.device
        return _fastloop.schedule_loop(
            bank_idx, array_ns, arrivals, np.zeros(len(arrivals)),
            queue_depth=self.queue_depth, banks=device.banks,
            burst=device.data_burst_ns, shared_bus=False,
            overlap=device.burst_overlaps_array, has_refresh=False,
            interval=1.0, duration=0.0,
            per_bank=True, bank_queue_depth=self.bank_queue_depth,
        )

    def _kernel_shared_bus(self, bank_idx: np.ndarray, array_ns: np.ndarray,
                           arrivals: np.ndarray, is_read: np.ndarray):
        """Shared-bus schedule (DRAM, electrical PCM) via the compiled
        exact twin; returns ``(admitted, start, finish, busy)`` or
        ``None`` when the toolchain is unavailable."""
        device = self.device
        n = len(arrivals)
        turn = np.zeros(n)
        if n > 1:
            np.multiply(is_read[1:] != is_read[:-1],
                        device.bus_turnaround_ns, out=turn[1:])
        refresh = device.refresh
        has_ref = refresh is not None
        return _fastloop.schedule_loop(
            bank_idx, array_ns, arrivals, turn,
            queue_depth=self.queue_depth, banks=device.banks,
            burst=device.data_burst_ns, shared_bus=True,
            overlap=device.burst_overlaps_array, has_refresh=has_ref,
            interval=refresh.interval_ns if has_ref else 1.0,
            duration=refresh.duration_ns if has_ref else 0.0,
        )

    def _kernel_global_queue(self, bank_idx: np.ndarray,
                             array_ns: np.ndarray, arrivals: np.ndarray):
        """Global-FIFO contention-free schedule (COSMOS-class devices,
        per-bank admission fallbacks) via the compiled exact twin;
        returns ``(admitted, start, finish, busy)`` or ``None`` when the
        toolchain is unavailable."""
        device = self.device
        return _fastloop.schedule_loop(
            bank_idx, array_ns, arrivals, np.zeros(len(arrivals)),
            queue_depth=self.queue_depth, banks=device.banks,
            burst=device.data_burst_ns, shared_bus=False,
            overlap=device.burst_overlaps_array, has_refresh=False,
            interval=1.0, duration=0.0,
        )

    # ------------------------------------------------------------------
    # scalar recurrences (one per device class)

    def _recurrence_per_bank(self, bank_idx: np.ndarray,
                             array_ns: np.ndarray, arrivals: np.ndarray):
        """Scalar twin of the kernel: per-bank deadline-space chains.

        Returns ``None`` when a per-bank admission stamp would land
        after its chain start (same admissibility rule as the kernel);
        the caller then reruns the global-queue loop.
        """
        device = self.device
        burst = device.data_burst_ns
        overlap = device.burst_overlaps_array
        occ_l = array_ns.tolist() if overlap \
            else (array_ns + burst).tolist()
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        qd_b = self.bank_queue_depth
        cum = [0.0] * device.banks
        peak = [float("-inf")] * device.banks
        busy = [0.0] * device.banks
        finish_history: List[List[float]] = [[] for _ in range(device.banks)]
        admitted_l: List[float] = []
        start_l: List[float] = []
        finish_l: List[float] = []
        admit = admitted_l.append
        starts = start_l.append
        finishes = finish_l.append
        for arrival, bank, occupancy in zip(arrivals_l, bank_l, occ_l):
            cum_prev = cum[bank]
            deadline = arrival - cum_prev
            bank_peak = peak[bank]
            if deadline > bank_peak:
                bank_peak = deadline
                peak[bank] = deadline
            start = bank_peak + cum_prev
            cum_next = cum_prev + occupancy
            release = bank_peak + cum_next
            finish = release + burst if overlap else release
            history = finish_history[bank]
            served = len(history)
            admitted = arrival
            if served >= qd_b:
                stamp = history[served - qd_b]
                if stamp > admitted:
                    admitted = stamp
                if admitted > start:
                    return None    # queue would bind: global-queue model
            history.append(finish)
            cum[bank] = cum_next
            busy[bank] += release - start
            admit(admitted)
            starts(start)
            finishes(finish)
        return admitted_l, start_l, finish_l, sum(busy)

    def _bus_turn_penalties(self, is_read: np.ndarray) -> List[float]:
        """Per-request bus dead time: ``turnaround`` where the transfer
        direction flips from the previous request, else ``0.0``.

        Precomputing the penalty removes the direction-tracking branch
        from the bus loops; adding an exact ``0.0`` to the bus-free time
        is a float no-op, so results are unchanged bit for bit.
        """
        turn = np.zeros(len(is_read))
        if len(is_read) > 1:
            np.multiply(is_read[1:] != is_read[:-1],
                        self.device.bus_turnaround_ns, out=turn[1:])
        return turn.tolist()

    def _recurrence_bus(self, bank_idx: np.ndarray, array_ns: np.ndarray,
                        arrivals: np.ndarray, is_read: np.ndarray):
        """Global-queue recurrence with a shared bus, no refresh
        (electrical PCM)."""
        device = self.device
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        array_l = array_ns.tolist()
        turn_l = self._bus_turn_penalties(is_read)
        queue_depth = self.queue_depth
        bank_free = [0.0] * device.banks
        bank_busy = [0.0] * device.banks
        burst_ns = device.data_burst_ns
        overlap = device.burst_overlaps_array
        bus_free = 0.0
        admitted_l: List[float] = []
        start_l: List[float] = []
        finish_l: List[float] = []
        admit = admitted_l.append
        starts = start_l.append
        finishes = finish_l.append
        index = 0
        for admitted, bank, array_time, turn in zip(
                arrivals_l, bank_l, array_l, turn_l):
            if index >= queue_depth:
                # Transaction queue full until an older request finishes.
                blocked_until = finish_l[index - queue_depth]
                if blocked_until > admitted:
                    admitted = blocked_until
            start = bank_free[bank]
            if admitted > start:
                start = admitted
            burst_start = start + array_time
            bus_ready = bus_free + turn
            if bus_ready > burst_start:
                burst_start = bus_ready
            finish = burst_start + burst_ns
            bus_free = finish
            bank_release = finish
            if overlap:
                array_done = start + array_time
                bank_release = array_done if array_done > burst_start \
                    else burst_start
            bank_busy[bank] += bank_release - start
            bank_free[bank] = bank_release
            admit(admitted)
            starts(start)
            finishes(finish)
            index += 1
        return admitted_l, start_l, finish_l, sum(bank_busy)

    def _recurrence_unshared(self, bank_idx: np.ndarray,
                             array_ns: np.ndarray, arrivals: np.ndarray):
        """Global-queue recurrence with neither bus nor refresh (COSMOS's
        unshared MDM links, per-bank-admission fallback cells).

        With no bus the burst starts the moment the array access
        completes, so the overlap release is the burst start itself.
        """
        device = self.device
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        array_l = array_ns.tolist()
        queue_depth = self.queue_depth
        bank_free = [0.0] * device.banks
        bank_busy = [0.0] * device.banks
        burst_ns = device.data_burst_ns
        overlap = device.burst_overlaps_array
        admitted_l: List[float] = []
        start_l: List[float] = []
        finish_l: List[float] = []
        admit = admitted_l.append
        starts = start_l.append
        finishes = finish_l.append
        index = 0
        for admitted, bank, array_time in zip(arrivals_l, bank_l, array_l):
            if index >= queue_depth:
                blocked_until = finish_l[index - queue_depth]
                if blocked_until > admitted:
                    admitted = blocked_until
            start = bank_free[bank]
            if admitted > start:
                start = admitted
            burst_start = start + array_time
            finish = burst_start + burst_ns
            bank_release = burst_start if overlap else finish
            bank_busy[bank] += bank_release - start
            bank_free[bank] = bank_release
            admit(admitted)
            starts(start)
            finishes(finish)
            index += 1
        return admitted_l, start_l, finish_l, sum(bank_busy)

    def _recurrence_refresh_bus(self, bank_idx: np.ndarray,
                                array_ns: np.ndarray, arrivals: np.ndarray,
                                is_read: np.ndarray):
        """Global-queue recurrence with refresh windows and a shared bus
        (every DRAM configuration)."""
        device = self.device
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        array_l = array_ns.tolist()
        turn_l = self._bus_turn_penalties(is_read)
        queue_depth = self.queue_depth
        bank_free = [0.0] * device.banks
        bank_busy = [0.0] * device.banks
        burst_ns = device.data_burst_ns
        overlap = device.burst_overlaps_array
        refresh = device.refresh
        interval = refresh.interval_ns
        duration = refresh.duration_ns
        bus_free = 0.0
        admitted_l: List[float] = []
        start_l: List[float] = []
        finish_l: List[float] = []
        admit = admitted_l.append
        starts = start_l.append
        finishes = finish_l.append
        index = 0
        for admitted, bank, array_time, turn in zip(
                arrivals_l, bank_l, array_l, turn_l):
            if index >= queue_depth:
                blocked_until = finish_l[index - queue_depth]
                if blocked_until > admitted:
                    admitted = blocked_until
            start = bank_free[bank]
            if admitted > start:
                start = admitted
            position = start % interval
            if position < duration:
                start = start - position + duration
            burst_start = start + array_time
            bus_ready = bus_free + turn
            if bus_ready > burst_start:
                burst_start = bus_ready
            position = burst_start % interval
            if position < duration:
                burst_start = burst_start - position + duration
            finish = burst_start + burst_ns
            bus_free = finish
            bank_release = finish
            if overlap:
                array_done = start + array_time
                bank_release = array_done if array_done > burst_start \
                    else burst_start
            bank_busy[bank] += bank_release - start
            bank_free[bank] = bank_release
            admit(admitted)
            starts(start)
            finishes(finish)
            index += 1
        return admitted_l, start_l, finish_l, sum(bank_busy)

    def _recurrence_generic(self, bank_idx: np.ndarray,
                            array_ns: np.ndarray, arrivals: np.ndarray,
                            is_read: np.ndarray):
        """The general recurrence handling every flag combination —
        the safety net for device classes no specialized loop covers."""
        device = self.device
        n = len(arrivals)
        arrivals_l = arrivals.tolist()
        bank_l = bank_idx.tolist()
        array_l = array_ns.tolist()
        read_l = is_read.tolist()
        queue_depth = self.queue_depth
        bank_free = [0.0] * device.banks
        bank_busy = [0.0] * device.banks
        shared_bus = device.shared_bus
        turnaround = device.bus_turnaround_ns
        burst_ns = device.data_burst_ns
        overlap = device.burst_overlaps_array
        refresh = device.refresh
        has_refresh = refresh is not None
        refresh_interval = refresh.interval_ns if has_refresh else 0.0
        refresh_duration = refresh.duration_ns if has_refresh else 0.0
        bus_free = 0.0
        bus_last_was_read: Optional[bool] = None
        admitted_l = [0.0] * n
        start_l = [0.0] * n
        finish_l = [0.0] * n

        for i in range(n):
            admitted = arrivals_l[i]
            if i >= queue_depth:
                blocked_until = finish_l[i - queue_depth]
                if blocked_until > admitted:
                    admitted = blocked_until
            bank = bank_l[i]
            start = bank_free[bank]
            if admitted > start:
                start = admitted
            if has_refresh:
                position = start % refresh_interval
                if position < refresh_duration:
                    start = start - position + refresh_duration
            array_time = array_l[i]
            burst_start = start + array_time
            if shared_bus:
                bus_ready = bus_free
                if bus_last_was_read is not None \
                        and bus_last_was_read != read_l[i]:
                    bus_ready += turnaround
                if bus_ready > burst_start:
                    burst_start = bus_ready
                if has_refresh:
                    position = burst_start % refresh_interval
                    if position < refresh_duration:
                        burst_start = burst_start - position + refresh_duration
            finish = burst_start + burst_ns
            if shared_bus:
                bus_free = finish
                bus_last_was_read = read_l[i]
            bank_release = finish
            if overlap:
                array_done = start + array_time
                bank_release = array_done if array_done > burst_start \
                    else burst_start
            bank_busy[bank] += bank_release - start
            bank_free[bank] = bank_release
            admitted_l[i] = admitted
            start_l[i] = start
            finish_l[i] = finish
        return admitted_l, start_l, finish_l, sum(bank_busy)

    # ------------------------------------------------------------------

    def _precompute(
        self, addresses: np.ndarray, is_read: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """Vectorized bank mapping, open-row hits and array service times."""
        device = self.device
        n = len(addresses)
        row_buffer = device.row_buffer
        if row_buffer is None:
            bank_idx = (addresses // device.line_bytes) % device.banks
            array_ns = np.where(is_read,
                                float(device.read_occupancy_ns),
                                float(device.write_occupancy_ns))
            return bank_idx, array_ns, 0, 0

        bank_idx = (addresses // row_buffer.row_size_bytes) % device.banks
        rows = addresses // (row_buffer.row_size_bytes * device.banks)
        if row_buffer.is_open_page:
            # A request hits iff the previous access to its bank opened the
            # same row — a pure data dependency, so it vectorizes: group by
            # bank (stable sort on a narrow key: radix beats mergesort on
            # int64 by an order of magnitude) and compare neighbours.
            order = np.argsort(self._bank_sort_key(bank_idx), kind="stable")
            bank_sorted = bank_idx[order]
            row_sorted = rows[order]
            hit_sorted = np.zeros(n, dtype=bool)
            hit_sorted[1:] = (bank_sorted[1:] == bank_sorted[:-1]) \
                & (row_sorted[1:] == row_sorted[:-1])
            row_hit = np.empty(n, dtype=bool)
            row_hit[order] = hit_sorted
        else:
            row_hit = np.zeros(n, dtype=bool)   # auto-precharged
        array_ns = np.where(
            row_hit,
            np.where(is_read,
                     row_buffer.service_ns(True, True),
                     row_buffer.service_ns(True, False)),
            np.where(is_read,
                     row_buffer.service_ns(False, True),
                     row_buffer.service_ns(False, False)),
        )
        if device.write_occupancy_ns is not None:
            # Fixed write occupancy overrides the row-buffer path (COSMOS:
            # reads hit/miss the subarray buffer, writes always pay the
            # full erase-plus-program pulse train).
            array_ns = np.where(is_read, array_ns,
                                float(device.write_occupancy_ns))
        row_hits = int(np.count_nonzero(row_hit))
        return bank_idx, array_ns, row_hits, n - row_hits

    def _stats(self, workload_name: str, is_read: np.ndarray,
               total_bytes: int, schedule: _Schedule) -> SimStats:
        """Assemble SimStats from a computed schedule."""
        device = self.device
        n = len(schedule.finish_ns)
        first_arrival = float(schedule.admitted_ns[0])
        last_completion = float(schedule.completion_ns.max())
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy = schedule.busy_ns
        # Active power (photonic laser/SOA) is gated per accessed bank, so
        # the device-wide active power scales with the busy-bank fraction —
        # unless the device opts out of gating (always-on laser rail).
        if device.energy.gate_active_power:
            active = min(sim_time, busy / device.banks)
        else:
            active = sim_time

        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j

        reads = int(np.count_nonzero(is_read))
        writes = n - reads
        op_energy = reads * device.energy.read_energy_j \
            + writes * device.energy.write_energy_j
        latencies = schedule.completion_ns - schedule.admitted_ns
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=n,
            num_reads=reads,
            num_writes=writes,
            total_bytes=total_bytes,
            sim_time_ns=sim_time,
            busy_time_ns=busy,
            active_time_ns=active,
            latencies_ns=latencies.tolist(),
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=schedule.row_hits,
            row_misses=schedule.row_misses,
        )

    # ------------------------------------------------------------------
    # reference scalar path (semantics oracle)

    def run_reference(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """The straightforward per-request object loop (the oracle).

        Equivalence tests pin both vectorized paths against this, and
        the parallel-evaluation benchmark uses it as the legacy
        baseline.  Per-bank-queue devices run the deadline-space chain
        recurrence in object form (falling back to the global-queue loop
        when an admission stamp would bind); everything else runs the
        classic global-queue loop.
        """
        if not requests:
            raise SimulationError("empty request stream")
        device = self.device
        if device.contention_free and device.per_bank_queues:
            result = self._reference_per_bank(requests)
            if result is not None:
                return self._reference_stats(requests, workload_name,
                                             *result)
        return self._reference_global(requests, workload_name)

    def _reference_per_bank(self, requests: List[MemRequest]):
        """Object-loop twin of the per-bank chain semantics; ``None``
        when admission would bind (revert to the global queue)."""
        device = self.device
        burst = device.data_burst_ns
        overlap = device.burst_overlaps_array
        qd_b = self.bank_queue_depth
        cum = [0.0] * device.banks
        peak = [float("-inf")] * device.banks
        busy = [0.0] * device.banks
        open_rows: List[Optional[int]] = [None] * device.banks
        history: List[List[float]] = [[] for _ in range(device.banks)]
        op_energy = 0.0
        row_hits = 0
        row_misses = 0
        last_arrival = -1.0
        scheduled = []
        for request in requests:
            if request.arrival_ns < last_arrival:
                raise SimulationError("requests must be sorted by arrival")
            last_arrival = request.arrival_ns
            bank = device.bank_of(request)
            row_hit = False
            if device.row_buffer is not None:
                row = device.row_of(request)
                if device.row_buffer.is_open_page:
                    row_hit = open_rows[bank] == row
                    open_rows[bank] = row
                if row_hit:
                    row_hits += 1
                else:
                    row_misses += 1
            occupancy = device.array_time_ns(request, row_hit)
            if not overlap:
                occupancy = occupancy + burst
            cum_prev = cum[bank]
            deadline = request.arrival_ns - cum_prev
            if deadline > peak[bank]:
                peak[bank] = deadline
            start = peak[bank] + cum_prev
            cum_next = cum_prev + occupancy
            release = peak[bank] + cum_next
            finish = release + burst if overlap else release
            served = history[bank]
            admitted = request.arrival_ns
            if len(served) >= qd_b:
                stamp = served[len(served) - qd_b]
                if stamp > admitted:
                    admitted = stamp
                if admitted > start:
                    return None
            served.append(finish)
            cum[bank] = cum_next
            busy[bank] += release - start
            op_energy += device.op_energy_j(request)
            scheduled.append((admitted, start, finish))
        return scheduled, busy, op_energy, row_hits, row_misses

    def _reference_stats(self, requests: List[MemRequest],
                         workload_name: str, scheduled, busy, op_energy,
                         row_hits: int, row_misses: int) -> SimStats:
        device = self.device
        for request, (admitted, start, finish) in zip(requests, scheduled):
            request.start_ns = start
            request.finish_ns = finish
            request.completion_ns = finish + device.interface_delay_ns
            # Latency is measured from queue admission (NVMain convention).
            request.arrival_ns = admitted
        first_arrival = requests[0].arrival_ns
        last_completion = max(r.completion_ns for r in requests)
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy_total = sum(busy)
        if device.energy.gate_active_power:
            active = min(sim_time, busy_total / device.banks)
        else:
            active = sim_time
        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j
        reads = sum(1 for r in requests if r.is_read)
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=len(requests),
            num_reads=reads,
            num_writes=len(requests) - reads,
            total_bytes=sum(r.size_bytes for r in requests),
            sim_time_ns=sim_time,
            busy_time_ns=busy_total,
            active_time_ns=active,
            latencies_ns=[r.latency_ns for r in requests],
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=row_hits,
            row_misses=row_misses,
        )

    def _reference_global(self, requests: List[MemRequest],
                          workload_name: str) -> SimStats:
        """The original global-queue per-request loop, kept verbatim."""
        device = self.device
        banks = [_BankState() for _ in range(device.banks)]
        bus_free_ns = 0.0
        bus_last_was_read: Optional[bool] = None
        op_energy = 0.0
        row_hits = 0
        row_misses = 0
        last_arrival = -1.0
        finish_times: List[float] = []

        for index, request in enumerate(requests):
            if request.arrival_ns < last_arrival:
                raise SimulationError("requests must be sorted by arrival")
            last_arrival = request.arrival_ns

            bank_index = device.bank_of(request)
            bank = banks[bank_index]

            admitted = request.arrival_ns
            if index >= self.queue_depth:
                # Transaction queue full until an older request finishes.
                admitted = max(admitted, finish_times[index - self.queue_depth])

            start = max(admitted, bank.free_at_ns)
            start = self._skip_refresh(start)

            row_hit = False
            if device.row_buffer is not None:
                row = device.row_of(request)
                if device.row_buffer.is_open_page:
                    row_hit = bank.open_row == row
                    bank.open_row = row
                else:
                    bank.open_row = None   # auto-precharged
                if row_hit:
                    row_hits += 1
                else:
                    row_misses += 1

            array_ns = device.array_time_ns(request, row_hit)
            burst_start = start + array_ns
            if device.shared_bus:
                bus_ready = bus_free_ns
                if (bus_last_was_read is not None
                        and bus_last_was_read != request.is_read):
                    bus_ready += device.bus_turnaround_ns
                burst_start = max(burst_start, bus_ready)
                burst_start = self._skip_refresh(burst_start)
            finish = burst_start + device.data_burst_ns
            if device.shared_bus:
                bus_free_ns = finish
                bus_last_was_read = request.is_read

            bank_release = finish
            if device.burst_overlaps_array:
                bank_release = max(start + array_ns, burst_start)
            bank.busy_ns += bank_release - start
            bank.free_at_ns = bank_release
            finish_times.append(finish)

            request.start_ns = start
            request.finish_ns = finish
            request.completion_ns = finish + device.interface_delay_ns
            # Latency is measured from queue admission (NVMain convention).
            request.arrival_ns = admitted
            op_energy += device.op_energy_j(request)

        first_arrival = requests[0].arrival_ns
        last_completion = max(r.completion_ns for r in requests)
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy = sum(b.busy_ns for b in banks)
        if device.energy.gate_active_power:
            active = min(sim_time, busy / device.banks)
        else:
            active = sim_time

        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j

        reads = sum(1 for r in requests if r.is_read)
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=len(requests),
            num_reads=reads,
            num_writes=len(requests) - reads,
            total_bytes=sum(r.size_bytes for r in requests),
            sim_time_ns=sim_time,
            busy_time_ns=busy,
            active_time_ns=active,
            latencies_ns=[r.latency_ns for r in requests],
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=row_hits,
            row_misses=row_misses,
        )

    # ------------------------------------------------------------------

    def _skip_refresh(self, time_ns: float) -> float:
        """Push a start time out of any refresh window it lands in."""
        refresh = self.device.refresh
        if refresh is None:
            return time_ns
        position = time_ns % refresh.interval_ns
        if position < refresh.duration_ns:
            return time_ns - position + refresh.duration_ns
        return time_ns
