"""Clients for the async evaluation service (:mod:`repro.sim.server`).

Two transports, one wire format:

* ``http://host:port`` — the daemon's HTTP endpoint, spoken by the sync
  :class:`EvalClient` (stdlib ``http.client``) and the
  :class:`AsyncEvalClient` (raw asyncio streams).
* ``unix:///path/to.sock`` — the newline-delimited-JSON line protocol
  over a unix socket (both clients).

``REPRO_EVAL_SERVER`` names the default server address, which is how
``exp/fig9.py`` and the ``python -m repro.sim query`` CLI find a warm
daemon.  Responses deserialize back into :class:`SimStats` that are
bit-identical to a local :func:`repro.sim.engine.evaluate_cell` call
(Python floats survive JSON exactly).
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import sys
import urllib.parse
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from .engine import EvalTask, task_to_dict
from .stats import SimStats
from .sweep import SweepSpec

#: Environment variable naming the default evaluation-server address;
#: when set, ``exp/fig9.py`` routes its grid through the daemon.
SERVER_ENV_VAR = "REPRO_EVAL_SERVER"

DEFAULT_TIMEOUT = 600.0


def default_server() -> Optional[str]:
    """The ``$REPRO_EVAL_SERVER`` address, or ``None``."""
    return os.environ.get(SERVER_ENV_VAR) or None


def _split_address(address: Optional[str]) -> Tuple[str, Any]:
    """Normalize an address into ``("http", (host, port))`` or
    ``("unix", path)``."""
    address = address or default_server()
    if not address:
        raise SimulationError(
            f"no evaluation server address: pass one explicitly or set "
            f"${SERVER_ENV_VAR}")
    if address.startswith("unix://"):
        path = address[len("unix://"):]
        if not path:
            raise SimulationError(f"empty unix socket path in {address!r}")
        return "unix", path
    if "://" not in address:
        address = "http://" + address
    parsed = urllib.parse.urlsplit(address)
    if parsed.scheme != "http":
        raise SimulationError(
            f"unsupported server scheme {parsed.scheme!r} in {address!r}; "
            f"use http://host:port or unix:///path")
    if not parsed.hostname or not parsed.port:
        raise SimulationError(
            f"server address {address!r} needs an explicit host and port")
    return "http", (parsed.hostname, parsed.port)


def _check_reply(reply: Any, status: Optional[int] = None) -> Dict[str, Any]:
    """Raise the server's structured error, or return the ok payload."""
    if not isinstance(reply, dict):
        raise SimulationError(f"malformed server reply: {reply!r}")
    if not reply.get("ok", False):
        error = reply.get("error", "unknown server error")
        prefix = f"server error ({status}): " if status else "server error: "
        raise SimulationError(prefix + str(error))
    return reply


def _results_to_stats(tasks: Sequence[EvalTask], reply: Dict[str, Any]) \
        -> Dict[EvalTask, SimStats]:
    """Zip an eval reply back onto the requested tasks (server order ==
    request order; the echoed task dict is cross-checked)."""
    results = reply.get("results")
    if not isinstance(results, list) or len(results) != len(tasks):
        raise SimulationError(
            f"server returned {len(results) if isinstance(results, list) else 'malformed'} "
            f"results for {len(tasks)} tasks")
    lookup: Dict[EvalTask, SimStats] = {}
    for task, row in zip(tasks, results):
        echoed = row.get("task")
        if echoed != task_to_dict(task):
            raise SimulationError(
                f"server reply out of order: expected {task.describe()}, "
                f"got {echoed!r}")
        lookup[task] = SimStats.from_dict(row["stats"])
    return lookup


class EvalClient:
    """Synchronous client (HTTP or unix line protocol).

    ``EvalClient()`` with no address uses ``$REPRO_EVAL_SERVER``.
    """

    def __init__(self, address: Optional[str] = None,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.transport, self.target = _split_address(address)
        self.timeout = timeout

    # -- transport ----------------------------------------------------------

    def _http_request(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None) \
            -> Tuple[int, Any]:
        host, port = self.target
        connection = http.client.HTTPConnection(host, port,
                                                timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = {"Content-Type": "application/json"} \
                if body is not None else {}
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise SimulationError(
                    f"evaluation server {host}:{port} unreachable: "
                    f"{error}") from error
            try:
                return response.status, json.loads(raw)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"malformed server response: {error}") from error
        finally:
            connection.close()

    def _line_request(self, payload: Dict[str, Any]) -> Any:
        try:
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
                sock.settimeout(self.timeout)
                sock.connect(self.target)
                sock.sendall(json.dumps(payload).encode() + b"\n")
                with sock.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as error:
            raise SimulationError(
                f"evaluation server unix://{self.target} unreachable: "
                f"{error}") from error
        if not line:
            raise SimulationError("evaluation server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"malformed server response: {error}") from error

    def _call(self, op: str, path: str, method: str,
              payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if self.transport == "unix":
            message = dict(payload or {})
            message["op"] = op
            return _check_reply(self._line_request(message))
        status, reply = self._http_request(method, path, payload)
        return _check_reply(reply, status)

    # -- queries ------------------------------------------------------------

    def eval_tasks(self, tasks: Sequence[EvalTask],
                   latencies: bool = True) -> Dict[EvalTask, SimStats]:
        """Evaluate a batch; returns ``{task: stats}`` (server-side
        read-through / coalescing / compute as needed)."""
        tasks = list(tasks)
        if not tasks:
            return {}
        payload = {"tasks": [task_to_dict(task) for task in tasks],
                   "latencies": latencies}
        reply = self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(tasks, reply)

    def eval_cell(self, task: EvalTask, latencies: bool = True) -> SimStats:
        """Evaluate one cell."""
        return self.eval_tasks([task], latencies=latencies)[task]

    def eval_sweep(self, spec: SweepSpec,
                   latencies: bool = True) -> Dict[EvalTask, SimStats]:
        """Evaluate a full sweep spec server-side."""
        payload = {"sweep": spec.to_dict(), "latencies": latencies}
        reply = self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(spec.tasks(), reply)

    def stats(self) -> Dict[str, Any]:
        """The daemon's ``/stats`` counters."""
        return self._call("stats", "/stats", "GET")["stats"]

    def ping(self) -> bool:
        """True iff the daemon answers its health check."""
        try:
            if self.transport == "unix":
                return bool(self._call("ping", "", "").get("pong"))
            return bool(self._call("ping", "/healthz", "GET").get("ok"))
        except SimulationError:
            return False

    def shutdown(self) -> None:
        """Ask the daemon to exit cleanly."""
        self._call("shutdown", "/shutdown", "POST")


class AsyncEvalClient:
    """Asyncio client: same wire format, non-blocking transports.

    HTTP requests open one connection per call (the server speaks
    ``Connection: close``); unix line-protocol calls do the same for
    simplicity.  All methods mirror :class:`EvalClient`.
    """

    def __init__(self, address: Optional[str] = None,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        self.transport, self.target = _split_address(address)
        self.timeout = timeout

    async def _http_request(self, method: str, path: str,
                            payload: Optional[Dict[str, Any]] = None) \
            -> Tuple[int, Any]:
        import asyncio

        host, port = self.target
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.timeout)
        except (OSError, asyncio.TimeoutError) as error:
            raise SimulationError(
                f"evaluation server {host}:{port} unreachable: "
                f"{error}") from error
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else b""
            head = (f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n").encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            status_line = await asyncio.wait_for(reader.readline(),
                                                 self.timeout)
            try:
                status = int(status_line.split()[1])
            except (IndexError, ValueError):
                raise SimulationError(
                    f"malformed HTTP status line: {status_line!r}") from None
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            raw = await asyncio.wait_for(reader.readexactly(length),
                                         self.timeout)
            try:
                return status, json.loads(raw)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"malformed server response: {error}") from error
        except asyncio.IncompleteReadError as error:
            raise SimulationError(
                f"evaluation server closed mid-response: {error}") from error
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _line_request(self, payload: Dict[str, Any]) -> Any:
        import asyncio

        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_unix_connection(self.target), self.timeout)
        except (OSError, asyncio.TimeoutError) as error:
            raise SimulationError(
                f"evaluation server unix://{self.target} unreachable: "
                f"{error}") from error
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not line:
            raise SimulationError("evaluation server closed the connection")
        try:
            return json.loads(line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"malformed server response: {error}") from error

    async def _call(self, op: str, path: str, method: str,
                    payload: Optional[Dict[str, Any]] = None) \
            -> Dict[str, Any]:
        if self.transport == "unix":
            message = dict(payload or {})
            message["op"] = op
            return _check_reply(await self._line_request(message))
        status, reply = await self._http_request(method, path, payload)
        return _check_reply(reply, status)

    async def eval_tasks(self, tasks: Sequence[EvalTask],
                         latencies: bool = True) -> Dict[EvalTask, SimStats]:
        tasks = list(tasks)
        if not tasks:
            return {}
        payload = {"tasks": [task_to_dict(task) for task in tasks],
                   "latencies": latencies}
        reply = await self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(tasks, reply)

    async def eval_cell(self, task: EvalTask,
                        latencies: bool = True) -> SimStats:
        return (await self.eval_tasks([task], latencies=latencies))[task]

    async def eval_sweep(self, spec: SweepSpec,
                         latencies: bool = True) -> Dict[EvalTask, SimStats]:
        payload = {"sweep": spec.to_dict(), "latencies": latencies}
        reply = await self._call("eval", "/eval", "POST", payload)
        return _results_to_stats(spec.tasks(), reply)

    async def stats(self) -> Dict[str, Any]:
        return (await self._call("stats", "/stats", "GET"))["stats"]

    async def shutdown(self) -> None:
        await self._call("shutdown", "/shutdown", "POST")


def evaluate_tasks_remote(tasks: Sequence[EvalTask],
                          address: Optional[str] = None,
                          latencies: bool = True) \
        -> Dict[EvalTask, SimStats]:
    """One-shot remote evaluation (the fig9 read-through path)."""
    return EvalClient(address).eval_tasks(tasks, latencies=latencies)


def query_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim query`` — one query against a daemon."""
    import argparse

    from .factory import ARCHITECTURE_NAMES
    from .tracegen import WORKLOAD_NAMES

    parser = argparse.ArgumentParser(
        prog="repro.sim query",
        description="Query a running evaluation daemon (see "
                    "'python -m repro.sim serve').",
    )
    parser.add_argument("--server", default=None,
                        help=f"daemon address (default: ${SERVER_ENV_VAR}); "
                             f"http://host:port or unix:///path")
    parser.add_argument("--arch", choices=ARCHITECTURE_NAMES)
    parser.add_argument("--workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--queue-depth", type=int, default=None)
    parser.add_argument("--stats", action="store_true",
                        help="print the daemon's /stats counters and exit")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the daemon to exit cleanly")
    args = parser.parse_args(argv)
    try:
        client = EvalClient(args.server)
        if args.stats:
            for key, value in sorted(client.stats().items()):
                print(f"{key:12s}: {value}")
            return 0
        if args.shutdown:
            client.shutdown()
            print("shutdown requested")
            return 0
        if not args.arch or not args.workload:
            parser.error("--arch and --workload are required for an "
                         "evaluation query (or use --stats/--shutdown)")
        task = EvalTask(args.arch, args.workload, args.requests, args.seed,
                        args.queue_depth)
        stats = client.eval_cell(task)
    except SimulationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    row = stats.as_row()
    print(f"architecture : {stats.device_name}")
    print(f"workload     : {stats.workload_name}")
    print(f"requests     : {stats.num_requests} "
          f"({stats.num_reads} R / {stats.num_writes} W)")
    print(f"bandwidth    : {row['bandwidth_gbps']:.2f} GB/s")
    print(f"avg latency  : {row['avg_latency_ns']:.1f} ns "
          f"(p95 {row['p95_latency_ns']:.1f} ns)")
    print(f"EPB          : {row['epb_pj']:.1f} pJ/bit")
    print(f"BW/EPB       : {row['bw_per_epb']:.4f}")
    return 0
