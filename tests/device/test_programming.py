"""Cell programming: the Fig. 6 tables and reset-energy case studies."""

import pytest

from repro.device import ProgrammingMode
from repro.errors import ProgrammingError


class TestResetCaseStudies:
    def test_crystalline_deposited_reset_energy(self, programmer):
        """Paper: 880 pJ (case study 1)."""
        energy_pj = programmer.reset_energy_j(
            ProgrammingMode.CRYSTALLINE_DEPOSITED) * 1e12
        assert energy_pj == pytest.approx(880.0, rel=0.05)

    def test_amorphous_deposited_reset_energy(self, programmer):
        """Paper: 280 pJ (case study 2)."""
        energy_pj = programmer.reset_energy_j(
            ProgrammingMode.AMORPHOUS_DEPOSITED) * 1e12
        assert energy_pj == pytest.approx(280.0, rel=0.05)

    def test_crystalline_reset_uses_1mw(self, programmer):
        pulse = programmer.reset_pulse(ProgrammingMode.CRYSTALLINE_DEPOSITED)
        assert pulse.power_w == pytest.approx(1e-3)

    def test_amorphous_reset_uses_5mw(self, programmer):
        pulse = programmer.reset_pulse(ProgrammingMode.AMORPHOUS_DEPOSITED)
        assert pulse.power_w == pytest.approx(5e-3)

    def test_amorphization_quench_verified(self, programmer):
        pulse = programmer.reset_pulse(ProgrammingMode.AMORPHOUS_DEPOSITED)
        assert programmer.verify_quench(pulse)


class TestLevelProgramming:
    def test_crystallize_duration_monotone_in_target(self, programmer):
        durations = [programmer.crystallize_to(fc).duration_s
                     for fc in (0.2, 0.5, 0.8, 0.95)]
        assert all(b > a for a, b in zip(durations, durations[1:]))

    def test_melt_duration_monotone_in_depth(self, programmer):
        durations = [programmer.amorphize_to_melt_fraction(m).duration_s
                     for m in (0.25, 0.5, 0.75, 1.0)]
        assert all(b > a for a, b in zip(durations, durations[1:]))

    def test_level_bounds(self, programmer):
        with pytest.raises(ProgrammingError):
            programmer.crystallize_to(0.0)
        with pytest.raises(ProgrammingError):
            programmer.crystallize_to(1.0)
        with pytest.raises(ProgrammingError):
            programmer.amorphize_to_melt_fraction(0.0)


class TestFig6Table:
    def test_sixteen_levels(self, programmer, mlc4):
        table = programmer.level_table(mlc4)
        assert len(table) == 16

    def test_levels_ordered_by_transmission(self, programmer, mlc4):
        table = programmer.level_table(mlc4)
        transmissions = [entry.transmission for entry in table]
        assert all(b < a for a, b in zip(transmissions, transmissions[1:]))

    def test_fractions_increase_with_level(self, programmer, mlc4):
        table = programmer.level_table(mlc4)
        fractions = [entry.crystalline_fraction for entry in table]
        assert all(b > a for a, b in zip(fractions, fractions[1:]))

    def test_latency_increases_with_level(self, programmer, mlc4):
        """Fig. 6's headline shape: deeper crystallization takes longer
        (amorphous-deposited mode)."""
        table = programmer.level_table(
            mlc4, ProgrammingMode.AMORPHOUS_DEPOSITED)
        latencies = [entry.latency_s for entry in table[1:]]  # skip reset lvl
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_max_write_within_table_ii_envelope(self, programmer, mlc4):
        """Derived worst-case write must fit the 170 ns Table II budget."""
        max_write_ns = programmer.max_write_latency_s(mlc4) * 1e9
        assert 80.0 < max_write_ns <= 170.0

    def test_crystalline_deposited_table_also_complete(self, programmer, mlc4):
        table = programmer.level_table(
            mlc4, ProgrammingMode.CRYSTALLINE_DEPOSITED)
        assert len(table) == 16
        # In this mode high-transmission levels need deep melts -> slower.
        assert table[0].pulse.duration_s > table[-2].pulse.duration_s

    def test_pulse_energy_positive_everywhere(self, programmer, mlc4):
        for mode in ProgrammingMode:
            for entry in programmer.level_table(mlc4, mode):
                assert entry.energy_j > 0.0
