"""DOTA photonic tensor core fed by candidate main memories (Fig. 10).

DOTA [47] computes in the optical domain.  Data arriving from an
*electronic* memory must cross an electro-optic conversion stage — DAC,
modulator driver and the modulator's share of the laser — before it can
enter the tensor core, and results cross back.  A *photonic* memory
injects light directly ("without the need for energy-hungry
electro-photonic conversion stages", Section IV.D), paying only the
wavelength-alignment/retiming interface.

System EPB for a (memory, model) pair is therefore::

    EPB_system = EPB_memory(traffic)  +  conversion tax of that memory class

where ``EPB_memory`` comes from running the transformer's traffic through
the Fig. 9 memory simulator (weight streaming + activation spills), so the
memory sees DOTA's actual access pattern rather than a generic trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError
from ..sim.simulator import MainMemorySimulator
from ..sim.tracegen import SyntheticWorkload
from .transformer import DEIT_BASE, DEIT_TINY, TransformerConfig

#: Memories that deliver data optically (no E-O conversion at DOTA input).
PHOTONIC_MEMORIES = ("COMET", "COSMOS")


@dataclass(frozen=True)
class DotaEnergyModel:
    """Conversion-stage energy of the accelerator interface.

    ``electro_optic_pj_per_bit`` covers the DAC + driver + modulator laser
    share + receiver TIA/ADC of a full E-O-E crossing at analog-compute
    fidelity; ``photonic_injection_pj_per_bit`` is the
    wavelength-retiming/amplification cost of direct optical injection.
    """

    electro_optic_pj_per_bit: float = 65.0
    photonic_injection_pj_per_bit: float = 2.0

    def __post_init__(self) -> None:
        if self.electro_optic_pj_per_bit < 0.0:
            raise ConfigError("conversion energy must be non-negative")
        if self.photonic_injection_pj_per_bit < 0.0:
            raise ConfigError("injection energy must be non-negative")

    def conversion_pj_per_bit(self, memory_name: str) -> float:
        if memory_name in PHOTONIC_MEMORIES:
            return self.photonic_injection_pj_per_bit
        return self.electro_optic_pj_per_bit


@dataclass
class DotaResult:
    """System EPB of one (memory, model) pair."""

    memory_name: str
    model_name: str
    memory_epb_pj: float
    conversion_pj_per_bit: float

    @property
    def system_epb_pj(self) -> float:
        return self.memory_epb_pj + self.conversion_pj_per_bit


class DotaSystem:
    """DOTA + one main memory, evaluated on one transformer model."""

    def __init__(
        self,
        memory_name: str,
        model: TransformerConfig,
        energy_model: DotaEnergyModel = DotaEnergyModel(),
        inference_rate_per_s: float = 2000.0,
        on_chip_buffer_bytes: int = 1 * 2**20,
    ) -> None:
        if inference_rate_per_s <= 0.0:
            raise ConfigError("inference rate must be positive")
        if on_chip_buffer_bytes < 0:
            raise ConfigError("buffer size must be non-negative")
        self.memory_name = memory_name
        self.model = model
        self.energy_model = energy_model
        self.inference_rate_per_s = inference_rate_per_s
        self.on_chip_buffer_bytes = on_chip_buffer_bytes

    # -- traffic after on-chip buffering ---------------------------------

    def _layer_spill_bytes(self) -> int:
        """Per-layer bytes that exceed DOTA's on-chip SRAM and spill.

        DOTA buffers activations and attention scores on chip; only the
        overflow beyond the buffer reaches main memory.  For the DeiT
        variants the per-layer working set is well under 1 MB, so spills
        are zero and the memory sees (nearly pure) weight streaming.
        """
        per_layer = (self.model.activation_bytes_per_layer
                     + self.model.attention_bytes_per_layer)
        return max(per_layer - self.on_chip_buffer_bytes, 0)

    def read_bytes_per_inference(self) -> int:
        spills = self.model.layers * self._layer_spill_bytes()
        return self.model.weight_bytes + spills

    def write_bytes_per_inference(self) -> int:
        # Spilled tensors are written then read back; plus the final logits.
        return self.model.layers * self._layer_spill_bytes() + 4096

    def total_bytes_per_inference(self) -> int:
        return self.read_bytes_per_inference() + self.write_bytes_per_inference()

    def traffic_workload(self) -> SyntheticWorkload:
        """The memory-side view of DOTA running this model.

        Weight streaming makes the traffic highly sequential and
        read-dominated; the request rate follows from bytes-per-inference x
        inference rate.
        """
        total = self.total_bytes_per_inference()
        bytes_per_s = total * self.inference_rate_per_s
        line_bytes = 128
        interarrival_ns = max(line_bytes / bytes_per_s * 1e9, 0.5)
        reads = self.read_bytes_per_inference()
        return SyntheticWorkload(
            name=f"dota-{self.model.name}",
            mean_interarrival_ns=interarrival_ns,
            read_fraction=reads / total,
            sequential_probability=0.9,
            working_set_bytes=max(total, 1 * 2**20),
            line_bytes=line_bytes,
        )

    def evaluate(self, num_requests: int = 8000, seed: int = 7) -> DotaResult:
        """Run the traffic through the memory simulator; return system EPB."""
        workload = self.traffic_workload()
        simulator = MainMemorySimulator(self.memory_name)
        stats = simulator.run(
            workload.generate(num_requests, seed=seed),
            workload_name=workload.name,
        )
        return DotaResult(
            memory_name=self.memory_name,
            model_name=self.model.name,
            memory_epb_pj=stats.energy_per_bit_pj,
            conversion_pj_per_bit=self.energy_model.conversion_pj_per_bit(
                self.memory_name
            ),
        )


def dota_case_study(
    memories: List[str] = None,
    models: List[TransformerConfig] = None,
    num_requests: int = 8000,
) -> Dict[str, Dict[str, DotaResult]]:
    """The full Fig. 10 grid: ``results[model][memory] -> DotaResult``."""
    memory_names = memories if memories is not None else [
        "2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4", "EPCM-MM",
        "COSMOS", "COMET",
    ]
    model_list = models if models is not None else [DEIT_TINY, DEIT_BASE]
    results: Dict[str, Dict[str, DotaResult]] = {}
    for model in model_list:
        results[model.name] = {}
        for memory in memory_names:
            system = DotaSystem(memory, model)
            results[model.name][memory] = system.evaluate(num_requests)
    return results
