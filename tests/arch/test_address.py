"""Eq. (1)-(6) address mapping: correctness and bijectivity."""

import pytest

from repro.arch.address import AddressMapper, DecomposedAddress
from repro.arch.organization import MemoryOrganization
from repro.errors import AddressError


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(MemoryOrganization.comet(4), channels=8)


class TestEquations:
    def test_eq2_to_eq6_comet(self, mapper):
        """With Sc=1: ID2=0, SubarrayID = int(Row/Mr), ROW/COL are mods."""
        org = mapper.org
        row_id, col_id = 1234, 77
        location = mapper.map_coordinates(DecomposedAddress(0, 2, row_id, col_id))
        assert location.subarray_id == row_id // org.rows_per_subarray
        assert location.subarray_row == row_id % org.rows_per_subarray
        assert location.subarray_col == col_id % org.cols_per_subarray
        assert location.bank == 2

    def test_subarray_id_range(self, mapper):
        org = mapper.org
        last = mapper.subarray_id(org.rows_per_bank - 1, 0)
        assert last == org.row_subarrays - 1

    def test_out_of_range_coordinates(self, mapper):
        org = mapper.org
        with pytest.raises(AddressError):
            mapper.map_coordinates(DecomposedAddress(0, 0, org.rows_per_bank, 0))
        with pytest.raises(AddressError):
            mapper.map_coordinates(DecomposedAddress(0, 99, 0, 0))
        with pytest.raises(AddressError):
            mapper.map_coordinates(DecomposedAddress(9, 0, 0, 0))


class TestByteAddresses:
    def test_line_is_128_bytes(self, mapper):
        assert mapper.line_bytes == 128

    def test_capacity_is_8gib(self, mapper):
        assert mapper.capacity_bytes == 8 * 2**30

    def test_consecutive_lines_rotate_banks(self, mapper):
        banks = [mapper.decompose(i * 128).bank for i in range(8)]
        assert banks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_compose_decompose_roundtrip(self, mapper):
        for address in (0, 128, 4096, 123456 * 128, mapper.capacity_bytes - 128):
            decomposed = mapper.decompose(address)
            assert mapper.compose(decomposed) == address

    def test_distinct_lines_map_to_distinct_cells(self, mapper):
        seen = set()
        for line in range(0, 4096):
            loc = mapper.map_address(line * 128)
            key = (loc.channel, loc.bank, loc.subarray_id,
                   loc.subarray_row, loc.subarray_col)
            assert key not in seen
            seen.add(key)

    def test_address_bounds(self, mapper):
        with pytest.raises(AddressError):
            mapper.decompose(-1)
        with pytest.raises(AddressError):
            mapper.decompose(mapper.capacity_bytes)


class TestCosmosMapping:
    def test_cosmos_grid_uses_dense_fallback(self):
        """Sc=512 > sqrt(Sr): literal Eq. (4) would collide, the dense
        form must stay bijective."""
        mapper = AddressMapper(MemoryOrganization.cosmos())
        org = mapper.org
        seen = set()
        for row in (0, 31, 32, 16383):
            for col in (0, 31, 32, 16383):
                sid = mapper.subarray_id(row, col)
                key = (sid, row % 32, col % 32)
                assert key not in seen
                seen.add(key)
                assert 0 <= sid < org.subarrays_per_bank
