"""Top-level simulator: run traces against architectures, collect stats.

This is the reproduction's equivalent of invoking the paper's modified
NVMain once per (architecture, trace) pair.  The grid runner lives in
:mod:`repro.sim.engine` (parallel fan-out with a deterministic serial
fallback); ``run_evaluation`` is re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .controller import QUEUE_DEPTH_PER_CHANNEL, MemoryController
from .devices import MemoryDeviceModel
from .engine import run_evaluation  # noqa: F401  (compatibility re-export)
from .factory import build_device
from .request import MemRequest
from .stats import SimStats, geometric_mean
from .tracegen import cached_trace_arrays


class MainMemorySimulator:
    """Runs request streams against one device model."""

    def __init__(self, device: Union[str, MemoryDeviceModel],
                 queue_depth_per_channel: int = QUEUE_DEPTH_PER_CHANNEL) -> None:
        self.device = build_device(device) if isinstance(device, str) else device
        # Each channel brings its own transaction queue at the controller.
        self.controller = MemoryController(
            self.device,
            queue_depth=queue_depth_per_channel * self.device.channels,
        )

    def run(self, requests: List[MemRequest],
            workload_name: str = "trace") -> SimStats:
        """Simulate one request list (sorted by arrival if necessary)."""
        if any(later.arrival_ns < earlier.arrival_ns
               for earlier, later in zip(requests, requests[1:])):
            requests = sorted(requests, key=lambda r: r.arrival_ns)
        return self.controller.run(requests, workload_name=workload_name)

    def run_workload(self, workload_name: str, num_requests: int = 20_000,
                     seed: int = 1) -> SimStats:
        """Generate and simulate one named workload.

        Uses the cached column-store trace and the vectorized controller
        path — no request objects are materialized.
        """
        trace = cached_trace_arrays(workload_name, num_requests, seed)
        return self.controller.run_arrays(trace, workload_name=workload_name)


def summarize(results: Dict[str, Dict[str, SimStats]]) -> Dict[str, Dict[str, float]]:
    """Per-architecture geomean summary of the Fig. 9 metrics."""
    summary: Dict[str, Dict[str, float]] = {}
    for arch, per_workload in results.items():
        stats = list(per_workload.values())
        summary[arch] = {
            "bandwidth_gbps": geometric_mean([s.bandwidth_gbps for s in stats]),
            # NaN-safe accessor: a cell with no completed requests yields
            # a NaN geomean instead of crashing the whole summary.
            "avg_latency_ns": geometric_mean(
                [s.latency_row()["avg_latency_ns"] for s in stats]),
            "epb_pj": geometric_mean([s.energy_per_bit_pj for s in stats]),
            "bw_per_epb": geometric_mean([s.bw_per_epb for s in stats]),
        }
    return summary
