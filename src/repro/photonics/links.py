"""WDM + MDM photonic link model (Section III.C/E).

COMET reaches its banks over silicon-photonic links carrying ``N_c``
wavelengths (WDM) on each of ``B`` spatial modes (MDM, degree 4 per [28]).
The link model computes:

* the MR population the link needs (``2 * B * N_c`` passive rings),
* aggregate raw bandwidth from per-channel rate x channels,
* the end-to-end loss budget from laser to bank input, and
* the wall-plug laser power required to deliver a target per-wavelength
  power at the GST cells, given that budget.

Higher-order MDM modes are leakier (Section III.C); we model that with a
per-mode excess propagation loss that grows with mode order, which is why
the paper caps the MDM degree at 4 — the model reproduces that knee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..config import OpticalParameters, TABLE_I
from ..errors import ConfigError
from .laser import LaserSource
from .losses import LossBudget


@dataclass(frozen=True)
class WdmMdmLink:
    """A WDM x MDM link from the electrical interface to the memory banks."""

    num_wavelengths: int
    mdm_degree: int = 4
    channel_rate_gbps: float = 10.0
    link_length_cm: float = 2.0
    bends_90deg: int = 4
    mode_excess_loss_db_per_cm: float = 0.05   # per mode order above 0
    params: OpticalParameters = field(default_factory=lambda: TABLE_I)

    def __post_init__(self) -> None:
        if self.num_wavelengths <= 0:
            raise ConfigError("need at least one wavelength")
        if self.mdm_degree <= 0:
            raise ConfigError("MDM degree must be positive")
        if self.channel_rate_gbps <= 0.0:
            raise ConfigError("channel rate must be positive")

    # -- component counts --------------------------------------------------

    @property
    def total_channels(self) -> int:
        return self.num_wavelengths * self.mdm_degree

    @property
    def access_mr_count(self) -> int:
        """2 x B x N_c passive rings (column access + readout), Sec. III.E."""
        return 2 * self.mdm_degree * self.num_wavelengths

    @property
    def aggregate_bandwidth_gbps(self) -> float:
        return self.total_channels * self.channel_rate_gbps

    # -- loss/power ---------------------------------------------------------

    def mode_loss_db(self, mode_order: int) -> float:
        """Propagation loss for one spatial mode (higher orders leak more)."""
        if not 0 <= mode_order < self.mdm_degree:
            raise ConfigError(
                f"mode order {mode_order} outside MDM degree {self.mdm_degree}"
            )
        base = self.params.propagation_loss_db_per_cm * self.link_length_cm
        excess = self.mode_excess_loss_db_per_cm * mode_order * self.link_length_cm
        return base + excess

    def path_budget(self, mode_order: int = 0) -> LossBudget:
        """Laser-to-bank-input loss budget for one wavelength on one mode."""
        p = self.params
        budget = LossBudget(f"link-mode{mode_order}")
        budget.add("coupling", p.coupling_loss_db)
        budget.add("modulator MR drop", p.mr_drop_loss_db)
        budget.add("propagation+mode excess", self.mode_loss_db(mode_order))
        budget.add("bending", p.bending_loss_db_per_90deg, self.bends_90deg)
        budget.add("PCM subarray switch", p.pcm_switch_loss_db)
        # Through-traffic past the other wavelengths' access rings.
        budget.add("passive MR through", p.mr_through_loss_db,
                   max(self.num_wavelengths - 1, 0))
        return budget

    def worst_mode_budget(self) -> LossBudget:
        """Budget of the leakiest (highest-order) mode."""
        return self.path_budget(self.mdm_degree - 1)

    def laser_wall_plug_power_w(
        self,
        target_power_at_bank_w: float,
        laser: LaserSource = None,
    ) -> float:
        """Total laser electrical power for every wavelength on every mode.

        Each mode's budget differs; sum the per-mode requirements across the
        full WDM comb.
        """
        if target_power_at_bank_w <= 0.0:
            raise ConfigError("target power must be positive")
        source = laser if laser is not None else LaserSource(
            wall_plug_efficiency=self.params.laser_wall_plug_efficiency
        )
        total_optical = 0.0
        for mode in range(self.mdm_degree):
            budget = self.path_budget(mode)
            per_wavelength = budget.required_launch_power_w(target_power_at_bank_w)
            total_optical += per_wavelength * self.num_wavelengths
        return source.electrical_power_w(total_optical)

    def per_mode_budgets(self) -> List[LossBudget]:
        return [self.path_budget(mode) for mode in range(self.mdm_degree)]
