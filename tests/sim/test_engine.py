"""Parallel evaluation engine: equivalence, determinism, fan-out."""

import os

import pytest

from repro.errors import SimulationError
from repro.sim import MainMemorySimulator
from repro.sim import _fastloop
from repro.sim import controller as controller_mod
from repro.sim import engine
from repro.sim.engine import (
    EvalTask,
    _resolve_workers,
    controller_for,
    evaluate_cell,
    run_evaluation,
)
from repro.sim.stats import kernel_dispatch_summary
from repro.sim.tracegen import cached_trace_arrays, generate_trace

ARCHS = ("COSMOS", "EPCM-MM", "2D_DDR3")
WORKLOADS = ("gcc", "mix_mcf_lbm", "bursty")


@pytest.fixture(scope="module")
def serial_results():
    return run_evaluation(architectures=ARCHS, workloads=WORKLOADS,
                          num_requests=1200, seed=3, workers=1)


class TestParallelSerialEquivalence:
    def test_parallel_identical_to_serial(self, serial_results):
        """The tentpole guarantee: worker fan-out changes wall-clock,
        never results — every SimStats field matches bit-for-bit."""
        parallel = run_evaluation(architectures=ARCHS, workloads=WORKLOADS,
                                  num_requests=1200, seed=3, workers=2)
        assert parallel == serial_results

    def test_four_workers_identical(self, serial_results):
        parallel = run_evaluation(architectures=ARCHS, workloads=WORKLOADS,
                                  num_requests=1200, seed=3, workers=4)
        assert parallel == serial_results

    def test_thread_pool_identical_to_serial_all_architectures(self):
        """The thread-native plane over every registered architecture —
        per-bank, shared-bus and global-queue cells alike — is
        bit-identical to a serial run of the same grid."""
        from repro.sim.factory import known_architectures

        kwargs = dict(architectures=known_architectures(),
                      workloads=("gcc", "mcf"), num_requests=600, seed=3)
        serial = run_evaluation(workers=1, pool="serial", **kwargs)
        threaded = run_evaluation(workers=4, pool="threads", **kwargs)
        for arch, per_workload in serial.items():
            for workload, stats in per_workload.items():
                assert threaded[arch][workload].to_dict() == stats.to_dict()

    def test_engine_matches_object_api(self, serial_results):
        """The array fast path equals MainMemorySimulator.run on the
        materialized trace of the same (workload, n, seed)."""
        for arch in ARCHS:
            simulator = MainMemorySimulator(arch)
            for workload in WORKLOADS:
                trace = generate_trace(workload, 1200, seed=3)
                stats = simulator.run(trace, workload_name=workload)
                assert stats == serial_results[arch][workload]

    def test_vectorized_matches_reference_loop(self):
        """The vectorized controller reproduces the original scalar
        object loop: identical schedule, near-identical energy (the
        per-op sum is re-associated)."""
        for arch in ARCHS:
            controller = controller_for(arch)
            for workload in WORKLOADS:
                trace = generate_trace(workload, 800, seed=5)
                reference = controller.run_reference(
                    generate_trace(workload, 800, seed=5), workload)
                vectorized = controller.run(trace, workload)
                assert vectorized.latencies_ns == reference.latencies_ns
                assert vectorized.sim_time_ns == reference.sim_time_ns
                assert vectorized.busy_time_ns == reference.busy_time_ns
                assert vectorized.row_hits == reference.row_hits
                assert vectorized.row_misses == reference.row_misses
                assert vectorized.op_energy_j == pytest.approx(
                    reference.op_energy_j, rel=1e-12)


class TestEngineShape:
    def test_grid_covers_every_cell(self, serial_results):
        assert set(serial_results) == set(ARCHS)
        for arch in ARCHS:
            assert set(serial_results[arch]) == set(WORKLOADS)
            for workload in WORKLOADS:
                stats = serial_results[arch][workload]
                assert stats.workload_name == workload
                assert stats.num_requests == 1200

    def test_unknown_workload_rejected(self):
        with pytest.raises(SimulationError):
            run_evaluation(architectures=("COMET",), workloads=("nope",))

    def test_empty_grid_rejected(self):
        with pytest.raises(SimulationError):
            run_evaluation(workloads=[])
        with pytest.raises(SimulationError):
            run_evaluation(architectures=[])

    def test_negative_workers_rejected(self):
        with pytest.raises(SimulationError):
            run_evaluation(architectures=ARCHS[:1], workloads=WORKLOADS[:1],
                           num_requests=100, workers=-1)

    def test_evaluate_cell_standalone(self):
        stats = evaluate_cell(EvalTask("EPCM-MM", "checkpoint", 600, 2))
        assert stats.device_name == "EPCM-MM"
        assert stats.workload_name == "checkpoint"
        assert stats.num_requests == 600

    def test_zero_workers_means_one_per_cpu(self):
        assert _resolve_workers(0) == (os.cpu_count() or 1)
        results = run_evaluation(architectures=("EPCM-MM",),
                                 workloads=("gcc",), num_requests=200,
                                 workers=0)
        assert results["EPCM-MM"]["gcc"].num_requests == 200


class TestFailureAnnotation:
    """A cell failure names the failing (arch, workload, n, seed) cell
    instead of surfacing a bare worker traceback."""

    @pytest.fixture
    def broken_cell(self, monkeypatch):
        # The persistent worker pool snapshots the parent at fork time:
        # recycle it so freshly forked workers see the monkeypatch, and
        # again afterwards so no later test inherits workers carrying it.
        engine.shutdown_worker_pool()
        real = engine.evaluate_cell

        def explode(task):
            if task.workload == "bursty":
                raise SimulationError("device model diverged")
            return real(task)

        monkeypatch.setattr(engine, "evaluate_cell", explode)
        yield
        engine.shutdown_worker_pool()

    def test_serial_failure_names_the_cell(self, broken_cell):
        with pytest.raises(SimulationError, match=
                           r"EPCM-MM x bursty, n=300, seed=9"):
            run_evaluation(architectures=("EPCM-MM",),
                           workloads=("gcc", "bursty"),
                           num_requests=300, seed=9, workers=1)

    def test_parallel_failure_names_the_cell(self, broken_cell):
        """The annotated error pickles back through the pool (or the
        serial fallback) identically."""
        with pytest.raises(SimulationError, match=
                           r"grid cell \(EPCM-MM x bursty"):
            run_evaluation(architectures=("EPCM-MM",),
                           workloads=("gcc", "bursty"),
                           num_requests=300, seed=9, workers=2)

    def test_original_error_preserved_in_message(self, broken_cell):
        with pytest.raises(SimulationError, match="device model diverged"):
            run_evaluation(architectures=("EPCM-MM",),
                           workloads=("bursty",), num_requests=300, seed=9)

    def test_non_repro_errors_also_annotated(self, monkeypatch):
        """Unexpected exception kinds (the ones that need the cell label
        most) are wrapped too, with the original type named."""
        def explode(task):
            raise ValueError("negative timestamp")

        monkeypatch.setattr(engine, "evaluate_cell", explode)
        with pytest.raises(SimulationError, match=
                           r"EPCM-MM x gcc.*ValueError: negative timestamp"):
            run_evaluation(architectures=("EPCM-MM",), workloads=("gcc",),
                           num_requests=300, seed=9)

    def test_queue_depth_in_annotation(self):
        task = EvalTask("EPCM-MM", "gcc", 100, 1, queue_depth=4)
        assert "queue_depth=4" in task.describe()
        assert "queue_depth" not in EvalTask("EPCM-MM", "gcc", 100, 1
                                             ).describe()


class TestQueueDepthOverride:
    def test_controller_for_override(self):
        default = controller_for("EPCM-MM")
        shallow = controller_for("EPCM-MM", queue_depth=4)
        assert shallow.queue_depth == 4
        assert shallow is not default
        assert controller_for("EPCM-MM", queue_depth=4) is shallow

    def test_depths_share_one_device_build(self):
        """Distinct queue depths (and store fingerprinting) must reuse
        one cached device model per architecture."""
        assert controller_for("EPCM-MM").device \
            is controller_for("EPCM-MM", queue_depth=4).device
        assert engine.device_for("EPCM-MM") \
            is controller_for("EPCM-MM").device

    def test_override_changes_cell_results(self):
        base = evaluate_cell(EvalTask("EPCM-MM", "gcc", 500, 3))
        shallow = evaluate_cell(EvalTask("EPCM-MM", "gcc", 500, 3,
                                         queue_depth=1))
        assert shallow.latencies_ns != base.latencies_ns


class TestCaches:
    def test_trace_cache_shares_instances(self):
        a = cached_trace_arrays("gcc", 700, 4)
        b = cached_trace_arrays("gcc", 700, 4)
        assert a is b
        assert not a.addresses.flags.writeable

    def test_controller_cache_shares_instances(self):
        assert controller_for("EPCM-MM") is controller_for("EPCM-MM")

    def test_cached_trace_survives_simulation(self):
        """Running a cached trace must not mutate it (the controller's
        object path rewrites arrivals; the array path must not)."""
        trace = cached_trace_arrays("omnetpp", 500, 6)
        before = trace.arrivals_ns.copy()
        controller_for("2D_DDR3").run_arrays(trace)
        assert (trace.arrivals_ns == before).all()


class TestKernelDispatchCounters:
    """Per-reason fast-path accounting, pinned exactly across serial
    engine runs (workers=1 keeps the counters in this process)."""

    def test_grid_runs_entirely_on_kernels(self):
        """Every cell of this grid dispatches to a kernel: COSMOS to
        the global-queue twin, EPCM/DDR3 to the shared-bus twin —
        zero fallbacks of any reason."""
        controller_mod.reset_kernel_counters()
        run_evaluation(architectures=ARCHS, workloads=WORKLOADS,
                       num_requests=400, seed=7, workers=1)
        assert controller_mod.kernel_counters() == {
            "fast": 9,
            "fast_per_bank": 0,
            "fast_shared_bus": 6,
            "fast_global_queue": 3,
            "twin_per_bank": 0,
            "fallback_device": 0,
            "fallback_admission": 0,
            "fallback_toolchain": 0,
        }

    def test_disabled_classes_count_device_fallbacks(self):
        previous = controller_mod.set_disabled_fast_classes(
            controller_mod.KERNEL_CLASSES)
        try:
            controller_mod.reset_kernel_counters()
            run_evaluation(architectures=ARCHS, workloads=WORKLOADS[:1],
                           num_requests=200, seed=1, workers=1)
            counters = controller_mod.kernel_counters()
        finally:
            controller_mod.set_disabled_fast_classes(previous)
        assert counters["fallback_device"] == 3
        assert counters["fast"] == 0
        assert counters["fallback_toolchain"] == 0

    def test_missing_toolchain_counted_per_cell(self, monkeypatch):
        """REPRO_FASTLOOP=0: one toolchain fallback per compiled-twin
        cell, while the pure-numpy per-bank kernel keeps dispatching."""
        monkeypatch.setenv(_fastloop.FASTLOOP_ENV_VAR, "0")
        controller_mod.reset_kernel_counters()
        run_evaluation(architectures=ARCHS + ("COMET",),
                       workloads=WORKLOADS[:1],
                       num_requests=200, seed=1, workers=1)
        counters = controller_mod.kernel_counters()
        assert counters["fallback_toolchain"] == 3
        assert counters["fast_per_bank"] == 1
        assert counters["fast"] == 1
        assert counters["fallback_device"] == 0

    def test_admission_revert_is_a_marker_not_a_terminal(self):
        """A binding per-bank stamp reverts the cell to the global-queue
        model, which the compiled twin then serves: the revert marker
        and the terminal kernel dispatch are counted side by side."""
        controller_mod.reset_kernel_counters()
        evaluate_cell(EvalTask("COMET", "lbm", 1500, 1, queue_depth=8))
        counters = controller_mod.kernel_counters()
        assert counters["fallback_admission"] == 1
        assert counters["fast_global_queue"] == 1
        assert counters["fast"] == 1
        assert counters["fast_per_bank"] == 0

    def test_dispatch_summary_reconciles(self):
        controller_mod.reset_kernel_counters()
        run_evaluation(architectures=ARCHS, workloads=WORKLOADS,
                       num_requests=300, seed=2, workers=1)
        summary = kernel_dispatch_summary(controller_mod.kernel_counters())
        assert summary["scheduled"] == 9
        assert summary["fast"] == 9
        assert summary["hit_rate"] == 1.0
        assert summary["per_class"] == {
            "per_bank": 0, "shared_bus": 6, "global_queue": 3}
        assert summary["fallbacks"] == {
            "device": 0, "toolchain": 0, "admission_reverts": 0}


class TestWorkloadLookup:
    def test_build_workload_returns_presets(self):
        from repro.errors import ConfigError
        from repro.sim.factory import build_workload
        from repro.sim.tracegen import WORKLOAD_NAMES
        for name in WORKLOAD_NAMES:
            assert build_workload(name).name == name
        with pytest.raises(ConfigError):
            build_workload("nope")

    def test_mix_rejects_mismatched_line_sizes(self):
        from repro.errors import TraceError
        from repro.sim.tracegen import MixedWorkload, SyntheticWorkload
        a = SyntheticWorkload(name="a", mean_interarrival_ns=2.0,
                              read_fraction=0.8, sequential_probability=0.1,
                              working_set_bytes=2**20, line_bytes=64)
        b = SyntheticWorkload(name="b", mean_interarrival_ns=2.0,
                              read_fraction=0.8, sequential_probability=0.1,
                              working_set_bytes=2**20, line_bytes=128)
        with pytest.raises(TraceError):
            MixedWorkload(name="bad_mix", components=(a, b))

    def test_env_worker_override_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "4x")
        with pytest.raises(SimulationError):
            run_evaluation(architectures=("EPCM-MM",), workloads=("gcc",),
                           num_requests=100)
