"""Sanitized-kernel smoke test: the CI driver for the kernel-sanitize job.

Recompiles the exact-twin C kernel (``repro.sim._fastloop``) under
AddressSanitizer and UndefinedBehaviorSanitizer and runs the cross-tier
equivalence suites against the instrumented builds, so memory errors and
UB in the twin fail CI instead of silently corrupting schedules.

Per sanitizer the script

1. probes, in a throwaway subprocess, whether the local toolchain can
   compile a trivial sanitized shared object *and* dlopen it into a
   plain CPython process (ASan needs ``LD_PRELOAD=libasan.so`` for
   that; TSan's preload is broken on some toolchains) — unsupported
   legs are skipped with a note, never failed;
2. asserts the instrumented kernel actually loads
   (``_fastloop.available()`` is True under ``REPRO_FASTLOOP_SANITIZE``)
   — without this the equivalence suites would silently fall back to
   the Python reference path and pass vacuously;
3. runs the kernel equivalence and scheduler suites under the
   sanitizer, with the build cache pointed at a temp dir so
   instrumented artifacts never touch the production cache.

Exit codes: 0 = all supported legs passed (or every leg skipped on an
unsupported toolchain), 1 = a supported leg failed.

Usage::

    PYTHONPATH=src python examples/sanitize_smoke.py
"""

import os
import shutil
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Suites that exercise the compiled twin against the Python reference.
EQUIVALENCE_SUITES = [
    "tests/property/test_kernel_equivalence.py",
    "tests/sim/test_controller_kernel.py",
    "tests/sim/test_controller_shared_bus_kernel.py",
]

#: Sanitizer legs, in the order they run.  ``required`` legs fail the
#: script when unsupported toolchains are the *only* reason nothing ran.
LEGS = ["asan", "ubsan", "tsan"]

_PROBE_C = textwrap.dedent(
    """
    int probe_value(void) { return 42; }
    """
)

_PROBE_PY = textwrap.dedent(
    """
    import ctypes, sys
    lib = ctypes.CDLL(sys.argv[1])
    sys.exit(0 if lib.probe_value() == 42 else 1)
    """
)


def _cc() -> str:
    return os.environ.get("CC", "cc")


def _libasan_path() -> str:
    out = subprocess.run(
        [_cc(), "-print-file-name=libasan.so"],
        capture_output=True, text=True, check=False,
    )
    path = out.stdout.strip()
    # An unresolved lookup echoes the bare name back.
    return path if "/" in path else ""


def leg_env(leg: str) -> dict:
    """Environment overrides that make a sanitized .so loadable from
    an uninstrumented CPython interpreter."""
    env = {}
    if leg == "asan":
        libasan = _libasan_path()
        if libasan:
            env["LD_PRELOAD"] = libasan
        # CPython's arenas look like leaks to LSan; leak checking is
        # not what this job is for.
        env["ASAN_OPTIONS"] = "detect_leaks=0"
    elif leg == "ubsan":
        env["UBSAN_OPTIONS"] = "print_stacktrace=1"
    elif leg == "tsan":
        libtsan = _probe_lib("libtsan.so")
        if libtsan:
            env["LD_PRELOAD"] = libtsan
    return env


def _probe_lib(name: str) -> str:
    out = subprocess.run(
        [_cc(), f"-print-file-name={name}"],
        capture_output=True, text=True, check=False,
    )
    path = out.stdout.strip()
    return path if "/" in path else ""


def probe_leg(leg: str, flags: tuple) -> bool:
    """True when a trivial ``-fsanitize=<leg>`` shared object both
    compiles and dlopens in a fresh interpreter with the leg's env."""
    with tempfile.TemporaryDirectory(prefix=f"sanprobe-{leg}-") as tmp:
        src = Path(tmp) / "probe.c"
        so = Path(tmp) / "probe.so"
        src.write_text(_PROBE_C)
        compiled = subprocess.run(
            [_cc(), "-O1", "-fPIC", "-shared", *flags,
             str(src), "-o", str(so)],
            capture_output=True, check=False,
        )
        if compiled.returncode != 0 or not so.exists():
            return False
        env = dict(os.environ)
        env.update(leg_env(leg))
        loaded = subprocess.run(
            [sys.executable, "-c", _PROBE_PY, str(so)],
            capture_output=True, env=env, check=False, timeout=60,
        )
        return loaded.returncode == 0


def run_leg(leg: str, cache_dir: str) -> bool:
    """Run the equivalence suites under one sanitizer.  Returns pass/fail."""
    env = dict(os.environ)
    env.update(leg_env(leg))
    env["REPRO_FASTLOOP_SANITIZE"] = leg
    env["REPRO_FASTLOOP_CACHE"] = cache_dir
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    # Preflight: the instrumented twin must actually load.  If it does
    # not, the suites below would exercise the Python fallback and this
    # job would be green while testing nothing.
    preflight = subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.sim import _fastloop; "
         "sys.exit(0 if _fastloop.available() else 1)"],
        capture_output=True, text=True, env=env, check=False, timeout=300,
    )
    if preflight.returncode != 0:
        print(f"[{leg}] FAIL: sanitized kernel did not load "
              f"(equivalence run would be vacuous)")
        sys.stdout.write(preflight.stdout)
        sys.stderr.write(preflight.stderr)
        return False
    print(f"[{leg}] instrumented kernel loaded; running equivalence suites")

    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *EQUIVALENCE_SUITES],
        cwd=REPO_ROOT, env=env, check=False,
    )
    return result.returncode == 0


def main() -> int:
    if shutil.which(_cc()) is None:
        print("SKIP: no C compiler on PATH; sanitized builds unavailable")
        return 0

    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.sim import _fastloop

    failures = []
    ran = []
    for leg in LEGS:
        flags = _fastloop._SANITIZER_FLAGS[leg]
        if not probe_leg(leg, flags):
            print(f"[{leg}] SKIP: toolchain cannot build+load "
                  f"-fsanitize={leg} shared objects")
            continue
        with tempfile.TemporaryDirectory(prefix=f"sancache-{leg}-") as cache:
            ok = run_leg(leg, cache)
        ran.append(leg)
        if not ok:
            failures.append(leg)
            print(f"[{leg}] FAIL")
        else:
            print(f"[{leg}] PASS")

    if not ran:
        print("SKIP: no sanitizer leg supported on this toolchain")
        return 0
    if failures:
        print(f"sanitize smoke: FAILED legs: {', '.join(failures)}")
        return 1
    print(f"sanitize smoke: all legs passed ({', '.join(ran)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
