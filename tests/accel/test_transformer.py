"""Transformer traffic models (DeiT-T / DeiT-B)."""

import pytest

from repro.accel.transformer import DEIT_BASE, DEIT_TINY, TransformerConfig
from repro.errors import ConfigError


class TestParameterCounts:
    def test_deit_tiny_params(self):
        """DeiT-T is a ~5.7 M parameter model."""
        assert DEIT_TINY.total_params == pytest.approx(5.7e6, rel=0.05)

    def test_deit_base_params(self):
        """DeiT-B is a ~86 M parameter model."""
        assert DEIT_BASE.total_params == pytest.approx(86e6, rel=0.05)

    def test_base_much_bigger_than_tiny(self):
        assert DEIT_BASE.total_params > 10 * DEIT_TINY.total_params


class TestTraffic:
    def test_reads_dominated_by_weights(self):
        assert DEIT_TINY.read_fraction > 0.5
        assert DEIT_BASE.read_fraction > DEIT_TINY.read_fraction

    def test_batch_scales_activations_not_weights(self):
        single = DEIT_TINY.inference_read_bytes(batch=1)
        double = DEIT_TINY.inference_read_bytes(batch=2)
        # weights are read once per batch, activations scale
        assert single < double < 2 * single

    def test_total_is_reads_plus_writes(self):
        assert DEIT_TINY.inference_total_bytes() == (
            DEIT_TINY.inference_read_bytes()
            + DEIT_TINY.inference_write_bytes())

    def test_batch_validation(self):
        with pytest.raises(ConfigError):
            DEIT_TINY.inference_read_bytes(batch=0)


class TestValidation:
    def test_heads_must_divide_dim(self):
        with pytest.raises(ConfigError):
            TransformerConfig("bad", 2, 100, 3, 4.0, 16)

    def test_positive_dimensions(self):
        with pytest.raises(ConfigError):
            TransformerConfig("bad", 0, 64, 2, 4.0, 16)
