"""Unit helpers: decibel conversions and SI prefixes.

The photonic power models in the paper mix linear power (mW at a GST cell),
decibel losses (Table I) and dBm launch powers. Centralising the
conversions keeps every loss budget in the code base consistent.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

Number = Union[float, np.ndarray]

# ---------------------------------------------------------------------------
# Decibel conversions
# ---------------------------------------------------------------------------


def db_to_linear(db: Number) -> Number:
    """Convert a power ratio expressed in dB to a linear ratio.

    >>> db_to_linear(3.0103)
    2.0000...
    """
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0) if isinstance(
        db, np.ndarray
    ) else 10.0 ** (db / 10.0)


def linear_to_db(ratio: Number) -> Number:
    """Convert a linear power ratio to dB.  Raises on non-positive input."""
    arr = np.asarray(ratio, dtype=float)
    if np.any(arr <= 0.0):
        raise ValueError(f"power ratio must be positive, got {ratio}")
    out = 10.0 * np.log10(arr)
    return out if isinstance(ratio, np.ndarray) else float(out)


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts.

    >>> dbm_to_watts(0.0)
    0.001
    """
    return 1e-3 * 10.0 ** (dbm / 10.0)


def watts_to_dbm(watts: float) -> float:
    """Convert a power level in watts to dBm."""
    if watts <= 0.0:
        raise ValueError(f"power must be positive, got {watts}")
    return 10.0 * math.log10(watts / 1e-3)


def transmission_to_loss_db(transmission: Number) -> Number:
    """Loss in dB corresponding to a transmission fraction in (0, 1]."""
    arr = np.asarray(transmission, dtype=float)
    if np.any(arr <= 0.0) or np.any(arr > 1.0 + 1e-12):
        raise ValueError(f"transmission must be in (0, 1], got {transmission}")
    out = -10.0 * np.log10(arr)
    return out if isinstance(transmission, np.ndarray) else float(out)


def loss_db_to_transmission(loss_db: Number) -> Number:
    """Transmission fraction corresponding to a non-negative loss in dB."""
    arr = np.asarray(loss_db, dtype=float)
    if np.any(arr < -1e-12):
        raise ValueError(f"loss must be non-negative, got {loss_db}")
    out = 10.0 ** (-arr / 10.0)
    return out if isinstance(loss_db, np.ndarray) else float(out)


# ---------------------------------------------------------------------------
# Extinction / absorption coefficient conversions
# ---------------------------------------------------------------------------


def kappa_to_alpha_per_m(kappa: Number, wavelength_m: float) -> Number:
    """Field extinction coefficient -> intensity absorption coefficient [1/m].

    ``alpha = 4 * pi * kappa / lambda`` (intensity attenuation,
    ``I(z) = I0 * exp(-alpha z)``).
    """
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    return 4.0 * math.pi * kappa / wavelength_m


def alpha_per_m_to_db_per_m(alpha_per_m: Number) -> Number:
    """Convert an intensity absorption coefficient [1/m] to dB/m."""
    return 10.0 * alpha_per_m / math.log(10.0)


def kappa_to_db_per_m(kappa: Number, wavelength_m: float) -> Number:
    """Extinction coefficient -> propagation loss in dB/m."""
    return alpha_per_m_to_db_per_m(kappa_to_alpha_per_m(kappa, wavelength_m))


# ---------------------------------------------------------------------------
# SI prefixes (readability helpers for configs and reports)
# ---------------------------------------------------------------------------

NM = 1e-9
UM = 1e-6
MM = 1e-3
CM = 1e-2

NS = 1e-9
US = 1e-6
MS = 1e-3

PJ = 1e-12
NJ = 1e-9

MW = 1e-3
UW = 1e-6

GB = 2**30
GIB = 2**30


def nm(value: float) -> float:
    """Meters from nanometers."""
    return value * NM


def um(value: float) -> float:
    """Meters from micrometers."""
    return value * UM


def ns(value: float) -> float:
    """Seconds from nanoseconds."""
    return value * NS


def mw(value: float) -> float:
    """Watts from milliwatts."""
    return value * MW


def pj(value: float) -> float:
    """Joules from picojoules."""
    return value * PJ
