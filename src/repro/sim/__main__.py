"""Command-line simulator runner.

Run a synthetic workload::

    python -m repro.sim --arch COMET --workload mcf --requests 20000

or an NVMain trace file::

    python -m repro.sim --arch 2D_DDR3 --trace path/to/trace.nvt
"""

from __future__ import annotations

import argparse
import sys

from .factory import ARCHITECTURE_NAMES
from .simulator import MainMemorySimulator
from .trace import TraceReader
from .tracegen import SPEC_WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sim",
        description="Trace-driven main-memory simulation (NVMain substitute)",
    )
    parser.add_argument("--arch", required=True, choices=ARCHITECTURE_NAMES,
                        help="architecture to simulate")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=sorted(SPEC_WORKLOADS),
                        help="synthetic SPEC-like workload")
    source.add_argument("--trace", help="NVMain trace file")
    parser.add_argument("--requests", type=int, default=20_000,
                        help="request count for synthetic workloads")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cpu-ghz", type=float, default=2.0,
                        help="CPU frequency for trace cycle conversion")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    simulator = MainMemorySimulator(args.arch)
    if args.workload:
        stats = simulator.run_workload(args.workload, args.requests, args.seed)
    else:
        requests = TraceReader(args.trace, cpu_freq_ghz=args.cpu_ghz).read_all()
        stats = simulator.run(requests, workload_name=args.trace)
    print(f"architecture : {stats.device_name}")
    print(f"workload     : {stats.workload_name}")
    print(f"requests     : {stats.num_requests} "
          f"({stats.num_reads} R / {stats.num_writes} W)")
    print(f"bandwidth    : {stats.bandwidth_gbps:.2f} GB/s")
    print(f"avg latency  : {stats.avg_latency_ns:.1f} ns "
          f"(p95 {stats.p95_latency_ns:.1f} ns)")
    print(f"EPB          : {stats.energy_per_bit_pj:.1f} pJ/bit")
    print(f"BW/EPB       : {stats.bw_per_epb:.4f}")
    if stats.row_hits or stats.row_misses:
        print(f"row hit rate : {stats.row_hit_rate:.1%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
