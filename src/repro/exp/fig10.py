"""Fig. 10 — EPB of the DOTA accelerator with each main memory.

DeiT-T and DeiT-B inference traffic through every candidate memory, plus
the electro-optic conversion tax electronic memories pay at the photonic
tensor core's boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..accel.dota import DotaResult, dota_case_study
from .report import print_table

#: Paper-reported Fig. 10 ratios (COMET vs other, per model).
PAPER_RATIOS = {
    ("DeiT-T", "3D_DDR4"): 1.3,
    ("DeiT-B", "3D_DDR4"): 2.06,
    ("DeiT-T", "COSMOS"): 2.7,
    ("DeiT-B", "COSMOS"): 1.45,
}


@dataclass
class Fig10Result:
    results: Dict[str, Dict[str, DotaResult]]

    def ratio(self, model: str, other: str) -> float:
        """How much lower COMET's system EPB is than ``other``'s."""
        per_mem = self.results[model]
        return per_mem[other].system_epb_pj / per_mem["COMET"].system_epb_pj


def run(num_requests: int = 6000) -> Fig10Result:
    return Fig10Result(results=dota_case_study(num_requests=num_requests))


def main() -> Fig10Result:
    result = run()
    for model, per_mem in result.results.items():
        rows = []
        for memory, res in per_mem.items():
            rows.append([
                memory,
                f"{res.memory_epb_pj:.1f}",
                f"{res.conversion_pj_per_bit:.1f}",
                f"{res.system_epb_pj:.1f}",
            ])
        print_table(
            ["memory", "memory EPB (pJ/b)", "conversion (pJ/b)",
             "system EPB (pJ/b)"],
            rows, title=f"Fig. 10 — DOTA + {model}",
        )
    print("COMET ratios (measured | paper):")
    for (model, other), paper in PAPER_RATIOS.items():
        print(f"  {model} vs {other}: {result.ratio(model, other):5.2f}x "
              f"| {paper:.2f}x")
    print()
    return result


if __name__ == "__main__":
    main()
