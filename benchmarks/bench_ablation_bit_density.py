"""Ablation — bit density end to end (Fig. 7's choice, carried to Fig. 9).

The paper picks b=4 from the power stacks alone (capacity and line
bandwidth are equal by construction).  This bench carries the three
densities through the full simulator: equal bandwidth, EPB ordered by the
power stacks — confirming the power study is the whole story.
"""

from repro.arch.comet import CometArchitecture
from repro.sim import MainMemorySimulator
from repro.sim.factory import build_comet_device


def bench_ablation_bit_density_end_to_end(benchmark):
    def run():
        results = {}
        for bits in (1, 2, 4):
            device = build_comet_device(CometArchitecture(bits_per_cell=bits))
            stats = MainMemorySimulator(device).run_workload("milc", 4000)
            results[bits] = stats
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for bits, stats in sorted(results.items()):
        print(f"  COMET-{bits}b: {stats.bandwidth_gbps:7.2f} GB/s, "
              f"{stats.energy_per_bit_pj:7.1f} pJ/b")

    # Same line size and timings -> same bandwidth across densities.
    bw = [results[b].bandwidth_gbps for b in (1, 2, 4)]
    assert max(bw) / min(bw) < 1.05
    # EPB follows the Fig. 7 power ordering: b=4 cheapest.
    assert results[4].energy_per_bit_pj < results[2].energy_per_bit_pj \
        < results[1].energy_per_bit_pj
