"""Table II — architectural details, with device-derived validation.

Prints both photonic memory configurations and compares the COMET timing
values against what our device + circuit models derive from first
principles (Section III.B pulses, EO tuning, GST switch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.comet import CometArchitecture
from ..arch.timing import DerivedTimings
from ..config import COMET_TIMINGS, COSMOS_TIMINGS, PhotonicMemoryTimings
from .report import print_table


@dataclass
class Table2Result:
    comet: PhotonicMemoryTimings
    cosmos: PhotonicMemoryTimings
    derived: DerivedTimings


def run() -> Table2Result:
    arch = CometArchitecture()
    return Table2Result(
        comet=COMET_TIMINGS,
        cosmos=COSMOS_TIMINGS,
        derived=arch.derived_timings(),
    )


def main() -> Table2Result:
    result = run()
    rows = []
    for cfg in (result.comet, result.cosmos):
        rows.append([
            cfg.name, cfg.banks, cfg.bus_width_bits, cfg.burst_length,
            f"{cfg.write_time_ns:.0f}", f"{cfg.erase_time_ns:.0f}",
            f"{cfg.read_time_ns:.0f}", f"{cfg.data_burst_time_ns:.0f}",
            f"{cfg.electrical_interface_delay_ns:.0f}",
        ])
    print_table(
        ["system", "banks", "bus (bits)", "burst", "write (ns)",
         "erase (ns)", "read (ns)", "burst (ns)", "interface (ns)"],
        rows, title="Table II — photonic memory configurations",
    )
    derived = result.derived
    print_table(
        ["timing", "derived (ns)", "Table II (ns)"],
        [
            ["read", f"{derived.read_time_ns:.1f}",
             f"{result.comet.read_time_ns:.0f}"],
            ["max write", f"{derived.max_write_time_ns:.1f}",
             f"{result.comet.write_time_ns:.0f}"],
            ["erase", f"{derived.erase_time_ns:.1f}",
             f"{result.comet.erase_time_ns:.0f}"],
        ],
        title="COMET timings derived from the device/circuit models",
    )
    return result


if __name__ == "__main__":
    main()
