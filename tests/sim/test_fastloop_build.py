"""Build-cache behavior of the compiled twin: sanitizer builds land in
separate cache entries (salted hash + filename suffix, never colliding
with the production ``.so``), a corrupt/partial cached artifact triggers
one rebuild instead of a ctypes load error, and unknown
``REPRO_FASTLOOP_SANITIZE`` tokens fail loudly rather than silently
handing back an uninstrumented twin."""

import os
import re
import subprocess
import sys

import numpy as np
import pytest

from repro.sim import _fastloop

requires_cc = pytest.mark.skipif(
    not _fastloop.available(), reason="no C toolchain in this environment")


@pytest.fixture
def fresh_cache(monkeypatch, tmp_path):
    """Point the twin at an empty cache dir and re-probe around the
    test, so nothing here can disturb the session-wide artifact."""
    monkeypatch.setenv(_fastloop.CACHE_ENV_VAR, str(tmp_path))
    monkeypatch.delenv(_fastloop.SANITIZE_ENV_VAR, raising=False)
    _fastloop.reset_probe()
    yield tmp_path
    _fastloop.reset_probe()


def _probe_in_subprocess(cache):
    """Probe the twin in a fresh interpreter.  dlopen caches handles by
    pathname within a process, so corrupt-then-rebuild behavior is only
    observable from a process that has not loaded the artifact yet —
    which is also the real failure scenario (a cold process finding a
    partial artifact a killed build left behind)."""
    env = dict(os.environ, REPRO_FASTLOOP_CACHE=str(cache))
    env.pop(_fastloop.SANITIZE_ENV_VAR, None)
    return subprocess.run(
        [sys.executable, "-c",
         "import sys; from repro.sim import _fastloop; "
         "sys.exit(0 if _fastloop.available() else 1)"],
        env=env, capture_output=True, timeout=180)


def _loop_args(per_bank=False):
    return dict(
        bank_idx=np.array([0, 1, 0, 1, 0], dtype=np.int64),
        array_ns=np.array([20.0, 25.0, 20.0, 25.0, 20.0]),
        arrivals=np.array([0.0, 5.0, 10.0, 12.0, 20.0]),
        turn=np.array([0.0, 4.0, 0.0, 4.0, 0.0]),
        queue_depth=2, banks=2, burst=10.0,
        shared_bus=not per_bank, overlap=False,
        has_refresh=not per_bank, interval=100.0, duration=15.0,
        per_bank=per_bank, bank_queue_depth=4,
    )


class TestSanitizeTokens:
    def test_parsing_dedupes_sorts_and_normalizes(self, monkeypatch):
        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR,
                           " ubsan , UBSAN,, asan")
        assert _fastloop.sanitize_tokens() == ("asan", "ubsan")

    def test_empty_means_production(self, monkeypatch):
        monkeypatch.delenv(_fastloop.SANITIZE_ENV_VAR, raising=False)
        assert _fastloop.sanitize_tokens() == ()
        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR, " , ")
        assert _fastloop.sanitize_tokens() == ()

    def test_unknown_token_raises(self, monkeypatch):
        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR, "asan,bogus")
        with pytest.raises(ValueError, match="bogus"):
            _fastloop.sanitize_tokens()

    def test_unknown_token_fails_the_probe_loudly(self, monkeypatch,
                                                  tmp_path):
        """A typo'd sanitizer list must not quietly produce an
        uninstrumented twin: the availability probe itself raises."""
        monkeypatch.setenv(_fastloop.CACHE_ENV_VAR, str(tmp_path))
        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR, "adsan")
        _fastloop.reset_probe()
        try:
            with pytest.raises(ValueError, match="adsan"):
                _fastloop.available()
        finally:
            _fastloop.reset_probe()


@requires_cc
class TestBuildCache:
    def test_production_artifact_has_no_sanitizer_suffix(self,
                                                         fresh_cache):
        assert _fastloop.available()
        names = sorted(p.name for p in fresh_cache.glob("*.so"))
        assert len(names) == 1
        assert re.fullmatch(r"fastloop-[0-9a-f]{16}\.so", names[0])

    def test_corrupt_cached_so_triggers_rebuild(self, tmp_path):
        """Garbage where the cached artifact should be (a build killed
        mid-copy) must rebuild in the next process, not surface a
        ctypes load error or a permanent fallback_toolchain."""
        assert _probe_in_subprocess(tmp_path).returncode == 0
        [artifact] = tmp_path.glob("*.so")
        artifact.write_bytes(b"not an ELF file")
        assert _probe_in_subprocess(tmp_path).returncode == 0
        assert artifact.read_bytes()[:4] == b"\x7fELF"

    def test_truncated_so_triggers_rebuild(self, tmp_path):
        """A valid-ELF-prefix truncation (partial copy) also rebuilds."""
        assert _probe_in_subprocess(tmp_path).returncode == 0
        [artifact] = tmp_path.glob("*.so")
        artifact.write_bytes(artifact.read_bytes()[:100])
        assert _probe_in_subprocess(tmp_path).returncode == 0
        assert artifact.stat().st_size > 100

    def test_ubsan_build_is_separate_and_bit_identical(self, fresh_cache,
                                                       monkeypatch):
        """The UBSan twin lands in its own cache entry (distinct digest
        *and* a human-readable suffix) and returns results bit-identical
        to the production twin on both recurrence shapes."""
        assert _fastloop.available()
        baseline = {per_bank: _fastloop.schedule_loop(
            **_loop_args(per_bank)) for per_bank in (False, True)}

        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR, "ubsan")
        _fastloop.reset_probe()
        if not _fastloop.available():
            pytest.skip("toolchain lacks UBSan support")
        names = sorted(p.name for p in fresh_cache.glob("*.so"))
        assert len(names) == 2
        assert any(n.endswith("-ubsan.so") for n in names)
        prod, sanitized = [n for n in names if "-" not in n[9:]], \
            [n for n in names if n.endswith("-ubsan.so")]
        assert prod and sanitized
        assert prod[0][:25] != sanitized[0][:25]  # digests differ too

        for per_bank in (False, True):
            got = _fastloop.schedule_loop(**_loop_args(per_bank))
            want = baseline[per_bank]
            for got_arr, want_arr in zip(got[:3], want[:3]):
                assert np.array_equal(got_arr, want_arr)
            assert got[3] == want[3]

    def test_asan_without_preload_degrades_to_unavailable(self,
                                                          fresh_cache,
                                                          monkeypatch):
        """An ASan twin cannot dlopen into plain CPython — the runtime
        hard-exits the calling process from inside dlopen unless it was
        preloaded.  The probe test-loads sanitized artifacts in a
        subprocess first, so here it must degrade to the ordinary
        unavailable -> fallback_toolchain path (and production must
        recover afterwards), not take the interpreter down."""
        monkeypatch.delenv("LD_PRELOAD", raising=False)
        monkeypatch.setenv(_fastloop.SANITIZE_ENV_VAR, "asan")
        _fastloop.reset_probe()
        assert _fastloop.available() is False

        monkeypatch.delenv(_fastloop.SANITIZE_ENV_VAR)
        _fastloop.reset_probe()
        assert _fastloop.available()
