"""Bench — the reliability envelope: disturb, drift, endurance, WDM fit.

The "would a downstream user adopt this" checks: four quantitative
reliability questions the paper answers qualitatively (or not at all),
evaluated together.
"""

from repro.arch.endurance import EnduranceModel, StartGapWearLeveler
from repro.device.drift import TransmissionDriftModel
from repro.device.mlc import MultiLevelCell
from repro.device.thermal_crosstalk import comet_write_disturb_report
from repro.errors import ConfigError
from repro.photonics.wdm import comet_wavelength_plan, ring_addressability


def bench_reliability_envelope(benchmark):
    def run():
        disturb = comet_write_disturb_report()
        drift = TransmissionDriftModel()
        retention_ok = drift.retention_meets_spec(MultiLevelCell(4))
        retention_5b = drift.retention_meets_spec(MultiLevelCell(5))
        endurance = EnduranceModel()
        lifetime = endurance.lifetime_years(3.0 / 8)   # per-channel share
        leveler = StartGapWearLeveler(rows=512, gap_move_interval=100)
        for _ in range(5_000):
            leveler.record_write()
        try:
            plan_4b = comet_wavelength_plan(256)
            plan_feasible = not ring_addressability(plan_4b).aliased
        except ConfigError:
            plan_feasible = False
        return {
            "disturb": disturb,
            "retention_4b": retention_ok,
            "retention_5b": retention_5b,
            "lifetime_years": lifetime,
            "leveling_efficiency": leveler.leveling_efficiency(),
            "write_overhead": leveler.write_overhead(),
            "wdm_4b_feasible": plan_feasible,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  write-disturb free at COMET pitch: "
          f"{result['disturb']['comet_disturb_free']}")
    print(f"  min safe pitch: "
          f"{result['disturb']['minimum_safe_pitch_m'] * 1e6:.2f} um "
          f"(COMET pitch {result['disturb']['comet_pitch_m'] * 1e6:.0f} um)")
    print(f"  10-year retention: b=4 {result['retention_4b']}, "
          f"b=5 {result['retention_5b']}")
    print(f"  per-channel lifetime at Fig. 9 write load: "
          f"{result['lifetime_years']:.0f} years "
          f"(leveling eff. {result['leveling_efficiency']:.2f}, "
          f"overhead {result['write_overhead']:.1%})")
    print(f"  256-wavelength WDM plan feasible: {result['wdm_4b_feasible']}")

    # The envelope the architecture must satisfy:
    assert result["disturb"]["comet_disturb_free"]          # no write disturb
    assert result["retention_4b"]                           # 10-year data
    assert result["lifetime_years"] > 40.0                  # endurance
    assert result["leveling_efficiency"] > 0.9              # cheap leveling
    assert result["wdm_4b_feasible"]                        # comb fits
