"""SOA gain model."""

import pytest

from repro.errors import ConfigError
from repro.photonics.soa import SemiconductorOpticalAmplifier


class TestGain:
    def test_small_signal_gain(self):
        soa = SemiconductorOpticalAmplifier(gain_db=15.2)
        out = soa.amplify(1e-6)
        assert out == pytest.approx(1e-6 * 10 ** 1.52, rel=1e-9)

    def test_saturation_clamps_output(self):
        soa = SemiconductorOpticalAmplifier(
            gain_db=15.2, saturation_output_w=1e-3)
        assert soa.amplify(1e-3) == pytest.approx(1e-3)

    def test_zero_input(self):
        soa = SemiconductorOpticalAmplifier()
        assert soa.amplify(0.0) == 0.0

    def test_negative_input_rejected(self):
        with pytest.raises(ConfigError):
            SemiconductorOpticalAmplifier().amplify(-1e-3)


class TestPaperInstances:
    def test_intra_subarray_soa(self):
        soa = SemiconductorOpticalAmplifier.intra_subarray()
        assert soa.gain_db == pytest.approx(15.2)
        assert soa.electrical_power_w == pytest.approx(1.4e-3)
        assert soa.saturation_output_w == pytest.approx(1e-3)  # 0 dBm [29]

    def test_booster_soa(self):
        soa = SemiconductorOpticalAmplifier.booster()
        assert soa.gain_db == pytest.approx(20.0)


class TestStageCount:
    def test_stages_for_loss(self):
        soa = SemiconductorOpticalAmplifier(gain_db=15.2)
        assert soa.stages_for_loss(0.0) == 0
        assert soa.stages_for_loss(15.2) == 1
        assert soa.stages_for_loss(15.3) == 2
        assert soa.stages_for_loss(45.0) == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            SemiconductorOpticalAmplifier(gain_db=-1.0)
        with pytest.raises(ConfigError):
            SemiconductorOpticalAmplifier(saturation_output_w=0.0)
