"""Benchmark-suite configuration.

Every bench regenerates one paper artifact (table or figure), asserts its
qualitative shape, and — through pytest-benchmark — reports how long the
regeneration takes.  Heavy pipelines (the Fig. 9/10 simulator grids) run
single-round via ``benchmark.pedantic``; cheap device/material benches run
with normal calibration.

The suite uses ``bench_*.py`` / ``bench_*`` naming, which default pytest
collection ignores; the hooks below collect them **only** when benchmarks
are explicitly requested, so the tier-1 test run never picks them up.
Run with::

    pytest benchmarks/ --benchmark-only

or, without pytest-benchmark timing, ``REPRO_BENCH=1 pytest benchmarks/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


@pytest.fixture
def eval_store():
    """Result store named by ``$REPRO_RESULT_STORE``, or ``None``.

    The grid-backed benches route their simulation cells through
    ``evaluate_tasks(..., store=eval_store)``: cold runs measure a full
    regeneration and leave the cells behind; with the env var set, a
    second bench run is the *incremental* regeneration (only cells
    invalidated by model edits recompute).
    """
    root = os.environ.get("REPRO_RESULT_STORE")
    if not root:
        return None
    from repro.sim.store import ResultStore

    return ResultStore(root)


def _benchmarks_requested(config) -> bool:
    if os.environ.get("REPRO_BENCH"):
        return True
    try:
        return bool(config.getoption("--benchmark-only"))
    except (ValueError, KeyError):
        return False


def _explicit_args(config) -> set:
    """File/dir arguments on the command line (pytest always collects
    explicitly named files itself — don't collect those twice)."""
    return {Path(arg.split("::")[0]).resolve() for arg in config.args}


def pytest_collect_file(file_path, parent):
    if not _benchmarks_requested(parent.config):
        return None
    if file_path.suffix == ".py" and file_path.name.startswith("bench_"):
        if Path(str(file_path)).resolve() in _explicit_args(parent.config):
            return None
        return pytest.Module.from_parent(parent, path=file_path)
    return None


def pytest_pycollect_makeitem(collector, name, obj):
    """Collect ``bench_*`` functions inside the bench modules."""
    if not _benchmarks_requested(collector.config):
        return None
    if name.startswith("bench_") and callable(obj) \
            and collector.path.name.startswith("bench_"):
        return list(collector._genfunctions(name, obj))
    return None
