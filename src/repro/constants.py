"""Physical constants used across the COMET reproduction.

All values are CODATA-2018 in SI units. Only constants that the physics
models actually consume are defined here; architecture-level parameters
(Table I/II of the paper) live in :mod:`repro.config`.
"""

from __future__ import annotations

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Planck constant [J*s].
PLANCK = 6.626_070_15e-34

#: Planck constant [eV*s].
PLANCK_EV = 4.135_667_696e-15

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380_649e-23

#: Boltzmann constant [eV/K].
BOLTZMANN_EV = 8.617_333_262e-5

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602_176_634e-19

#: Vacuum permittivity [F/m].
VACUUM_PERMITTIVITY = 8.854_187_8128e-12

#: Room / ambient temperature assumed by the thermal models [K].
AMBIENT_TEMPERATURE_K = 300.0

#: Optical C-band edges used throughout the paper [m].
C_BAND_MIN_M = 1530e-9
C_BAND_MAX_M = 1565e-9

#: Reference telecom wavelength [m].
WAVELENGTH_1550_M = 1550e-9


def photon_energy_ev(wavelength_m: float) -> float:
    """Return the photon energy in eV for a vacuum wavelength in meters.

    >>> round(photon_energy_ev(1550e-9), 4)
    0.7999
    """
    if wavelength_m <= 0.0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    return PLANCK_EV * SPEED_OF_LIGHT / wavelength_m


def wavelength_from_energy_ev(energy_ev: float) -> float:
    """Return the vacuum wavelength in meters for a photon energy in eV."""
    if energy_ev <= 0.0:
        raise ValueError(f"photon energy must be positive, got {energy_ev}")
    return PLANCK_EV * SPEED_OF_LIGHT / energy_ev
