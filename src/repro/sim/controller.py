"""Memory controller: per-bank FCFS scheduling with bus and refresh.

The controller models what the paper's modified NVMain provides at the
granularity the evaluation needs:

* per-bank service with line-interleaved bank mapping (Section III.C),
* open-row tracking for DRAM devices (row hit vs miss timing),
* a shared data bus for electrical devices — photonic devices carry each
  bank on its own MDM mode, so their bursts do not contend,
* periodic all-bank refresh windows for DRAM,
* per-operation energy, gated active power (photonic laser/SOA only burn
  while serving), and background power.

Scheduling is FCFS per bank with banks progressing independently — the
bank-level parallelism that dominates these comparisons.  (NVMain's
FR-FCFS reordering mainly improves DRAM row hits; our traces model
locality directly, so FCFS keeps the comparison symmetric and simple.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import SimulationError
from .devices import MemoryDeviceModel
from .request import MemRequest
from .stats import SimStats


@dataclass
class _BankState:
    free_at_ns: float = 0.0
    open_row: Optional[int] = None
    busy_ns: float = 0.0


class MemoryController:
    """Executes a request stream against one device model.

    ``queue_depth`` models NVMain's finite transaction queue: at most that
    many requests are in flight; when the queue is full, later trace
    arrivals stall (throttled open loop), which is how the real simulator
    stretches execution time on slow memories instead of growing an
    unbounded queue.
    """

    DEFAULT_QUEUE_DEPTH = 32

    def __init__(self, device: MemoryDeviceModel,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH) -> None:
        if queue_depth < 1:
            raise SimulationError("queue depth must be at least 1")
        self.device = device
        self.queue_depth = queue_depth

    # ------------------------------------------------------------------

    def run(
        self,
        requests: List[MemRequest],
        workload_name: str = "trace",
    ) -> SimStats:
        """Simulate all requests (must be arrival-ordered); returns stats."""
        if not requests:
            raise SimulationError("empty request stream")
        device = self.device
        banks = [_BankState() for _ in range(device.banks)]
        bus_free_ns = 0.0
        bus_last_was_read: Optional[bool] = None
        op_energy = 0.0
        row_hits = 0
        row_misses = 0
        last_arrival = -1.0
        finish_times: List[float] = []

        for index, request in enumerate(requests):
            if request.arrival_ns < last_arrival:
                raise SimulationError("requests must be sorted by arrival")
            last_arrival = request.arrival_ns

            bank_index = device.bank_of(request)
            bank = banks[bank_index]

            admitted = request.arrival_ns
            if index >= self.queue_depth:
                # Transaction queue full until an older request finishes.
                admitted = max(admitted, finish_times[index - self.queue_depth])

            start = max(admitted, bank.free_at_ns)
            start = self._skip_refresh(start)

            row_hit = False
            if device.row_buffer is not None:
                row = device.row_of(request)
                if device.row_buffer.is_open_page:
                    row_hit = bank.open_row == row
                    bank.open_row = row
                else:
                    bank.open_row = None   # auto-precharged
                if row_hit:
                    row_hits += 1
                else:
                    row_misses += 1

            array_ns = device.array_time_ns(request, row_hit)
            burst_start = start + array_ns
            if device.shared_bus:
                bus_ready = bus_free_ns
                if (bus_last_was_read is not None
                        and bus_last_was_read != request.is_read):
                    bus_ready += device.bus_turnaround_ns
                burst_start = max(burst_start, bus_ready)
                burst_start = self._skip_refresh(burst_start)
            finish = burst_start + device.data_burst_ns
            if device.shared_bus:
                bus_free_ns = finish
                bus_last_was_read = request.is_read

            bank_release = finish
            if device.burst_overlaps_array:
                bank_release = max(start + array_ns, burst_start)
            bank.busy_ns += bank_release - start
            bank.free_at_ns = bank_release
            finish_times.append(finish)

            request.start_ns = start
            request.finish_ns = finish
            request.completion_ns = finish + device.interface_delay_ns
            # Latency is measured from queue admission (NVMain convention):
            # time stalled outside a full transaction queue is application
            # back-pressure, not memory latency.
            request.arrival_ns = admitted
            op_energy += device.op_energy_j(request)

        first_arrival = requests[0].arrival_ns
        last_completion = max(r.completion_ns for r in requests)
        sim_time = max(last_completion - first_arrival, 1e-9)
        busy = sum(b.busy_ns for b in banks)
        # Active power (photonic laser/SOA) is gated per accessed bank, so
        # the device-wide active power scales with the busy-bank fraction —
        # unless the device opts out of gating (always-on laser rail).
        if device.energy.gate_active_power:
            active = min(sim_time, busy / device.banks)
        else:
            active = sim_time

        refresh_count = 0
        refresh_energy = 0.0
        if device.refresh is not None:
            refresh_count = int(sim_time // device.refresh.interval_ns)
            refresh_energy = refresh_count * device.refresh.energy_j

        reads = sum(1 for r in requests if r.is_read)
        return SimStats(
            device_name=device.name,
            workload_name=workload_name,
            num_requests=len(requests),
            num_reads=reads,
            num_writes=len(requests) - reads,
            total_bytes=sum(r.size_bytes for r in requests),
            sim_time_ns=sim_time,
            busy_time_ns=busy,
            active_time_ns=active,
            latencies_ns=[r.latency_ns for r in requests],
            op_energy_j=op_energy,
            refresh_energy_j=refresh_energy,
            refresh_count=refresh_count,
            background_power_w=device.energy.background_power_w,
            active_power_w=device.energy.active_power_w,
            row_hits=row_hits,
            row_misses=row_misses,
        )

    # ------------------------------------------------------------------

    def _skip_refresh(self, time_ns: float) -> float:
        """Push a start time out of any refresh window it lands in."""
        refresh = self.device.refresh
        if refresh is None:
            return time_ns
        position = time_ns % refresh.interval_ns
        if position < refresh.duration_ns:
            return time_ns - position + refresh.duration_ns
        return time_ns
