"""Inter-cell thermal crosstalk in COMET's isolated-cell array.

The paper argues COMET is crosstalk-free because MR gating removes the
*optical* coupling path that corrupts the COSMOS crossbar (Section II.B).
A complete argument must also bound the *thermal* path: a 5 mW write
pulse deposits heat that conducts through the shared oxide toward the
neighbouring cell.  This module quantifies that bound.

For a heat pulse of power ``P`` and duration ``t`` in an infinite oxide
medium, the temperature rise at distance ``r`` is

    dT(r, t) = P / (4 * pi * k * r) * erfc( r / (2 * sqrt(alpha * t)) )

(the transient point-source solution; steady state as t -> inf).  With
COMET's ring-gated layout the cell pitch is set by the 6 um ring
diameter — neighbours sit >= ~10 um apart, far beyond the ~0.2 um
diffusion length of a 56 ns pulse, so the erfc term annihilates the
coupling.  The COSMOS crossbar's ~2 um pitch is inside the steady-state
danger zone, which is the thermal shadow of its optical problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfc

from ..errors import ConfigError

#: SiO2 thermal properties (matching repro.device.heat.THERMAL_LIBRARY).
OXIDE_CONDUCTIVITY_W_MK = 1.38
OXIDE_DIFFUSIVITY_M2_S = 1.38 / 1.63e6

#: COMET cell pitch: a 6 um-radius access ring per cell plus routing.
COMET_CELL_PITCH_M = 14e-6

#: COSMOS crossbar pitch: bare waveguide crossings.
COSMOS_CELL_PITCH_M = 2e-6


@dataclass(frozen=True)
class ThermalCrosstalkModel:
    """Point-source conduction model for neighbour heating."""

    conductivity_w_mk: float = OXIDE_CONDUCTIVITY_W_MK
    diffusivity_m2_s: float = OXIDE_DIFFUSIVITY_M2_S
    disturb_threshold_k: float = 130.0   # Tg(430 K) - ambient(300 K)

    def __post_init__(self) -> None:
        if self.conductivity_w_mk <= 0.0 or self.diffusivity_m2_s <= 0.0:
            raise ConfigError("thermal constants must be positive")
        if self.disturb_threshold_k <= 0.0:
            raise ConfigError("disturb threshold must be positive")

    def diffusion_length_m(self, pulse_duration_s: float) -> float:
        """Thermal diffusion length of a pulse: sqrt(alpha * t)."""
        if pulse_duration_s <= 0.0:
            raise ConfigError("pulse duration must be positive")
        return math.sqrt(self.diffusivity_m2_s * pulse_duration_s)

    def neighbor_temperature_rise_k(
        self,
        pulse_power_w: float,
        pulse_duration_s: float,
        distance_m: float,
    ) -> float:
        """Transient temperature rise at a neighbour cell."""
        if pulse_power_w < 0.0:
            raise ConfigError("power must be non-negative")
        if distance_m <= 0.0:
            raise ConfigError("distance must be positive")
        steady = pulse_power_w / (
            4.0 * math.pi * self.conductivity_w_mk * distance_m)
        spread = 2.0 * self.diffusion_length_m(pulse_duration_s)
        return steady * float(erfc(distance_m / spread))

    def steady_state_rise_k(self, pulse_power_w: float,
                            distance_m: float) -> float:
        """Worst case: continuous heating (t -> inf)."""
        if distance_m <= 0.0:
            raise ConfigError("distance must be positive")
        return pulse_power_w / (
            4.0 * math.pi * self.conductivity_w_mk * distance_m)

    def is_disturb_free(
        self,
        pulse_power_w: float,
        pulse_duration_s: float,
        distance_m: float,
        margin: float = 10.0,
    ) -> bool:
        """Neighbour rise at least ``margin`` x below the disturb window."""
        rise = self.neighbor_temperature_rise_k(
            pulse_power_w, pulse_duration_s, distance_m)
        return rise * margin < self.disturb_threshold_k

    def minimum_safe_pitch_m(
        self,
        pulse_power_w: float,
        pulse_duration_s: float,
        margin: float = 10.0,
    ) -> float:
        """Smallest pitch that stays disturb-free (bisection search)."""
        lo, hi = 1e-8, 1e-3
        if self.is_disturb_free(pulse_power_w, pulse_duration_s, lo, margin):
            return lo
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self.is_disturb_free(pulse_power_w, pulse_duration_s, mid,
                                    margin):
                hi = mid
            else:
                lo = mid
        return hi


def comet_write_disturb_report(
    pulse_power_w: float = 5e-3,
    pulse_duration_s: float = 56e-9,
) -> dict:
    """One-call summary used by tests and docs."""
    model = ThermalCrosstalkModel()
    return {
        "comet_pitch_m": COMET_CELL_PITCH_M,
        "cosmos_pitch_m": COSMOS_CELL_PITCH_M,
        "diffusion_length_m": model.diffusion_length_m(pulse_duration_s),
        "comet_neighbor_rise_k": model.neighbor_temperature_rise_k(
            pulse_power_w, pulse_duration_s, COMET_CELL_PITCH_M),
        "cosmos_steady_rise_k": model.steady_state_rise_k(
            pulse_power_w, COSMOS_CELL_PITCH_M),
        "comet_disturb_free": model.is_disturb_free(
            pulse_power_w, pulse_duration_s, COMET_CELL_PITCH_M),
        "minimum_safe_pitch_m": model.minimum_safe_pitch_m(
            pulse_power_w, pulse_duration_s),
    }
