"""Multi-level cell model: level maps, thresholds, loss tolerances.

Section III.B's cell stores ``2^b`` equally spaced transmission levels —
16 levels with 6 % spacing for the selected 4-bit cell.  Section III.C then
derives per-bit-density *loss tolerances*: how much optical loss a readout
can absorb before one level aliases into its neighbour (50 % / 3.01 dB at
b=1, 25 % / 1.2 dB at b=2, 6 % / 0.26 dB at b=4).  Those tolerances drive
the SOA placement and LUT sizing in :mod:`repro.arch.reliability`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ConfigError


def paper_loss_tolerance_fraction(bits_per_cell: int) -> float:
    """The Section III.C loss-tolerance fraction: ``2^-b``.

    >>> paper_loss_tolerance_fraction(1)
    0.5
    >>> paper_loss_tolerance_fraction(4)
    0.0625
    """
    if bits_per_cell < 1:
        raise ConfigError("bits per cell must be at least 1")
    return 2.0 ** (-bits_per_cell)


def paper_loss_tolerance_db(bits_per_cell: int) -> float:
    """Loss tolerance in dB: ``-10 log10(1 - 2^-b)``.

    Reproduces the paper's numbers: 3.01 dB (b=1), ~1.2 dB (b=2),
    ~0.26 dB (b=4).
    """
    fraction = paper_loss_tolerance_fraction(bits_per_cell)
    return -10.0 * math.log10(1.0 - fraction)


@dataclass(frozen=True)
class MultiLevelCell:
    """Level map of a ``b``-bit OPCM cell.

    Levels are equally spaced transmissions spanning
    ``[min_transmission, max_transmission]``; for the paper's 4-bit cell the
    defaults give 16 levels with exactly 6 % spacing. Level 0 is the
    brightest (most transmissive, most amorphous) state.
    """

    bits_per_cell: int = 4
    min_transmission: float = 0.05
    max_transmission: float = 0.95

    def __post_init__(self) -> None:
        if self.bits_per_cell < 1:
            raise ConfigError("bits per cell must be at least 1")
        if not 0.0 < self.min_transmission < self.max_transmission <= 1.0:
            raise ConfigError("transmission bounds must satisfy 0 < min < max <= 1")

    @classmethod
    def for_cell(cls, cell, bits_per_cell: int = 4,
                 margin: float = 0.001) -> "MultiLevelCell":
        """Level map spanning a specific cell's achievable range.

        The paper's 4-bit cell stores 16 levels with 6 % spacing — i.e. a
        ~90 % transmission span, which is what the designed cell's
        [T(crystalline), T(amorphous)] range provides.  This constructor
        ties the two together for a concrete :class:`OpticalGstCell`.
        """
        t_max = cell.transmission(0.0) - margin
        t_min = cell.transmission(1.0) + margin
        return cls(bits_per_cell=bits_per_cell,
                   min_transmission=t_min, max_transmission=t_max)

    @property
    def num_levels(self) -> int:
        return 2 ** self.bits_per_cell

    @property
    def level_spacing(self) -> float:
        """Transmission gap between adjacent levels (6 % for 4-bit)."""
        return (self.max_transmission - self.min_transmission) / (self.num_levels - 1)

    def level_transmissions(self) -> np.ndarray:
        """Transmission targets, brightest (level 0) first."""
        return np.linspace(
            self.max_transmission, self.min_transmission, self.num_levels
        )

    def transmission_for_level(self, level: int) -> float:
        """Target transmission of one level."""
        self._check_level(level)
        return float(self.level_transmissions()[level])

    def level_for_value(self, value: int) -> int:
        """Identity map for stored values (values are levels); bounds-checked."""
        self._check_level(value)
        return value

    # -- readout ------------------------------------------------------------

    def decide_level(self, measured_transmission: float) -> int:
        """Nearest-level decision on a measured transmission."""
        levels = self.level_transmissions()
        return int(np.argmin(np.abs(levels - measured_transmission)))

    def decision_thresholds(self) -> np.ndarray:
        """Midpoint thresholds between adjacent levels (descending)."""
        levels = self.level_transmissions()
        return (levels[:-1] + levels[1:]) / 2.0

    def readout_error(
        self, stored_level: int, loss_fraction: float
    ) -> bool:
        """Would a readout suffering ``loss_fraction`` decode the wrong level?"""
        self._check_level(stored_level)
        if not 0.0 <= loss_fraction < 1.0:
            raise ConfigError("loss fraction must be in [0, 1)")
        true_t = self.transmission_for_level(stored_level)
        measured = true_t * (1.0 - loss_fraction)
        return self.decide_level(measured) != stored_level

    # -- loss tolerance -------------------------------------------------------

    def loss_tolerance_fraction(self) -> float:
        """Worst-case tolerable loss before any level aliases downward.

        Computed from this level map (the brightest adjacent pair is the
        tightest); the paper's coarser ``2^-b`` rule is available as
        :func:`paper_loss_tolerance_fraction`.
        """
        levels = self.level_transmissions()
        # Losing exactly half the spacing relative to the stored level flips
        # the nearest-level decision.
        ratios = (levels[:-1] - levels[1:]) / (2.0 * levels[:-1])
        return float(np.min(ratios))

    def loss_tolerance_db(self) -> float:
        """Worst-case tolerable loss in dB from this level map."""
        return -10.0 * math.log10(1.0 - self.loss_tolerance_fraction())

    # -- helpers --------------------------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.num_levels:
            raise ConfigError(
                f"level {level} outside [0, {self.num_levels - 1}]"
            )

    def pack_values(self, values: List[int]) -> int:
        """Pack per-cell values into an integer (row readout helper)."""
        word = 0
        for value in values:
            self._check_level(value)
            word = (word << self.bits_per_cell) | value
        return word

    def unpack_values(self, word: int, cells: int) -> List[int]:
        """Inverse of :meth:`pack_values`."""
        if word < 0 or cells < 0:
            raise ConfigError("word and cell count must be non-negative")
        mask = self.num_levels - 1
        values = []
        for _ in range(cells):
            values.append(word & mask)
            word >>= self.bits_per_cell
        if word:
            raise ConfigError("word has more bits than the requested cells")
        return list(reversed(values))
