"""NVMain 2.0 trace format support.

NVMain traces are line-oriented text::

    <cycle> <R|W> <hex address> [<hex data>] [<thread id>]

Cycles are CPU cycles; NVMain converts with the CPU frequency.  The reader
accepts both the full format (with the 64-byte data payload NVMain's
tracer emits) and the compact form our generators write (no data).  Data
payloads are parsed but not retained — the performance model does not need
them (matching how the paper's evaluation uses the simulator).
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, TextIO, Union

from ..errors import TraceError
from .request import MemRequest, OpType

DEFAULT_CPU_FREQ_GHZ = 2.0


def parse_trace_line(
    line: str,
    cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ,
    line_bytes: int = 128,
) -> MemRequest:
    """Parse one NVMain trace line into a :class:`MemRequest`."""
    if cpu_freq_ghz <= 0.0:
        raise TraceError("CPU frequency must be positive")
    tokens = line.split()
    if len(tokens) < 3:
        raise TraceError(f"malformed trace line: {line!r}")
    try:
        cycle = int(tokens[0])
    except ValueError:
        raise TraceError(f"bad cycle count in line: {line!r}") from None
    try:
        op = OpType.from_token(tokens[1])
    except Exception:
        raise TraceError(f"bad operation in line: {line!r}") from None
    try:
        address = int(tokens[2], 16)
    except ValueError:
        raise TraceError(f"bad address in line: {line!r}") from None
    thread_id = 0
    if len(tokens) >= 4:
        # Token 3 is either a data payload (long hex) or a thread id.
        candidate = tokens[-1]
        if len(candidate) <= 4 and candidate.isdigit():
            thread_id = int(candidate)
    if cycle < 0:
        raise TraceError(f"negative cycle in line: {line!r}")
    return MemRequest(
        address=address,
        op=op,
        arrival_ns=cycle / cpu_freq_ghz,
        size_bytes=line_bytes,
        thread_id=thread_id,
    )


def format_trace_line(
    request: MemRequest,
    cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ,
) -> str:
    """Format a request as an NVMain trace line (compact form)."""
    cycle = int(round(request.arrival_ns * cpu_freq_ghz))
    return f"{cycle} {request.op.value} 0x{request.address:X} {request.thread_id}"


class TraceReader:
    """Iterates :class:`MemRequest` objects from an NVMain trace stream."""

    def __init__(
        self,
        source: Union[str, TextIO],
        cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ,
        line_bytes: int = 128,
    ) -> None:
        self._source = source
        self.cpu_freq_ghz = cpu_freq_ghz
        self.line_bytes = line_bytes

    def __iter__(self) -> Iterator[MemRequest]:
        if isinstance(self._source, str):
            with open(self._source, "r", encoding="utf-8") as handle:
                yield from self._iter_stream(handle)
        else:
            yield from self._iter_stream(self._source)

    def _iter_stream(self, stream: TextIO) -> Iterator[MemRequest]:
        for raw in stream:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield parse_trace_line(line, self.cpu_freq_ghz, self.line_bytes)

    def read_all(self) -> List[MemRequest]:
        """Materialize the whole trace."""
        return list(self)


class TraceWriter:
    """Writes requests as NVMain trace lines."""

    def __init__(
        self,
        sink: Union[str, TextIO],
        cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ,
    ) -> None:
        self._sink = sink
        self.cpu_freq_ghz = cpu_freq_ghz

    def write(self, requests: Iterable[MemRequest]) -> int:
        """Write all requests; returns the number written."""
        if isinstance(self._sink, str):
            with open(self._sink, "w", encoding="utf-8") as handle:
                return self._write_stream(handle, requests)
        return self._write_stream(self._sink, requests)

    def _write_stream(self, stream: TextIO, requests: Iterable[MemRequest]) -> int:
        count = 0
        for request in requests:
            stream.write(format_trace_line(request, self.cpu_freq_ghz) + "\n")
            count += 1
        return count


def roundtrip(requests: List[MemRequest],
              cpu_freq_ghz: float = DEFAULT_CPU_FREQ_GHZ) -> List[MemRequest]:
    """Write-then-read a request list (testing helper)."""
    buffer = io.StringIO()
    TraceWriter(buffer, cpu_freq_ghz).write(requests)
    buffer.seek(0)
    return TraceReader(buffer, cpu_freq_ghz).read_all()
