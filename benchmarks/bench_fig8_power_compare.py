"""Bench Fig. 8 — COSMOS vs COMET power stacks."""

from repro.exp.fig8 import run as run_fig8


def bench_fig8_power_comparison(benchmark):
    result = benchmark(run_fig8)

    # Paper: "COMET consumes only 26 % of the power" of COSMOS.
    assert 0.20 <= result.power_ratio <= 0.45
    # Stack composition: COSMOS is laser-dominated (5 mW row+column+erase
    # streams on 16 banks); COMET is SOA-dominated.
    assert result.cosmos.laser_w > result.cosmos.soa_w
    assert result.comet.soa_w > result.comet.laser_w
    # COSMOS has no EO-tuned rings.
    assert result.cosmos.tuning_w == 0.0
