"""Parallel evaluation engine: the (architecture x workload) grid runner.

The Fig. 9 evaluation — every architecture against every workload — is
embarrassingly parallel across grid cells, and each cell repeats two
expensive setups: generating the workload trace and building the device
model.  The engine removes both:

* **Per-process caches** — devices are built once per architecture and
  traces generated once per ``(workload, n, seed)`` (write-locked
  column arrays, shared read-only between cells).
* **Process fan-out** — with ``workers > 1`` the grid is mapped over a
  *persistent* ``multiprocessing`` pool in *workload-major* chunks.
  The pool survives across ``evaluate_tasks`` / ``run_evaluation`` /
  sweep calls (and therefore across server requests riding them), so
  repeated grid passes pay the fork cost once; it is torn down on
  process exit, on :func:`shutdown_worker_pool`, and by
  :func:`clear_device_caches` (workers hold the same memoized state the
  parent is invalidating).  Results come back in task order, so the
  output is deterministic and bit-identical to the serial path
  regardless of worker count or scheduling.
* **Zero-copy trace plane** — before fanning out, the parent publishes
  each distinct ``(workload, n, seed)`` trace into shared memory and
  ships workers a tiny :class:`~repro.sim.tracegen.TraceDescriptor`
  per task instead of having every worker regenerate (or unpickle) the
  column arrays; workers attach each segment once and share the
  physical pages.  Where shared memory is unavailable the descriptor is
  ``None`` and workers regenerate locally — identical results.
* **Serial fallback** — ``workers=1`` (the default) runs the same cells
  in-process; if a pool cannot be created (restricted sandboxes), the
  engine degrades to serial rather than failing.

``REPRO_EVAL_WORKERS`` sets the default worker count; the controller's
fast-path scheduler kernel (:meth:`MemoryController.run_arrays`) is the
per-cell hot path.  :func:`profile_snapshot` exposes per-phase wall
times (trace fetch vs simulation vs store I/O) for ``--profile``.
"""

from __future__ import annotations

import atexit
import dataclasses
import os
import time
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, List,
                    Optional, Sequence, Tuple)

from ..errors import ReproError, SimulationError, TraceError
from .controller import QUEUE_DEPTH_PER_CHANNEL, MemoryController
from .factory import ARCHITECTURE_NAMES, build_device, known_architectures
from .stats import SimStats
from .tracegen import (SPEC_WORKLOADS, TraceDescriptor, attach_trace_arrays,
                       cached_trace_arrays, clear_trace_plane, get_workload,
                       share_trace_arrays)

if TYPE_CHECKING:   # avoid a runtime cycle: store imports EvalTask
    from .devices import MemoryDeviceModel
    from .store import ResultStore

#: Environment override for the default worker count.
WORKERS_ENV_VAR = "REPRO_EVAL_WORKERS"

#: Set to ``0`` to disable the shared-memory trace plane (workers then
#: regenerate traces locally, the pre-plane behaviour).
TRACE_PLANE_ENV_VAR = "REPRO_TRACE_PLANE"

_DEVICE_CACHE: Dict[str, "MemoryDeviceModel"] = {}
_CONTROLLER_CACHE: Dict[Tuple[str, Optional[int]], MemoryController] = {}

#: The persistent worker pool: (pool, worker count).  Lazily built by
#: the first fan-out, reused by every later one with the same size.
_WORKER_POOL: Optional[Tuple[Any, int]] = None

#: Per-phase wall-clock accumulators for ``--profile`` (this process
#: only: under fan-out the compute phases run inside the workers).
_PROFILE = {"trace_s": 0.0, "simulate_s": 0.0, "store_s": 0.0}


def profile_snapshot() -> Dict[str, float]:
    """Copy of the per-phase wall-time accumulators (seconds)."""
    return dict(_PROFILE)


def reset_profile() -> None:
    """Zero the per-phase accumulators."""
    for key in _PROFILE:
        _PROFILE[key] = 0.0

#: ``on_result`` callback type: called with each (task, stats) pair as
#: soon as the cell completes, in task order (incremental checkpointing).
ResultCallback = Callable[["EvalTask", SimStats], None]

#: Process-wide count of grid cells actually *computed* by the engine
#: (store hits never increment it).  Counted in the parent as results
#: arrive, so it is accurate under process fan-out too; this is what the
#: zero-recompute pinning tests and ``run-all --expect-no-compute``
#: read.
_COMPUTED_CELLS = 0


def computed_cell_count() -> int:
    """Cells computed by this process's engine since import (or the last
    :func:`reset_computed_cell_count`)."""
    return _COMPUTED_CELLS


def reset_computed_cell_count() -> None:
    """Zero the computed-cell counter (tests, warm-pass assertions)."""
    global _COMPUTED_CELLS
    _COMPUTED_CELLS = 0


@dataclass(frozen=True)
class EvalTask:
    """One grid cell: a workload trace run against one architecture.

    ``queue_depth`` optionally overrides the controller's transaction
    queue (``None`` keeps the per-channel default) — the sweep axis the
    queue-depth ablation explores.
    """

    architecture: str
    workload: str
    num_requests: int
    seed: int
    queue_depth: Optional[int] = None

    def describe(self) -> str:
        """Human-readable cell label for error messages and logs."""
        label = (f"{self.architecture} x {self.workload}, "
                 f"n={self.num_requests}, seed={self.seed}")
        if self.queue_depth is not None:
            label += f", queue_depth={self.queue_depth}"
        return label


#: Wire-format field names of one :class:`EvalTask`, in dataclass order.
TASK_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(EvalTask))


def task_to_dict(task: EvalTask) -> Dict[str, Any]:
    """JSON-serializable dict of one task (inverse of
    :func:`task_from_dict`)."""
    return dataclasses.asdict(task)


def _require_int(payload: Dict[str, Any], key: str, default: int) -> int:
    """Fetch an integer field from an untrusted payload.

    ``bool`` is an ``int`` subclass in Python, but ``"seed": true`` on
    the wire is a client bug, not a seed of 1 — reject it explicitly.
    """
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SimulationError(f"task field {key!r} must be an integer, "
                              f"got {value!r}")
    return value


def task_from_dict(payload: Any) -> EvalTask:
    """Validated :class:`EvalTask` from an untrusted wire payload.

    This is the trust boundary of the evaluation service: every field is
    type- and range-checked so malformed queries surface as structured
    ``SimulationError`` messages (the server's 4xx path) instead of a
    worker traceback mid-compute.  ``num_requests`` defaults to 20000 and
    ``seed`` to 1, matching :func:`run_evaluation`; re-encoding the same
    task (dict round trip, any key order) yields an equal task and
    therefore the same store digest.
    """
    if not isinstance(payload, dict):
        raise SimulationError(
            f"task must be a JSON object, got {type(payload).__name__}")
    unknown = sorted(set(payload) - set(TASK_FIELDS))
    if unknown:
        raise SimulationError(
            f"unknown task fields {unknown}; known: {list(TASK_FIELDS)}")
    architecture = payload.get("architecture")
    if not isinstance(architecture, str):
        raise SimulationError("task field 'architecture' must be a string")
    if architecture not in known_architectures():
        raise SimulationError(
            f"unknown architecture {architecture!r}; "
            f"known: {known_architectures()}")
    workload = payload.get("workload")
    if not isinstance(workload, str):
        raise SimulationError("task field 'workload' must be a string")
    try:
        get_workload(workload)
    except TraceError as error:
        raise SimulationError(str(error)) from None
    num_requests = _require_int(payload, "num_requests", 20_000)
    if num_requests < 1:
        raise SimulationError("task field 'num_requests' must be >= 1")
    seed = _require_int(payload, "seed", 1)
    if not 0 <= seed < 2 ** 32:
        # numpy's RandomState range; catching it here keeps it a 4xx
        # validation error instead of a mid-compute worker failure.
        raise SimulationError(
            "task field 'seed' must be in [0, 2**32)")
    queue_depth = payload.get("queue_depth")
    if queue_depth is not None:
        if isinstance(queue_depth, bool) or not isinstance(queue_depth, int):
            raise SimulationError(
                f"task field 'queue_depth' must be an integer or null, "
                f"got {queue_depth!r}")
        if queue_depth < 1:
            raise SimulationError("task field 'queue_depth' must be >= 1")
    return EvalTask(architecture, workload, num_requests, seed, queue_depth)


def device_for(architecture: str):
    """Per-process memoized device model, shared across every consumer
    (controllers at any queue depth, store fingerprinting).  The build
    is the costly part — COMET's involves the mode-solver stack."""
    device = _DEVICE_CACHE.get(architecture)
    if device is None:
        device = build_device(architecture)
        _DEVICE_CACHE[architecture] = device
    return device


def clear_device_caches() -> None:
    """Drop every cache a model edit could leave stale.

    Clears the memoized devices and controllers (so the next use
    rebuilds from the current definitions), the per-process trace cache
    *and* the shared-memory trace plane (detaching every mapped segment
    and unlinking the ones this process published — a long-lived server
    must not leak ``/dev/shm`` segments across model edits), and shuts
    the persistent worker pool down (forked workers hold the same
    memoized state being invalidated here).

    For in-process model edits with a result store in play, call
    :func:`repro.sim.store.clear_fingerprint_cache` instead — it clears
    these caches *and* the memoized fingerprints/digests derived from
    them; clearing only here would leave the store addressing results
    computed under the old model.
    """
    _DEVICE_CACHE.clear()
    _CONTROLLER_CACHE.clear()
    cached_trace_arrays.cache_clear()
    _ADOPTED_TRACES.clear()
    clear_trace_plane()
    shutdown_worker_pool()


def shutdown_worker_pool() -> None:
    """Terminate the persistent worker pool (next fan-out rebuilds it)."""
    global _WORKER_POOL
    if _WORKER_POOL is not None:
        pool, _size = _WORKER_POOL
        _WORKER_POOL = None
        try:
            pool.terminate()
            pool.join()
        except (OSError, ValueError):
            pass


def _ensure_worker_pool(workers: int):
    """The persistent pool, built on first use and reused while the
    requested size matches; ``None`` where pools cannot be created."""
    global _WORKER_POOL
    if _WORKER_POOL is not None:
        pool, size = _WORKER_POOL
        if size == workers:
            return pool
        shutdown_worker_pool()
    try:
        import multiprocessing

        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)
        pool = context.Pool(processes=workers)
    except (ImportError, OSError, PermissionError):
        # Restricted environments (no /dev/shm, no fork): the caller
        # degrades to the serial path — identical results, no fan-out.
        return None
    _WORKER_POOL = (pool, workers)
    return pool


atexit.register(shutdown_worker_pool)


def controller_for(architecture: str,
                   queue_depth: Optional[int] = None) -> MemoryController:
    """Per-process memoized controller over the shared device model.
    ``queue_depth`` overrides the per-channel default transaction queue
    (distinct depths share one device build)."""
    key = (architecture, queue_depth)
    controller = _CONTROLLER_CACHE.get(key)
    if controller is None:
        device = device_for(architecture)
        controller = MemoryController(
            device,
            queue_depth=(queue_depth if queue_depth is not None
                         else QUEUE_DEPTH_PER_CHANNEL * device.channels),
        )
        _CONTROLLER_CACHE[key] = controller
    return controller


#: Traces this process adopted from the trace plane, by (workload, n,
#: seed): :func:`evaluate_cell` consults this before generating, which
#: is how pool workers reach the shared pages *without* the descriptor
#: threading through ``evaluate_cell``'s call signature (monkeypatched
#: and legacy single-argument implementations keep working).
_ADOPTED_TRACES: Dict[Tuple[str, int, int], Any] = {}


def adopt_trace_descriptor(descriptor: TraceDescriptor) -> None:
    """Attach a published trace and serve it to later
    :func:`evaluate_cell` calls for its (workload, n, seed).

    Bounded like the plane itself: adopted references beyond the
    publisher's segment cap are dropped FIFO so a persistent pool
    worker serving many distinct traces doesn't pin stale mappings."""
    if descriptor.key not in _ADOPTED_TRACES:
        from .tracegen import MAX_OWNED_SEGMENTS

        while len(_ADOPTED_TRACES) >= MAX_OWNED_SEGMENTS:
            del _ADOPTED_TRACES[next(iter(_ADOPTED_TRACES))]
        _ADOPTED_TRACES[descriptor.key] = attach_trace_arrays(descriptor)


def evaluate_cell(task: EvalTask,
                  descriptor: Optional[TraceDescriptor] = None) -> SimStats:
    """Run one grid cell; the unit of work the pool distributes.

    ``descriptor`` names a shared-memory publication of the cell's
    trace: the columns are mapped zero-copy instead of generated.
    Without one, traces previously adopted via
    :func:`adopt_trace_descriptor` (the fan-out path) are used, then
    the per-process generation cache.
    """
    t0 = time.perf_counter()
    if descriptor is not None:
        trace = attach_trace_arrays(descriptor)
    else:
        trace = _ADOPTED_TRACES.get(
            (task.workload, task.num_requests, task.seed))
        if trace is None:
            trace = cached_trace_arrays(task.workload, task.num_requests,
                                        task.seed)
    t1 = time.perf_counter()
    stats = controller_for(task.architecture, task.queue_depth).run_arrays(
        trace, workload_name=task.workload)
    t2 = time.perf_counter()
    _PROFILE["trace_s"] += t1 - t0
    _PROFILE["simulate_s"] += t2 - t1
    return stats


def evaluate_cell_checked(task: EvalTask) -> SimStats:
    """``evaluate_cell`` with the failing cell annotated on error.

    Without this, an exception raised inside a pool worker surfaces as
    a bare multiprocessing traceback with no indication of which
    (architecture, workload) cell died — and the unexpected kinds
    (ValueError, numpy errors) are exactly the ones that need the cell
    label most.  The re-raised error is a plain one-argument
    ``SimulationError``, so it pickles cleanly back through the pool.

    Module-level (hence picklable) on purpose: this is the unit of work
    both the grid pool and the evaluation server's executors submit —
    always with the single-argument call, so replacement
    ``evaluate_cell`` implementations (tests, instrumentation) never
    see the trace-plane plumbing.
    """
    try:
        return evaluate_cell(task)
    except Exception as error:
        detail = str(error) if isinstance(error, ReproError) \
            else f"{type(error).__name__}: {error}"
        raise SimulationError(
            f"grid cell ({task.describe()}) failed: {detail}") from error


#: Backwards-compatible alias (pre-server name).
_evaluate_cell_checked = evaluate_cell_checked


def _evaluate_cell_indexed(
    payload: Tuple[int, EvalTask, Optional[TraceDescriptor]]
) -> Tuple[int, SimStats]:
    """Pool payload carrying the task's position (so the parent can
    checkpoint completions the moment they arrive, out of order, while
    still returning results in task order) and the task's trace-plane
    descriptor (adopted before evaluation, not threaded through the
    ``evaluate_cell`` signature)."""
    index, task, descriptor = payload
    if descriptor is not None:
        adopt_trace_descriptor(descriptor)
    return index, _evaluate_cell_checked(task)


def _resolve_workers(workers: Optional[int]) -> int:
    """Validate and normalize the worker count.

    ``0`` explicitly means "one worker per available CPU" (it used to be
    silently coerced to 1); negative counts are rejected.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "1")
        try:
            workers = int(raw)
        except ValueError:
            raise SimulationError(
                f"{WORKERS_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise SimulationError("worker count must be non-negative")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _map_tasks(tasks: Sequence[EvalTask], workers: int, chunksize: int,
               on_result: Optional[ResultCallback] = None) -> List[SimStats]:
    """Map cells over a worker pool, falling back to serial execution.

    The returned list is in task order; ``on_result`` fires for each
    cell as soon as its stats arrive — in *completion* order under a
    pool, so callers (the result store, the sweep runner) checkpoint
    every finished cell immediately and an interruption loses nothing
    already computed.  Worker failures re-raise as ``SimulationError``
    annotated with the failing cell.
    """
    def count_computed() -> None:
        global _COMPUTED_CELLS
        _COMPUTED_CELLS += 1

    def serial() -> List[SimStats]:
        collected = []
        for task in tasks:
            stats = _evaluate_cell_checked(task)
            count_computed()
            if on_result is not None:
                on_result(task, stats)
            collected.append(stats)
        return collected

    if workers <= 1 or len(tasks) <= 1:
        return serial()
    pool = _ensure_worker_pool(workers)
    if pool is None:
        # Restricted environments (no /dev/shm, no fork): degrade to the
        # serial path — identical results, just no fan-out.  Only pool
        # *creation* is guarded; cell failures propagate annotated.
        return serial()
    # Publish each distinct trace once; workers get a descriptor and
    # attach the shared pages instead of regenerating the columns.
    descriptors: Dict[Tuple[str, int, int], Optional[TraceDescriptor]] = {}
    if os.environ.get(TRACE_PLANE_ENV_VAR, "1") != "0":
        for task in tasks:
            key = (task.workload, task.num_requests, task.seed)
            if key not in descriptors:
                descriptors[key] = share_trace_arrays(*key)
    payloads = [
        (index, task,
         descriptors.get((task.workload, task.num_requests, task.seed)))
        for index, task in enumerate(tasks)
    ]
    slots: List[Optional[SimStats]] = [None] * len(tasks)
    try:
        for index, stats in pool.imap_unordered(
                _evaluate_cell_indexed, payloads, chunksize=chunksize):
            count_computed()
            if on_result is not None:
                on_result(tasks[index], stats)
            slots[index] = stats
    except ReproError:
        raise    # a cell failed; the pool itself is still healthy
    except Exception:
        # The pool transport broke (worker killed, pipe torn): discard
        # it so the next fan-out starts from a fresh pool.
        shutdown_worker_pool()
        raise
    return slots


def grid_tasks(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
) -> List[EvalTask]:
    """The validated (architecture x workload) grid as a task list.

    Workload-major order: one chunk covers every architecture for one
    workload, so each worker generates (or receives via fork) each trace
    at most once.  Shared by :func:`run_evaluation` and remote grid
    consumers (the evaluation client's Fig. 9 path), so both expand the
    same grid to the same tasks in the same order.
    """
    workload_names = list(workloads) if workloads is not None \
        else sorted(SPEC_WORKLOADS)
    if not workload_names:
        raise SimulationError("need at least one workload")
    architectures = list(architectures)
    if not architectures:
        raise SimulationError("need at least one architecture")
    for name in workload_names:
        try:
            get_workload(name)
        except TraceError as error:
            raise SimulationError(str(error)) from None
    return [
        EvalTask(arch, workload, num_requests, seed)
        for workload in workload_names
        for arch in architectures
    ]


def run_evaluation(
    architectures: Sequence[str] = ARCHITECTURE_NAMES,
    workloads: Optional[Iterable[str]] = None,
    num_requests: int = 20_000,
    seed: int = 1,
    workers: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    resume: bool = True,
) -> Dict[str, Dict[str, SimStats]]:
    """The full Fig. 9 grid: every architecture on every workload.

    Returns ``results[arch][workload] -> SimStats``.  ``workers`` > 1
    fans the grid out over that many processes (``0`` = one per CPU);
    the result is identical to the serial run for the same arguments.

    With a :class:`repro.sim.store.ResultStore`, every computed cell is
    checkpointed to disk as soon as it completes; when ``resume`` is
    true, cells whose digest is already in the store are served from it
    instead of being recomputed (``resume=False`` recomputes and
    overwrites).  Stored results are bit-identical to computed ones.
    """
    architectures = list(architectures)
    tasks = grid_tasks(architectures, workloads, num_requests, seed)
    lookup = evaluate_tasks(tasks, workers=workers, store=store,
                            resume=resume,
                            chunksize=max(len(architectures), 1))

    results: Dict[str, Dict[str, SimStats]] = {
        arch: {} for arch in architectures
    }
    for task in tasks:
        results[task.architecture][task.workload] = lookup[task]
    return results


def evaluate_tasks(
    tasks: Sequence[EvalTask],
    workers: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    resume: bool = True,
    chunksize: int = 1,
    on_result: Optional[ResultCallback] = None,
    store_latencies: bool = True,
) -> Dict[EvalTask, SimStats]:
    """Evaluate an arbitrary task list with store read-through/write-back.

    The shared core of :func:`run_evaluation` and the sweep runner:
    store hits (when ``resume``) skip :func:`evaluate_cell` entirely,
    misses are fanned out over ``workers`` processes and written back to
    the store the moment each result arrives.  ``on_result`` fires for
    every *computed* cell (after the store write), letting callers log
    progress or checkpoint additional state.  ``store_latencies=False``
    writes archival entries without the bulky per-request samples —
    percentile queries still work through the store's fixed-bin latency
    histograms.
    """
    cached: Dict[EvalTask, SimStats] = {}
    if store is not None and resume:
        t0 = time.perf_counter()
        cached = {task: hit for task, hit in store.get_many(tasks).items()
                  if hit is not None}
        _PROFILE["store_s"] += time.perf_counter() - t0
    missing = [task for task in tasks if task not in cached]

    def checkpoint(task: EvalTask, stats: SimStats) -> None:
        if store is not None:
            t0 = time.perf_counter()
            store.put(task, stats, latencies=store_latencies)
            _PROFILE["store_s"] += time.perf_counter() - t0
        if on_result is not None:
            on_result(task, stats)

    computed = _map_tasks(missing, _resolve_workers(workers),
                          chunksize=max(chunksize, 1),
                          on_result=checkpoint)
    results = dict(cached)
    results.update(zip(missing, computed))
    return results
