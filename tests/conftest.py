"""Shared fixtures.

Expensive objects (mode-solver-backed cells, programmers, architecture
facades) are session-scoped: they are immutable for test purposes and the
underlying solvers cache by configuration.
"""

from __future__ import annotations

import pytest

from repro.arch import CometArchitecture
from repro.device import CellProgrammer, MultiLevelCell, OpticalGstCell
from repro.materials import get_material


@pytest.fixture(scope="session")
def gst():
    return get_material("GST")


@pytest.fixture(scope="session")
def gst_cell(gst):
    return OpticalGstCell(gst)


@pytest.fixture(scope="session")
def mlc4(gst_cell):
    return MultiLevelCell.for_cell(gst_cell, 4)


@pytest.fixture(scope="session")
def programmer(gst_cell):
    return CellProgrammer(gst_cell)


@pytest.fixture(scope="session")
def comet():
    return CometArchitecture()
