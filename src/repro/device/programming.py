"""Cell programming: pulses, levels, energies and latencies (Fig. 6).

Combines the cell's optical response, the lumped thermal model and the
crystallization kinetics into the paper's two programming case studies
(Section III.B):

* **Case 1 — crystalline-deposited**: the reset state is crystalline.
  RESET = full (re)crystallization with a 1 mW pulse held at the
  temperature that the 1 mW steady state reaches; the paper reports 880 pJ.
  WRITE = partial amorphization: a 5 mW pulse melts part of the film and
  quenches it; deeper melt -> lower crystalline fraction.
* **Case 2 — amorphous-deposited**: the reset state is amorphous.
  RESET = full melt-quench at 5 mW; the paper reports 280 pJ.
  WRITE = partial crystallization: a pulse at the power whose steady state
  sits at the kinetics' optimal temperature grows the target fraction.

``level_table`` generates the Fig. 6 dataset: per level, the crystalline
fraction, optical transmission, pulse (power, duration, energy) and total
latency (pulse + thermal settle back below Tg).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ProgrammingError
from .cell import OpticalGstCell
from .heat import LumpedThermalModel
from .kinetics import CrystallizationKinetics
from .mlc import MultiLevelCell


class ProgrammingMode(enum.Enum):
    """Which endpoint phase the cell is deposited in / reset to."""

    CRYSTALLINE_DEPOSITED = "crystalline-deposited"
    AMORPHOUS_DEPOSITED = "amorphous-deposited"


@dataclass(frozen=True)
class PulseSpec:
    """One optical programming pulse at the GST cell."""

    power_w: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.power_w <= 0.0 or self.duration_s <= 0.0:
            raise ProgrammingError("pulse power and duration must be positive")

    @property
    def energy_j(self) -> float:
        return self.power_w * self.duration_s


@dataclass(frozen=True)
class LevelProgram:
    """A fully resolved level write: target state, pulse and latency."""

    level: int
    crystalline_fraction: float
    transmission: float
    pulse: PulseSpec
    settle_time_s: float

    @property
    def latency_s(self) -> float:
        """Pulse plus thermal settle (cell ready for the next operation)."""
        return self.pulse.duration_s + self.settle_time_s

    @property
    def energy_j(self) -> float:
        return self.pulse.energy_j


@dataclass(frozen=True)
class ProgrammingConfig:
    """Knobs of the programming model (paper anchors in defaults).

    ``crystallization_power_w = None`` derives the power whose steady-state
    temperature equals the kinetics' optimal crystallization temperature.
    """

    amorphization_power_w: float = 5e-3       # Sec. III.C: 5 mW write power
    reset_power_crystalline_w: float = 1e-3   # Table I: 1 mW max at cell
    crystallization_power_w: Optional[float] = None
    reset_target_fraction: float = 0.99
    melt_hold_margin_s: float = 5e-9          # dwell above full melt


class CellProgrammer:
    """Maps target levels to pulses for one cell + thermal + kinetics set."""

    def __init__(
        self,
        cell: OpticalGstCell,
        thermal: Optional[LumpedThermalModel] = None,
        kinetics: Optional[CrystallizationKinetics] = None,
        config: ProgrammingConfig = ProgrammingConfig(),
    ) -> None:
        self.cell = cell
        self.thermal = thermal if thermal is not None else LumpedThermalModel()
        self.kinetics = kinetics if kinetics is not None else CrystallizationKinetics(
            cell.material.kinetics, cell.material.thermal
        )
        self.config = config

    # ------------------------------------------------------------------
    # Derived operating points
    # ------------------------------------------------------------------

    @property
    def crystallization_power_w(self) -> float:
        """Power for SET pulses: steady state at the optimal temperature."""
        if self.config.crystallization_power_w is not None:
            return self.config.crystallization_power_w
        return self.thermal.power_for_temperature_w(
            self.kinetics.params.optimal_temperature_k
        )

    def _crystallization_temperature_k(self) -> float:
        return self.thermal.steady_state_k(self.crystallization_power_w)

    def _settle_time_from(self, start_k: float) -> float:
        """Cooling time back below the crystallization window."""
        target = self.kinetics.thermal.crystallization_temperature_k
        return self.thermal.time_to_cool_s(start_k, target)

    # ------------------------------------------------------------------
    # Elementary operations
    # ------------------------------------------------------------------

    def crystallize_to(self, target_fraction: float) -> PulseSpec:
        """SET pulse growing crystalline fraction from 0 to the target.

        The pulse ramps to 95 % of the SET power's steady-state rise (an
        asymptote the ramp never fully reaches) and holds there for the
        isothermal time the kinetics require; crystallization during the
        ramp itself is conservatively ignored.
        """
        if not 0.0 < target_fraction < 1.0:
            raise ProgrammingError("target fraction must be in (0, 1)")
        hold_k = self._hold_temperature_k(self.crystallization_power_w)
        ramp = self.thermal.time_to_temperature_s(
            self.crystallization_power_w, hold_k
        )
        hold = self.kinetics.time_to_fraction_s(hold_k, target_fraction)
        return PulseSpec(self.crystallization_power_w, ramp + hold)

    def _hold_temperature_k(self, power_w: float) -> float:
        """The 95 %-rise temperature a SET pulse effectively holds at."""
        steady = self.thermal.steady_state_k(power_w)
        return self.thermal.ambient_k + 0.95 * (steady - self.thermal.ambient_k)

    def amorphize_to_melt_fraction(self, melt_fraction: float) -> PulseSpec:
        """RESET-side pulse melting the requested share of the film."""
        if not 0.0 < melt_fraction <= 1.0:
            raise ProgrammingError("melt fraction must be in (0, 1]")
        power = self.config.amorphization_power_w
        t_melt = self.kinetics.thermal.melting_temperature_k
        peak_needed = t_melt + melt_fraction * self.kinetics.full_melt_margin_k
        duration = self.thermal.time_to_temperature_s(power, peak_needed)
        return PulseSpec(power, duration + self.config.melt_hold_margin_s)

    def verify_quench(self, pulse: PulseSpec) -> bool:
        """Check the free-cooling quench through Tl beats the critical rate."""
        peak = self.thermal.temperature_k(pulse.power_w, pulse.duration_s)
        t_melt = self.kinetics.thermal.melting_temperature_k
        if peak <= t_melt:
            return False
        rate = self.thermal.quench_rate_k_per_s(t_melt)
        return rate >= self.kinetics.params.critical_quench_rate_k_per_s

    # ------------------------------------------------------------------
    # Reset pulses (the Section III.B case studies)
    # ------------------------------------------------------------------

    def reset_pulse(self, mode: ProgrammingMode) -> PulseSpec:
        """The RESET pulse of the given deposition mode."""
        if mode is ProgrammingMode.CRYSTALLINE_DEPOSITED:
            # Full crystallization at the (lower) 1 mW cell power.
            power = self.config.reset_power_crystalline_w
            hold_k = self.thermal.steady_state_k(power)
            window_min = self.kinetics.thermal.crystallization_temperature_k
            if hold_k <= window_min:
                raise ProgrammingError(
                    f"reset power {power * 1e3:.1f} mW only reaches "
                    f"{hold_k:.0f} K, below the {window_min:.0f} K window"
                )
            # Steady state is reached asymptotically; the pulse effectively
            # holds at the 95 %-rise temperature.
            effective_k = self._hold_temperature_k(power)
            if effective_k <= window_min:
                raise ProgrammingError(
                    f"reset hold temperature {effective_k:.0f} K below the "
                    f"{window_min:.0f} K crystallization window"
                )
            duration = self.kinetics.time_to_fraction_s(
                effective_k, self.config.reset_target_fraction
            )
            return PulseSpec(power, duration)
        # Amorphous-deposited: full melt-quench.
        return self.amorphize_to_melt_fraction(1.0)

    def reset_energy_j(self, mode: ProgrammingMode) -> float:
        """Energy of the RESET pulse (compare: paper's 880 pJ / 280 pJ)."""
        return self.reset_pulse(mode).energy_j

    # ------------------------------------------------------------------
    # Level programming
    # ------------------------------------------------------------------

    def program_level(
        self, mode: ProgrammingMode, target_fraction: float
    ) -> PulseSpec:
        """WRITE pulse taking a freshly reset cell to a target fraction."""
        if mode is ProgrammingMode.AMORPHOUS_DEPOSITED:
            # Grow crystalline fraction from 0.
            if target_fraction <= 0.0:
                raise ProgrammingError("level 0 is the reset state; no pulse")
            return self.crystallize_to(min(target_fraction, 0.999))
        # Crystalline-deposited: melt away (1 - fc) of the film.
        melt = 1.0 - target_fraction
        if melt <= 0.0:
            raise ProgrammingError("level 0 is the reset state; no pulse")
        return self.amorphize_to_melt_fraction(min(melt, 1.0))

    def level_table(
        self,
        mlc: MultiLevelCell,
        mode: ProgrammingMode = ProgrammingMode.AMORPHOUS_DEPOSITED,
    ) -> List[LevelProgram]:
        """The Fig. 6 dataset: every level's fraction/transmission/latency.

        Levels are ordered by transmission (level 0 brightest).  The reset
        state occupies the extreme level and needs no write pulse; it is
        reported with the reset pulse instead so the table is complete.
        """
        programs: List[LevelProgram] = []
        for level, target_t in enumerate(mlc.level_transmissions()):
            fraction = self.cell.fc_for_transmission(target_t)
            if mode is ProgrammingMode.AMORPHOUS_DEPOSITED:
                is_reset_level = fraction <= 0.01
            else:
                is_reset_level = fraction >= 0.99
            if is_reset_level:
                pulse = self.reset_pulse(mode)
            else:
                pulse = self.program_level(mode, fraction)
            peak_k = self.thermal.temperature_k(pulse.power_w, pulse.duration_s)
            settle = self._settle_time_from(
                max(peak_k, self.kinetics.thermal.crystallization_temperature_k + 1.0)
            )
            programs.append(LevelProgram(
                level=level,
                crystalline_fraction=fraction,
                transmission=target_t,
                pulse=pulse,
                settle_time_s=settle,
            ))
        return programs

    def max_write_latency_s(
        self, mlc: MultiLevelCell,
        mode: ProgrammingMode = ProgrammingMode.AMORPHOUS_DEPOSITED,
    ) -> float:
        """Worst-case level-write latency (feeds the Table II derivation)."""
        table = self.level_table(mlc, mode)
        return max(entry.latency_s for entry in table)
