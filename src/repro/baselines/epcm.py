"""EPCM-MM baseline: an electrically-controlled PCM main memory.

The paper benchmarks against a proposed electrical-PCM main memory
("EPCM-MM").  We model a representative 1T-1R PCM part with the
characteristics the paper's background section attributes to EPCM:

* non-volatile — no refresh;
* asymmetric, long write latency (RESET is a short high-current pulse,
  SET a long crystallization pulse; array-level writes are SET-limited);
* moderate read latency (bitline sensing of the resistance);
* low background power but expensive write energy.

Numbers follow published PCM main-memory studies (LL-PCM [10], the 20 nm
8 Gb PRAM of [31], DyPhase [19]): ~60 ns array read, ~150 ns RESET,
~470 ns SET, tens of pJ per written bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class EpcmConfig:
    """Timing and energy of an electrical-PCM main-memory device."""

    name: str = "EPCM-MM"
    banks: int = 8
    line_bytes: int = 128
    read_latency_ns: float = 60.0
    set_latency_ns: float = 470.0
    reset_latency_ns: float = 150.0
    data_burst_ns: float = 10.0          # electrical DDR-class bus
    interface_delay_ns: float = 15.0
    background_power_w: float = 0.25
    read_energy_per_line_j: float = 4e-9
    write_energy_per_line_j: float = 40e-9   # ~39 pJ/bit SET-dominated

    def __post_init__(self) -> None:
        if self.banks < 1 or self.line_bytes < 1:
            raise ConfigError("banks and line size must be positive")
        for field_name in ("read_latency_ns", "set_latency_ns",
                           "reset_latency_ns", "data_burst_ns"):
            if getattr(self, field_name) <= 0.0:
                raise ConfigError(f"{field_name} must be positive")

    @property
    def write_latency_ns(self) -> float:
        """Array write latency: SET-limited (the asymmetric worst case)."""
        return self.set_latency_ns

    @property
    def write_asymmetry(self) -> float:
        """SET/RESET latency ratio (the DyPhase [19] pain point)."""
        return self.set_latency_ns / self.reset_latency_ns


#: The instance used by the Fig. 9 comparison.
EPCM_MM = EpcmConfig()
