#!/usr/bin/env python
"""Parallel evaluation engine walkthrough.

Runs the Fig. 9 grid through the vectorized serial path and the
process-parallel path, shows that both produce identical statistics, and
then evaluates the scenario axes the SPEC presets do not cover: the
multi-programmed ``mix_*`` pairs, the phase-change ``bursty`` workload
and the write-heavy ``checkpoint`` workload.

Usage: python examples/parallel_eval_demo.py [num_requests] [workers]
"""

import sys
import time

from repro.sim import (
    ARCHITECTURE_NAMES,
    MIXED_WORKLOADS,
    PHASED_WORKLOADS,
    run_evaluation,
    summarize,
)
from repro.sim.engine import controller_for


def print_summary(summary, architectures) -> None:
    header = f"{'arch':10s} {'BW (GB/s)':>10s} {'latency (ns)':>13s} " \
             f"{'EPB (pJ/b)':>11s}"
    print(header)
    print("-" * len(header))
    for arch in architectures:
        s = summary[arch]
        print(f"{arch:10s} {s['bandwidth_gbps']:10.2f} "
              f"{s['avg_latency_ns']:13.1f} {s['epb_pj']:11.1f}")


def main() -> None:
    num_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 4000
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    # Device construction (COMET's mode-solver stack) is one-time work;
    # warm it outside the timed region so the comparison is about the
    # evaluation itself.
    for arch in ARCHITECTURE_NAMES:
        controller_for(arch)

    start = time.perf_counter()
    serial = run_evaluation(num_requests=num_requests, workers=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_evaluation(num_requests=num_requests, workers=workers)
    parallel_s = time.perf_counter() - start

    identical = serial == parallel
    print(f"SPEC grid ({len(ARCHITECTURE_NAMES)} x 8, "
          f"{num_requests} requests/cell):")
    print(f"  serial      : {serial_s:.2f} s")
    print(f"  {workers} workers   : {parallel_s:.2f} s")
    print(f"  identical results: {identical}\n")
    if not identical:
        raise SystemExit("parallel and serial evaluations diverged")

    print_summary(summarize(serial), ARCHITECTURE_NAMES)

    scenario_names = sorted(MIXED_WORKLOADS) + sorted(PHASED_WORKLOADS)
    scenarios = run_evaluation(
        workloads=scenario_names, num_requests=num_requests, workers=workers)
    print(f"\nMulti-programmed + phased scenarios "
          f"({', '.join(scenario_names)}):")
    print_summary(summarize(scenarios), ARCHITECTURE_NAMES)

    comet = scenarios["COMET"]
    print("\nCOMET per-scenario bandwidth:")
    for name in scenario_names:
        stats = comet[name]
        print(f"  {name:22s} {stats.bandwidth_gbps:7.2f} GB/s   "
              f"avg latency {stats.avg_latency_ns:8.1f} ns")


if __name__ == "__main__":
    main()
