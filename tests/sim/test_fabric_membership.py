"""Elastic fleet membership: the prober-driven state machine, mid-run
join and eviction, re-admission, and the membership sources.

The churn scenarios here run against in-process daemons (fast,
deterministic triggers keyed to run progress); the same arcs against
real subprocesses and real signals live in ``test_chaos_fabric.py``.
Every scenario asserts the invariant the fabric exists for: whatever
the membership does, the results stay bit-identical to a serial
:func:`run_sweep`.
"""

import asyncio
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import SimulationError
from repro.sim import engine
from repro.sim.client import TransportError
from repro.sim.fabric import (HostFileMembership, MembershipEndpoint,
                              StaticMembership, announce_join,
                              membership_counters, partition_tasks,
                              reset_membership_counters, run_fabric_async)
from repro.sim.server import EvalServer
from repro.sim.store import ResultStore
from repro.sim.sweep import SweepSpec, run_sweep

#: The 8-cell grid the fabric tests share (both two-host partitions
#: non-empty — pinned in test_fabric.py).
SPEC = SweepSpec(architectures=("EPCM-MM", "2D_DDR3"),
                 workloads=("gcc", "lbm", "mcf", "milc"),
                 num_requests=(300,), seeds=(7,), queue_depths=(None,))

#: Aggressive prober + no client retries: membership verdicts land
#: within a few hundredths of a second of the trigger.
CHURN = dict(window=1, retries=0, backoff=0.01, cell_attempts=6,
             probe_interval=0.05, probe_timeout=0.5)


def pace(monkeypatch, delay):
    """Slow every cell down so churn triggers land mid-run.  The
    wrapper only changes *when* a cell computes, never its result, so
    bit-identity assertions still hold."""
    real = engine.evaluate_cell

    def delayed(task):
        time.sleep(delay)
        return real(task)
    monkeypatch.setattr(engine, "evaluate_cell", delayed)
    return real


def address_of(server):
    return f"http://127.0.0.1:{server.port}"


class TestReadmission:
    def test_readmitted_host_with_stale_store_stays_digest_consistent(
            self, tmp_path, monkeypatch):
        """Kill a daemon mid-run, then bring a replacement up on the
        same port and the same (now stale) store: the prober re-admits
        it and the final results are still bit-identical — the
        content-addressed store can only ever serve the exact cells the
        digests name."""
        real = pace(monkeypatch, 0.15)
        victim_store = tmp_path / "victim-store"
        # The "stale" part: the store already holds results from an
        # earlier life of this daemon.
        warm = ResultStore(victim_store)
        for task in SPEC.tasks()[:2]:
            warm.put(task, real(task))
        local = ResultStore(tmp_path / "local")
        events = []

        async def scenario():
            survivor = EvalServer(port=0)
            victim = EvalServer(port=0, store=ResultStore(victim_store))
            await survivor.start()
            await victim.start()
            victim_address = address_of(victim)
            replacement = {"server": None, "task": None}

            async def kill_after_first_query():
                while victim.stats_snapshot()["queries"] < 1:
                    await asyncio.sleep(0.01)
                await victim.stop()

            async def rebirth():
                reborn = EvalServer(port=victim.port,
                                    store=ResultStore(victim_store))
                await reborn.start()
                replacement["server"] = reborn

            def on_membership(address, old, new, reason):
                events.append((address, old, new))
                if address == victim_address and new == "dead" \
                        and replacement["task"] is None:
                    replacement["task"] = asyncio.ensure_future(rebirth())

            killer = asyncio.ensure_future(kill_after_first_query())
            try:
                result = await run_fabric_async(
                    SPEC, [address_of(survivor), victim_address],
                    store=local, on_membership=on_membership, **CHURN)
            finally:
                killer.cancel()
                if replacement["task"] is not None:
                    await replacement["task"]
                for server in (survivor, replacement["server"]):
                    if server is not None:
                        await server.stop()
            return result, victim_address

        result, victim_address = asyncio.run(scenario())
        monkeypatch.setattr(engine, "evaluate_cell", real)
        assert result.results == run_sweep(SPEC).results
        assert victim_address in result.readmitted
        assert (victim_address, "dead", "rejoining") in events
        assert (victim_address, "rejoining", "alive") in events
        # Re-admission is provenance, not a dead-host record: the host
        # finished the run alive.
        assert victim_address not in result.dead_hosts
        assert victim_address in result.completed_after_readmission


class TestMidRunJoin:
    def test_join_mid_run_takes_handoff_and_stays_bit_identical(
            self, tmp_path, monkeypatch):
        """A host added to the watched file mid-run gets a share of the
        unstarted remainder and contributes real cells."""
        real = pace(monkeypatch, 0.15)
        hostfile = tmp_path / "hosts.txt"
        local = ResultStore(tmp_path / "local")
        reset_membership_counters()

        async def scenario():
            first = EvalServer(port=0)
            second = EvalServer(port=0)
            await first.start()
            await second.start()
            hostfile.write_text(address_of(first) + "\n")
            seen = []

            def on_result(task, stats):
                seen.append(task)
                if len(seen) == 1:
                    hostfile.write_text(address_of(first) + "\n"
                                        + address_of(second) + "\n")
            try:
                result = await run_fabric_async(
                    SPEC, membership=HostFileMembership(hostfile),
                    store=local, on_result=on_result, **CHURN)
            finally:
                await first.stop()
                await second.stop()
            return result, address_of(second)

        result, joiner = asyncio.run(scenario())
        monkeypatch.setattr(engine, "evaluate_cell", real)
        assert result.results == run_sweep(SPEC).results
        assert joiner in result.joined
        # The handoff was real: the joiner ran part of the grid.
        assert result.per_host[joiner] >= 1
        assert sum(result.per_host.values()) == result.completed \
            == SPEC.num_cells
        assert any(entry.startswith("(new)→alive")
                   for entry in result.transitions[joiner])
        assert membership_counters()["admitted"] >= 1

    def test_join_after_last_dispatch_is_a_clean_noop(
            self, tmp_path, monkeypatch):
        """With every cell already dispatched (window covers the whole
        grid), a late joiner is admitted, finds nothing to hand off,
        completes zero cells, and the run is otherwise untouched."""
        real = pace(monkeypatch, 0.2)
        hostfile = tmp_path / "hosts.txt"

        async def scenario():
            first = EvalServer(port=0)
            second = EvalServer(port=0)
            await first.start()
            await second.start()
            hostfile.write_text(address_of(first) + "\n")
            seen = []

            def on_result(task, stats):
                seen.append(task)
                if len(seen) == 1:
                    hostfile.write_text(address_of(first) + "\n"
                                        + address_of(second) + "\n")
            kwargs = dict(CHURN, window=SPEC.num_cells)
            try:
                result = await run_fabric_async(
                    SPEC, membership=HostFileMembership(hostfile),
                    on_result=on_result, **kwargs)
            finally:
                await first.stop()
                await second.stop()
            return result, address_of(second)

        result, joiner = asyncio.run(scenario())
        monkeypatch.setattr(engine, "evaluate_cell", real)
        assert result.results == run_sweep(SPEC).results
        assert result.completed == SPEC.num_cells
        assert joiner in result.joined
        assert result.per_host.get(joiner, 0) == 0
        assert not result.dead_hosts and not result.evicted


class TestEviction:
    def test_host_file_rewritten_empty_fails_structured_and_checkpoints(
            self, tmp_path, monkeypatch):
        """The operator abort path: an emptied host file evicts the
        whole fleet, the run fails with the structured whole-fleet-dead
        error immediately (no grace wait — the source says nobody is
        coming back), and completed cells are already checkpointed."""
        real = pace(monkeypatch, 0.15)
        hostfile = tmp_path / "hosts.txt"
        local = ResultStore(tmp_path / "local")

        async def scenario():
            first = EvalServer(port=0)
            second = EvalServer(port=0)
            await first.start()
            await second.start()
            hostfile.write_text(address_of(first) + "\n"
                                + address_of(second) + "\n")
            seen = []

            def on_result(task, stats):
                seen.append(task)
                if len(seen) == 1:
                    hostfile.write_text("")
            try:
                with pytest.raises(SimulationError,
                                   match="rerun to resume"):
                    await run_fabric_async(
                        SPEC, membership=HostFileMembership(hostfile),
                        store=local, on_result=on_result, **CHURN)
            finally:
                await first.stop()
                await second.stop()

        asyncio.run(scenario())
        monkeypatch.setattr(engine, "evaluate_cell", real)
        # The cells finished before the abort are in the local store —
        # a rerun resumes from them.
        assert len(local) >= 1
        for task, hit in local.get_many(SPEC.tasks()).items():
            if hit is not None:
                assert hit == engine.evaluate_cell(task)


class TestMembershipSources:
    def test_static_membership_dedupes(self):
        source = StaticMembership(["http://a:1", "http://b:2", "http://a:1"])
        assert source.hosts() == ["http://a:1", "http://b:2"]
        assert not source.elastic

    def test_host_file_parses_comments_blanks_and_dupes(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text("# fleet\nhttp://a:1\n\nhttp://b:2  # spare\n"
                        "http://a:1\n")
        source = HostFileMembership(path)
        assert source.hosts() == ["http://a:1", "http://b:2"]
        assert source.elastic

    def test_missing_host_file_reads_as_empty_fleet(self, tmp_path):
        assert HostFileMembership(tmp_path / "absent.txt").hosts() == []

    def test_empty_membership_rejected_at_launch(self, tmp_path):
        path = tmp_path / "hosts.txt"
        path.write_text("\n")
        with pytest.raises(SimulationError, match="at least one host"):
            asyncio.run(run_fabric_async(
                SPEC, membership=HostFileMembership(path)))

    def test_hosts_and_membership_are_mutually_exclusive(self):
        with pytest.raises(SimulationError, match="not both"):
            asyncio.run(run_fabric_async(
                SPEC, ["http://a:1"],
                membership=StaticMembership(["http://a:1"])))

    def test_join_endpoint_admits_and_reports(self):
        async def scenario():
            endpoint = MembershipEndpoint(
                base=StaticMembership(["http://a:1"]))
            await endpoint.start()
            try:
                first = await asyncio.to_thread(
                    announce_join, endpoint.address, "http://b:2")
                again = await asyncio.to_thread(
                    announce_join, endpoint.address, "http://b:2")

                def read_membership():
                    with urllib.request.urlopen(
                            endpoint.address + "/membership",
                            timeout=10) as response:
                        return json.load(response)
                report = await asyncio.to_thread(read_membership)
            finally:
                await endpoint.stop()
            return first, again, endpoint.hosts(), report

        first, again, hosts, report = asyncio.run(scenario())
        assert first is True and again is False
        assert hosts == ["http://a:1", "http://b:2"]
        assert report["ok"] and report["hosts"] == hosts
        # No run is attached: states are empty, not an error.
        assert report["states"] == {}

    def test_join_endpoint_rejects_malformed_bodies(self):
        async def scenario():
            endpoint = MembershipEndpoint()
            await endpoint.start()
            try:
                for body in (b"not json", b'{"host": 7}', b"{}"):
                    request = urllib.request.Request(
                        endpoint.address + "/join", data=body,
                        method="POST")
                    with pytest.raises(urllib.error.HTTPError) as failure:
                        await asyncio.to_thread(
                            urllib.request.urlopen, request, None, 10)
                    assert failure.value.code == 400
            finally:
                await endpoint.stop()
        asyncio.run(scenario())

    def test_announce_join_unreachable_raises_transport_error(self):
        with pytest.raises(TransportError):
            announce_join("http://127.0.0.1:9", "http://a:1", timeout=0.5)

    def test_endpoint_joins_flow_into_fabric_runs(self, tmp_path,
                                                  monkeypatch):
        """The coordinator-endpoint arc end to end: a daemon announces
        itself via POST /join mid-run and ends up doing real work."""
        real = pace(monkeypatch, 0.15)
        local = ResultStore(tmp_path / "local")

        async def scenario():
            first = EvalServer(port=0)
            second = EvalServer(port=0)
            await first.start()
            await second.start()
            endpoint = MembershipEndpoint(
                base=StaticMembership([address_of(first)]))
            seen = []

            def on_result(task, stats):
                seen.append(task)
                if len(seen) == 1:
                    asyncio.ensure_future(asyncio.to_thread(
                        announce_join, endpoint.address,
                        address_of(second)))
            try:
                result = await run_fabric_async(
                    SPEC, membership=endpoint, store=local,
                    on_result=on_result, **CHURN)
            finally:
                await first.stop()
                await second.stop()
            return result, address_of(second)

        result, joiner = asyncio.run(scenario())
        monkeypatch.setattr(engine, "evaluate_cell", real)
        assert result.results == run_sweep(SPEC).results
        assert joiner in result.joined
        assert result.per_host[joiner] >= 1


class TestCounters:
    def test_membership_counters_reset_and_accumulate(self):
        reset_membership_counters()
        counters = membership_counters()
        assert set(counters) >= {"admitted", "suspected", "recovered",
                                 "died", "readmitted", "evicted"}
        assert all(value == 0 for value in counters.values())
        # Mutating the snapshot must not touch the live counters.
        counters["died"] = 99
        assert membership_counters()["died"] == 0


class TestHandoffInvariant:
    def test_repartition_of_remainder_is_a_disjoint_cover(self):
        # The property the mid-run handoff rides on: re-partitioning
        # any subset over any fleet size still covers each cell exactly
        # once.
        tasks = SPEC.tasks()[3:]
        for hosts in (1, 2, 3):
            parts = partition_tasks(tasks, hosts)
            flat = sorted((task for part in parts for task in part),
                          key=repr)
            assert flat == sorted(tasks, key=repr)
