"""Property tests for task digests: per-field sensitivity and
encoding invariance.

The store's addressing contract, stated as properties rather than
examples: perturbing *any* single :class:`EvalTask` field changes the
digest (otherwise two different cells would alias one stored result),
and re-encoding the same task — dataclass dict round trip, any key
order, client-serialized JSON — never does (otherwise a served query
would miss results a sweep just computed).
"""

import dataclasses
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (EvalTask, TASK_FIELDS, task_from_dict,
                              task_to_dict)
from repro.sim.store import task_digest

# Cheap device builds only (no mode-solver stack): fingerprints are
# memoized per architecture, so the property run pays for each build
# once per process.
ARCHS = ("2D_DDR3", "3D_DDR4", "EPCM-MM")
WORKLOADS = ("gcc", "mcf", "lbm", "omnetpp")

tasks = st.builds(
    EvalTask,
    architecture=st.sampled_from(ARCHS),
    workload=st.sampled_from(WORKLOADS),
    num_requests=st.integers(min_value=1, max_value=100_000),
    seed=st.integers(min_value=0, max_value=10_000),
    queue_depth=st.none() | st.integers(min_value=1, max_value=256),
)


class TestFieldSensitivity:
    @given(task=tasks, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_perturbing_any_single_field_changes_the_digest(self, task,
                                                            data):
        field = data.draw(st.sampled_from(TASK_FIELDS), label="field")
        if field == "architecture":
            new = data.draw(st.sampled_from(
                [a for a in ARCHS if a != task.architecture]))
        elif field == "workload":
            new = data.draw(st.sampled_from(
                [w for w in WORKLOADS if w != task.workload]))
        elif field == "queue_depth":
            new = data.draw((st.none() | st.integers(1, 256)).filter(
                lambda v: v != task.queue_depth))
        else:
            current = getattr(task, field)
            new = data.draw(st.integers(1, 200_000).filter(
                lambda v: v != current))
        perturbed = dataclasses.replace(task, **{field: new})
        assert task_digest(perturbed) != task_digest(task), \
            f"digest insensitive to {field}"

    @given(task=tasks)
    @settings(max_examples=50, deadline=None)
    def test_queue_depth_none_distinct_from_every_override(self, task):
        """The per-channel-default cell (None) must never alias an
        explicit override of any value."""
        base = dataclasses.replace(task, queue_depth=None)
        override = dataclasses.replace(
            task, queue_depth=task.queue_depth or 32)
        assert task_digest(base) != task_digest(override)


class TestEncodingInvariance:
    @given(task=tasks)
    @settings(max_examples=100, deadline=None)
    def test_dict_round_trip_preserves_task_and_digest(self, task):
        rebuilt = task_from_dict(task_to_dict(task))
        assert rebuilt == task
        assert task_digest(rebuilt) == task_digest(task)

    @given(task=tasks, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_key_order_never_matters(self, task, data):
        """A client may serialize fields in any order; the decoded task
        and digest must not depend on it."""
        order = data.draw(st.permutations(list(TASK_FIELDS)), label="order")
        payload = task_to_dict(task)
        shuffled = {key: payload[key] for key in order}
        rebuilt = task_from_dict(shuffled)
        assert rebuilt == task
        assert task_digest(rebuilt) == task_digest(task)

    @given(task=tasks)
    @settings(max_examples=100, deadline=None)
    def test_client_serialized_json_round_trip(self, task):
        """The exact wire path: dict → JSON text → dict → task."""
        wire = json.dumps(task_to_dict(task))
        rebuilt = task_from_dict(json.loads(wire))
        assert rebuilt == task
        assert task_digest(rebuilt) == task_digest(task)

    @given(task=tasks)
    @settings(max_examples=50, deadline=None)
    def test_omitted_defaults_equal_explicit_defaults(self, task):
        """A minimal wire payload (architecture + workload only) decodes
        to the same task — and digest — as one spelling every default
        out."""
        explicit = {"architecture": task.architecture,
                    "workload": task.workload,
                    "num_requests": 20_000, "seed": 1, "queue_depth": None}
        minimal = {"architecture": task.architecture,
                   "workload": task.workload}
        assert task_from_dict(minimal) == task_from_dict(explicit)
        assert task_digest(task_from_dict(minimal)) == \
            task_digest(task_from_dict(explicit))
