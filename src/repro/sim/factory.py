"""Device-model factory: one builder per Fig. 9 architecture label.

``build_device(name)`` returns the :class:`MemoryDeviceModel` the paper's
evaluation would configure in NVMain for that architecture:

* ``"COMET"`` — Table II timings, MDM-parallel buses, power stack from
  :class:`repro.arch.power.CometPowerModel`, per-line write energy from
  the calibrated cell programmer (Section III.B pulses).
* ``"COSMOS"`` — re-modeled Table II timings with the subtractive read
  flow and erase-before-write, power stack from
  :class:`repro.baselines.cosmos.CosmosPowerModel`.
* ``"EPCM-MM"`` — electrical PCM per :data:`repro.baselines.epcm.EPCM_MM`.
* ``"2D_DDR3" / "2D_DDR4" / "3D_DDR3" / "3D_DDR4"`` — DRAM row-buffer
  models with refresh.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..arch.comet import CometArchitecture
from ..baselines.cosmos import CosmosArchitecture
from ..baselines.dram import DRAM_CONFIGS, DramConfig
from ..baselines.epcm import EPCM_MM, EpcmConfig
from ..config import MAIN_MEMORY_CHANNELS
from ..errors import ConfigError, TraceError
from .devices import EnergyModel, MemoryDeviceModel, RefreshSpec, RowBufferTiming
from .tracegen import Workload, get_workload

ARCHITECTURE_NAMES: Tuple[str, ...] = (
    "2D_DDR3", "3D_DDR3", "2D_DDR4", "3D_DDR4", "EPCM-MM", "COSMOS", "COMET",
)

#: Electrical interface dynamic energy per photonic line access
#: (modulator drive + receiver + SerDes; ~1 pJ/bit class).
_PHOTONIC_INTERFACE_ENERGY_J = 1e-9


def build_comet_device(arch: Optional[CometArchitecture] = None) -> MemoryDeviceModel:
    """COMET device model from a configured architecture facade.

    The Fig. 9 part is 8 GB: eight 1 GiB channel devices (Table II — "4
    banks, 1 rank/channel, 1 device/rank"), each carrying its own MDM
    link.  The device model therefore exposes ``channels x 4`` independent
    banks and the power stack of all channels; per-busy-bank power gating
    in the controller keeps idle channels cheap.
    """
    comet = arch if arch is not None else CometArchitecture()
    timings = comet.timings
    channels = comet.channels
    power = comet.power_breakdown()
    # Per-line write energy: one pulse per cell of the written row.
    table = comet.programmer.level_table(comet.mlc)
    mean_pulse_j = sum(entry.energy_j for entry in table) / len(table)
    cells_per_line = timings.cache_line_bits // comet.bits_per_cell
    write_energy = cells_per_line * mean_pulse_j + _PHOTONIC_INTERFACE_ENERGY_J
    return MemoryDeviceModel(
        name="COMET",
        line_bytes=timings.cache_line_bits // 8,
        banks=timings.banks * channels,
        channels=channels,
        data_burst_ns=timings.burst_total_time_ns,
        interface_delay_ns=timings.electrical_interface_delay_ns,
        # The Fig. 5(f) write flow carries no inline erase: RESET pulses run
        # in background idle windows (non-volatile cells need no refresh, so
        # idle banks pre-erase), leaving the foreground write at the 170 ns
        # Table II programming envelope.
        read_occupancy_ns=timings.read_time_ns,
        write_occupancy_ns=timings.write_time_ns,
        shared_bus=False,  # each bank rides its own MDM mode
        burst_overlaps_array=True,
        energy=EnergyModel(
            background_power_w=0.0,
            active_power_w=power.total_w * channels,
            read_energy_j=_PHOTONIC_INTERFACE_ENERGY_J,
            write_energy_j=write_energy,
        ),
    )


def build_cosmos_device(arch: Optional[CosmosArchitecture] = None) -> MemoryDeviceModel:
    """COSMOS device model (subtractive read, erase-before-write).

    The subtractive flow reads the whole 32x32 subarray, erases the target
    row and reads again (Section II.B); the subtracted subarray contents
    stay at the controller, so subsequent reads of the same subarray hit a
    *subarray buffer*.  We express that with row-buffer timing: a miss pays
    read + erase + read (25 + 250 + 25 ns), a hit just one read, and a
    4 KB "row" spanning the subarray's lines.  Writes always pay the full
    1.6 us pulse train.
    """
    cosmos = arch if arch is not None else CosmosArchitecture()
    timings = cosmos.timings
    channels = MAIN_MEMORY_CHANNELS
    power = cosmos.power_breakdown()
    subarray_lines = cosmos.organization.rows_per_subarray
    line_bytes = timings.cache_line_bits // 8
    if cosmos.subtractive_read:
        read_timing = dict(
            row_buffer=RowBufferTiming(
                t_rcd_ns=timings.read_time_ns,
                t_rp_ns=timings.erase_time_ns,
                t_cas_ns=timings.read_time_ns,
                t_wr_ns=0.0,
                row_size_bytes=subarray_lines * line_bytes,
            ),
        )
    else:
        # Idealized non-destructive read (the ablation baseline).
        read_timing = dict(read_occupancy_ns=timings.read_time_ns)
    return MemoryDeviceModel(
        name="COSMOS",
        line_bytes=line_bytes,
        banks=timings.banks * channels,
        channels=channels,
        data_burst_ns=timings.burst_total_time_ns,
        interface_delay_ns=timings.electrical_interface_delay_ns,
        write_occupancy_ns=timings.write_time_ns,
        shared_bus=False,  # generous lossless MDM-16 links (Section IV.B)
        burst_overlaps_array=True,
        energy=EnergyModel(
            background_power_w=0.0,
            active_power_w=power.total_w * channels,
            read_energy_j=_PHOTONIC_INTERFACE_ENERGY_J,
            write_energy_j=(cosmos.write_energy_per_line_j()
                            + _PHOTONIC_INTERFACE_ENERGY_J),
        ),
        **read_timing,
    )


def build_epcm_device(config: EpcmConfig = EPCM_MM) -> MemoryDeviceModel:
    """Electrical-PCM device model."""
    return MemoryDeviceModel(
        name=config.name,
        line_bytes=config.line_bytes,
        banks=config.banks,
        data_burst_ns=config.data_burst_ns,
        interface_delay_ns=config.interface_delay_ns,
        read_occupancy_ns=config.read_latency_ns,
        write_occupancy_ns=config.write_latency_ns,
        shared_bus=True,
        bus_turnaround_ns=6.0,
        energy=EnergyModel(
            background_power_w=config.background_power_w,
            read_energy_j=config.read_energy_per_line_j,
            write_energy_j=config.write_energy_per_line_j,
        ),
    )


def build_dram_device(config: DramConfig) -> MemoryDeviceModel:
    """DRAM device model with row buffer and refresh."""
    return MemoryDeviceModel(
        name=config.name,
        line_bytes=config.line_bytes,
        banks=config.banks,
        data_burst_ns=config.data_burst_ns,
        interface_delay_ns=config.interface_delay_ns,
        row_buffer=RowBufferTiming(
            t_rcd_ns=config.t_rcd_ns,
            t_rp_ns=config.t_rp_ns,
            t_cas_ns=config.t_cas_ns,
            t_wr_ns=config.t_wr_ns,
            row_size_bytes=config.row_size_bytes,
            page_policy=config.page_policy,
        ),
        refresh=RefreshSpec(
            interval_ns=config.t_refi_ns,
            duration_ns=config.t_rfc_ns,
            energy_j=config.refresh_energy_j,
        ),
        shared_bus=config.shared_bus,
        bus_turnaround_ns=6.0,
        energy=EnergyModel(
            background_power_w=config.background_power_w,
            read_energy_j=config.dynamic_energy_per_line_j,
            write_energy_j=config.dynamic_energy_per_line_j,
        ),
    )


def build_device(name: str) -> MemoryDeviceModel:
    """Build the device model for any Fig. 9 architecture label."""
    if name == "COMET":
        return build_comet_device()
    if name == "COSMOS":
        return build_cosmos_device()
    if name == "EPCM-MM":
        return build_epcm_device()
    if name in DRAM_CONFIGS:
        return build_dram_device(DRAM_CONFIGS[name])
    raise ConfigError(
        f"unknown architecture {name!r}; known: {ARCHITECTURE_NAMES}"
    )


def build_workload(name: str) -> Workload:
    """Look up any named workload preset (SPEC, ``mix_*``, phased).

    The workload-side twin of :func:`build_device`: together they name
    every cell of the evaluation grid, and both raise ``ConfigError``
    on unknown names.
    """
    try:
        return get_workload(name)
    except TraceError as error:
        raise ConfigError(str(error)) from None
