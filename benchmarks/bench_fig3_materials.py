"""Bench Fig. 3 — PCM dispersion series across the C-band.

Regenerates the n/kappa curves for GST, GSST and Sb2Se3 and checks the
material-selection outcome the figure supports.
"""

from repro.exp.fig3 import run as run_fig3


def bench_fig3_dispersion(benchmark):
    result = benchmark(run_fig3, 16)

    # Paper shape: GST is selected, with the largest index contrast.
    assert result.selected_material == "GST"
    gst = result.series["GST"]
    gap_gst = gst["crystalline"][0] - gst["amorphous"][0]
    gsst = result.series["GSST"]
    gap_gsst = gsst["crystalline"][0] - gsst["amorphous"][0]
    assert (gap_gst > gap_gsst).all()
    # GST's crystalline extinction dominates every other curve.
    assert (gst["crystalline"][1] > gsst["crystalline"][1]).all()


def bench_fig3_print_series(benchmark, capsys):
    from repro.exp.fig3 import main as main_fig3
    benchmark.pedantic(main_fig3, rounds=1, iterations=1)
    output = capsys.readouterr().out
    assert "GST" in output and "1550" in output
