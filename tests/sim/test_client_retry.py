"""Client transport hardening: retry/backoff policy and the async
response-parser failure modes a fleet exposes.

The retry tests drive the real clients against a *scriptable* fake
endpoint (each accepted connection consumes the next behavior: drop the
connection, or send canned bytes), so attempt counts are observable and
deterministic.  The parser tests send responses no well-behaved daemon
would produce — malformed ``Content-Length``, unbounded header streams,
a line-protocol reply bigger than the stream limit — and pin that every
one surfaces as a structured :class:`SimulationError`, never a raw
``ValueError``/``LimitOverrunError``.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.errors import SimulationError
from repro.sim.client import (DEFAULT_MAX_BACKOFF, DEFAULT_RETRIES,
                              MAX_BODY_BYTES, MAX_HEADER_LINES,
                              NON_IDEMPOTENT_OPS, AsyncEvalClient,
                              EvalClient, TransportError, _retry_delay)

#: Close the connection without a byte — a daemon dying mid-restart.
DROP = "drop"


def http_response(payload, status=200):
    body = json.dumps(payload).encode()
    return (f"HTTP/1.1 {status} X\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode() + body


STATS_OK = http_response({"ok": True, "stats": {"computed": 3}})
SHUTDOWN_OK = http_response({"ok": True})


class FakeEndpoint(threading.Thread):
    """Scriptable TCP endpoint for the *sync* client.

    Each accepted connection consumes the next script entry: ``DROP``
    closes immediately, bytes are sent after the request head arrives.
    ``connections`` counts accepts — the retry-policy observable.
    """

    def __init__(self, script):
        super().__init__(daemon=True)
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self.script = list(script)
        self.connections = 0

    @property
    def address(self):
        return f"http://127.0.0.1:{self.port}"

    def run(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return          # closed — test over
            self.connections += 1
            behavior = self.script.pop(0) if self.script else DROP
            with conn:
                if behavior == DROP:
                    continue
                conn.settimeout(5.0)
                try:
                    head = b""
                    while b"\r\n\r\n" not in head:
                        chunk = conn.recv(4096)
                        if not chunk:
                            break
                        head += chunk
                    conn.sendall(behavior)
                except OSError:
                    continue

    def close(self):
        self.listener.close()


@pytest.fixture
def endpoint(request):
    """Build-and-start helper; always closes the listener."""
    created = []

    def build(script):
        fake = FakeEndpoint(script)
        fake.start()
        created.append(fake)
        return fake

    yield build
    for fake in created:
        fake.close()


def run_async_endpoint(script, scenario):
    """The async twin of :class:`FakeEndpoint`: same script semantics,
    served by ``asyncio.start_server`` on the test's event loop."""
    state = {"connections": 0, "script": list(script)}

    async def handle(reader, writer):
        state["connections"] += 1
        behavior = state["script"].pop(0) if state["script"] else DROP
        try:
            if behavior != DROP:
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                writer.write(behavior)
                await writer.drain()
        finally:
            writer.close()

    async def wrapper():
        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            client = yield_client(port)
            return await scenario(client), state["connections"]
        finally:
            server.close()
            await server.wait_closed()

    def yield_client(port):
        return AsyncEvalClient(f"http://127.0.0.1:{port}",
                               timeout=5.0, retries=2, backoff=0.001)

    return asyncio.run(wrapper())


class TestRetryPolicy:
    def test_transient_drop_then_recovery_succeeds(self, endpoint):
        fake = endpoint([DROP, DROP, STATS_OK])
        client = EvalClient(fake.address, retries=2, backoff=0.001)
        assert client.stats() == {"computed": 3}
        assert fake.connections == 3

    def test_retry_budget_exhaustion_raises_transport_error(self, endpoint):
        fake = endpoint([DROP, DROP, DROP])
        client = EvalClient(fake.address, retries=2, backoff=0.001)
        with pytest.raises(TransportError):
            client.stats()
        assert fake.connections == 3    # exactly retries + 1 attempts

    def test_retries_zero_means_single_attempt(self, endpoint):
        fake = endpoint([DROP, STATS_OK])
        client = EvalClient(fake.address, retries=0, backoff=0.001)
        with pytest.raises(TransportError):
            client.stats()
        assert fake.connections == 1

    def test_shutdown_is_never_retried(self, endpoint):
        # A lost shutdown response may mean the shutdown *landed*;
        # re-sending it would kill a daemon that restarted in between.
        fake = endpoint([DROP, SHUTDOWN_OK])
        client = EvalClient(fake.address, retries=5, backoff=0.001)
        with pytest.raises(TransportError):
            client.shutdown()
        assert fake.connections == 1
        assert "shutdown" in NON_IDEMPOTENT_OPS

    def test_structured_server_errors_are_not_retried(self, endpoint):
        # Deterministic failures re-fail identically: retrying a 500
        # would just run the broken request again.
        fake = endpoint([http_response({"ok": False, "error": "boom"},
                                       status=500), STATS_OK])
        client = EvalClient(fake.address, retries=3, backoff=0.001)
        with pytest.raises(SimulationError, match="boom") as excinfo:
            client.stats()
        assert not isinstance(excinfo.value, TransportError)
        assert fake.connections == 1

    def test_async_transient_drop_then_recovery(self):
        async def scenario(client):
            return await client.stats()
        stats, connections = run_async_endpoint(
            [DROP, DROP, STATS_OK], scenario)
        assert stats == {"computed": 3}
        assert connections == 3

    def test_async_shutdown_is_never_retried(self):
        async def scenario(client):
            with pytest.raises(TransportError):
                await client.shutdown()
            return None
        _, connections = run_async_endpoint([DROP, SHUTDOWN_OK], scenario)
        assert connections == 1

    def test_retry_delay_is_jittered_exponential(self):
        for attempt in range(4):
            nominal = 0.2 * (2 ** attempt)
            samples = [_retry_delay(0.2, attempt) for _ in range(200)]
            assert all(0.5 * nominal <= s < 1.5 * nominal for s in samples)
            # Jitter actually jitters — a fleet's retries must spread.
            assert len({round(s, 9) for s in samples}) > 1

    def test_default_retry_budget_is_small(self):
        assert 1 <= DEFAULT_RETRIES <= 3

    def test_retry_delay_is_capped_by_max_backoff(self):
        # Unbounded backoff * 2**attempt sleeps for minutes at the
        # attempt counts a long fabric run reaches; the cap bounds
        # every delay (jitter included: at most 1.5x the cap).
        samples = [_retry_delay(0.2, attempt, max_backoff=1.0)
                   for attempt in range(16) for _ in range(20)]
        assert all(sample < 1.5 * 1.0 for sample in samples)
        # Small attempts are untouched by a generous cap — the default
        # schedule below the ceiling is exactly what it always was.
        for attempt in range(3):
            nominal = 0.2 * (2 ** attempt)
            assert all(0.5 * nominal
                       <= _retry_delay(0.2, attempt, max_backoff=60.0)
                       < 1.5 * nominal for _ in range(50))

    def test_default_max_backoff_bounds_the_worst_case(self):
        assert 0 < DEFAULT_MAX_BACKOFF <= 60.0
        assert _retry_delay(0.2, 60) < 1.5 * DEFAULT_MAX_BACKOFF

    def test_max_backoff_knob_caps_real_retry_sleeps(self, endpoint):
        # A pathological base backoff with a tight cap: the two retry
        # sleeps are bounded by the cap, not the exponential schedule.
        fake = endpoint([DROP, DROP, STATS_OK])
        client = EvalClient(fake.address, retries=2, backoff=30.0,
                            max_backoff=0.02)
        started = time.monotonic()
        assert client.stats() == {"computed": 3}
        assert time.monotonic() - started < 5.0
        assert fake.connections == 3

    def test_async_client_accepts_max_backoff(self):
        client = AsyncEvalClient("http://127.0.0.1:1", backoff=30.0,
                                 max_backoff=0.02)
        assert client.max_backoff == 0.02


class TestAsyncResponseParser:
    def _request(self, response_bytes):
        async def scenario(client):
            return await client.stats()

        def run():
            return run_async_endpoint([response_bytes], scenario)
        return run

    def test_malformed_content_length_is_structured(self):
        response = (b"HTTP/1.1 200 X\r\n"
                    b"Content-Length: not-a-number\r\n"
                    b"Connection: close\r\n\r\n{}")
        with pytest.raises(SimulationError,
                           match="malformed Content-Length") as excinfo:
            self._request(response)()
        assert not isinstance(excinfo.value, ValueError)

    def test_negative_content_length_is_structured(self):
        response = (b"HTTP/1.1 200 X\r\n"
                    b"Content-Length: -7\r\n"
                    b"Connection: close\r\n\r\n{}")
        with pytest.raises(SimulationError,
                           match="malformed Content-Length"):
            self._request(response)()

    def test_header_line_count_is_bounded(self):
        junk = b"".join(b"X-Pad-%d: y\r\n" % i
                        for i in range(MAX_HEADER_LINES + 8))
        response = (b"HTTP/1.1 200 X\r\n" + junk
                    + b"Content-Length: 2\r\n\r\n{}")
        with pytest.raises(SimulationError, match="header lines"):
            self._request(response)()

    def test_oversized_line_protocol_response_is_structured(self, tmp_path):
        # A reply line bigger than the stream limit must surface as a
        # structured error, not asyncio's raw readline() ValueError.
        path = tmp_path / "eval.sock"

        async def handle(reader, writer):
            await reader.readline()
            writer.write(b"x" * (MAX_BODY_BYTES + 4096))
            await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_unix_server(handle, path=str(path))
            try:
                client = AsyncEvalClient(f"unix://{path}", timeout=30.0,
                                         retries=0)
                with pytest.raises(SimulationError, match="stream limit"):
                    await client.stats()
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_within_limit_line_protocol_response_parses(self, tmp_path):
        # The reason limit= must be MAX_BODY_BYTES: a legitimate
        # latency-bearing reply is far bigger than asyncio's 64 KiB
        # default, which used to blow up readline().
        path = tmp_path / "eval.sock"
        payload = {"ok": True, "stats": {"pad": "y" * (256 * 1024)}}

        async def handle(reader, writer):
            await reader.readline()
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_unix_server(handle, path=str(path))
            try:
                client = AsyncEvalClient(f"unix://{path}", timeout=30.0,
                                         retries=0)
                return await client.stats()
            finally:
                server.close()
                await server.wait_closed()

        assert asyncio.run(scenario()) == payload["stats"]
