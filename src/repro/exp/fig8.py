"""Fig. 8 — power stack comparison: COSMOS vs COMET.

The paper's conclusion quantifies this as "COMET consumes only 26 % of
the power ... compared to the best-known prior work" — we report the
measured ratio from our two power models.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.organization import MemoryOrganization
from ..arch.power import CometPowerModel, PowerBreakdown
from ..baselines.cosmos import cosmos_power_breakdown
from .report import print_table

PAPER_POWER_RATIO = 0.26


@dataclass
class Fig8Result:
    comet: PowerBreakdown
    cosmos: PowerBreakdown

    @property
    def power_ratio(self) -> float:
        """COMET total / COSMOS total (paper: 0.26)."""
        return self.comet.total_w / self.cosmos.total_w


def run() -> Fig8Result:
    comet_model = CometPowerModel(MemoryOrganization.comet(4))
    return Fig8Result(
        comet=comet_model.breakdown(name="COMET-4b"),
        cosmos=cosmos_power_breakdown(),
    )


def main() -> Fig8Result:
    result = run()
    rows = []
    for stack in (result.cosmos, result.comet):
        rows.append([
            stack.name,
            f"{stack.laser_w:.1f}",
            f"{stack.soa_w:.1f}",
            f"{stack.tuning_w * 1e3:.1f} mW",
            f"{stack.total_w:.1f}",
        ])
    print_table(
        ["architecture", "laser (W)", "SOA (W)", "tuning", "total (W)"],
        rows, title="Fig. 8 — COSMOS vs COMET power stacks",
    )
    print(f"  COMET / COSMOS power = {result.power_ratio:.2f} "
          f"(paper: {PAPER_POWER_RATIO:.2f})\n")
    return result


if __name__ == "__main__":
    main()
